"""WAL replication: epoch headers, stream/apply, torn tails, fencing.

The invariant under test is the tentpole's: a standby that tails the
primary's WAL stream holds a catalog byte-equivalent to the primary's,
with its own WAL equal to the primary's suffix (same ops, same sequence
numbers), so a promotion -- fenced by a durably bumped epoch -- loses
nothing and a resurrected stale primary can never win a write again.
"""

import threading
import time

import pytest

from repro.serve.replication import ReplicationTailer
from repro.serve.server import ServerThread
from repro.serve.service import (
    CatalogService,
    EpochError,
    NotPrimaryError,
    SnapshotDaemon,
)
from repro.serve.wal import WalError, WriteAheadLog

pytestmark = pytest.mark.catalog

NOW = 1_000_000.0


def entry_doc(key, value=1.0, observed_at=NOW, **over):
    doc = {
        "key": key,
        "se_key": f"se:{key}",
        "stat": {"kind": "card"},
        "value": value,
        "repr": f"T[{key}]",
        "workflow": "wf",
        "run_id": "r1",
        "observed_at": observed_at,
    }
    doc.update(over)
    return doc


def primary(tmp_path, **kwargs):
    kwargs.setdefault("clock", lambda: NOW)
    kwargs.setdefault("fsync", False)
    return CatalogService(tmp_path / "primary.json", **kwargs)


def standby(tmp_path, primary_url="unix:///nowhere.sock", **kwargs):
    kwargs.setdefault("clock", lambda: NOW)
    kwargs.setdefault("fsync", False)
    return CatalogService(
        tmp_path / "standby.json",
        role="standby",
        primary_url=primary_url,
        **kwargs,
    )


def replicate(source, target):
    """Drain the stream from ``source`` into ``target``; records applied."""
    doc = source.wal_stream(target.wal.last_seq)
    if doc.get("reset"):
        target.load_snapshot(doc.get("snapshot", {}), epoch=doc.get("epoch"))
        return target.wal.last_seq
    return target.apply_replicated(doc.get("records", ()), epoch=doc.get("epoch"))


def stat():
    from repro.algebra.expressions import SubExpression
    from repro.core.statistics import Statistic

    return Statistic.card(SubExpression.of("R"))


def entries_of(svc):
    return {entry.key: entry.to_dict() for entry in svc.all_entries()}


class TestWalEpochHeader:
    def test_round_trips_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        wal.write_epoch(3)
        wal.append("stale", 1, keys=["k"])
        wal.close()
        again = WriteAheadLog(tmp_path / "cat.wal")
        # the header replays into .epoch but is never yielded as a record
        assert [r["seq"] for r in again.replay()] == [1]
        assert again.epoch == 3
        assert again.last_seq == 1
        again.close()

    def test_never_decreases(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        wal.write_epoch(5)
        with pytest.raises(WalError, match="cannot go backwards"):
            wal.write_epoch(4)
        with pytest.raises(WalError, match="epochs start at 1"):
            wal.write_epoch(0)
        assert wal.epoch == 5
        wal.close()

    def test_truncate_reseeds_the_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        wal.write_epoch(2)
        wal.append("stale", 1, keys=["k"])
        wal.truncate()
        wal.close()
        again = WriteAheadLog(tmp_path / "cat.wal")
        assert list(again.replay()) == []  # records folded away...
        assert again.epoch == 2  # ...the fence survives the fold
        again.close()

    def test_torn_tail_after_header_keeps_the_epoch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        wal.write_epoch(4)
        wal.append("stale", 1, keys=["k1"])
        wal.append("stale", 2, keys=["k2"])
        wal.close()
        data = (tmp_path / "cat.wal").read_bytes()
        (tmp_path / "cat.wal").write_bytes(data[:-7])  # tear record 2
        again = WriteAheadLog(tmp_path / "cat.wal")
        assert [r["seq"] for r in again.replay()] == [1]
        assert again.epoch == 4
        again.close()


class TestStreamAndApply:
    def test_standby_converges_to_the_primary(self, tmp_path):
        p, s = primary(tmp_path), standby(tmp_path)
        p.put_entries([entry_doc("a", 1), entry_doc("b", 2)])
        p.mark_stale(["a"])
        p.adjust_quality([["b", 0.1]])
        assert replicate(p, s) == 3
        assert entries_of(s) == entries_of(p)
        # the standby's WAL is the primary's suffix: same seqs, same ops
        assert s.wal.last_seq == p.wal.last_seq
        p.wal.close(), s.wal.close()

    def test_overlapping_stream_is_idempotent(self, tmp_path):
        p, s = primary(tmp_path), standby(tmp_path)
        p.put_entries([entry_doc("a")])
        doc = p.wal_stream(0)
        assert s.apply_replicated(doc["records"], epoch=doc["epoch"]) == 1
        # a reconnect may replay the same page; seqs at/below ours skip
        assert s.apply_replicated(doc["records"], epoch=doc["epoch"]) == 0
        assert len(s) == 1
        p.wal.close(), s.wal.close()

    def test_cursor_behind_snapshot_gets_a_reset(self, tmp_path):
        p, s = primary(tmp_path), standby(tmp_path)
        p.put_entries([entry_doc("a"), entry_doc("b")])
        p.snapshot()  # folds the tail: seq 1-2 are gone from the stream
        p.put_entries([entry_doc("c")])
        doc = p.wal_stream(0)
        assert doc["reset"]
        # the reset carries the primary's live document: loading it makes
        # the standby fully caught up, cursor fast-forwarded to the head
        s.load_snapshot(doc["snapshot"], epoch=doc["epoch"])
        assert entries_of(s) == entries_of(p)
        assert s.wal.last_seq == p.wal.last_seq
        assert replicate(p, s) == 0  # then tailing resumes normally
        p.put_entries([entry_doc("d")])
        assert replicate(p, s) == 1
        assert entries_of(s) == entries_of(p)
        p.wal.close(), s.wal.close()

    def test_standby_refuses_direct_writes(self, tmp_path):
        s = standby(tmp_path, primary_url="unix:///tmp/primary.sock")
        with pytest.raises(NotPrimaryError, match="read-only standby") as exc:
            s.put_entries([entry_doc("a")])
        assert exc.value.primary == "unix:///tmp/primary.sock"
        with pytest.raises(NotPrimaryError):
            s.acquire_lease("night-1")
        s.wal.close()


class TestTornTailUnderReplication:
    def test_standby_resumes_from_its_cursor_after_both_crash(self, tmp_path):
        p, s = primary(tmp_path), standby(tmp_path)
        p.put_entries([entry_doc(f"k{i}", i) for i in range(4)])
        p.mark_stale(["k0"])
        assert replicate(p, s) == 2
        p.adjust_quality([["k1", 0.2]])
        assert replicate(p, s) == 1
        s.wal.close()

        # SIGKILL the standby mid-write: its WAL loses half a record
        wal_path = tmp_path / "standby.json.wal"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-9])

        # SIGKILL-restart the primary too: it replays its own WAL
        p.wal.close()
        p2 = primary(tmp_path)
        assert p2.wal.last_seq == 3

        # the reopened standby discards the torn tail and resumes tailing
        # from the last durable record -- no reset, no double-apply
        s2 = standby(tmp_path)
        assert s2.wal.last_seq == 2  # record 3 was the torn one
        assert replicate(p2, s2) == 1
        assert entries_of(s2) == entries_of(p2)
        assert s2.wal.last_seq == p2.wal.last_seq == 3
        p2.wal.close(), s2.wal.close()


class TestEpochFencing:
    def test_promotion_bumps_durably_before_the_role_flips(self, tmp_path):
        s = standby(tmp_path)
        assert s.epoch == 1 and s.role == "standby"
        assert s.promote() == 2
        assert s.role == "primary"
        assert s.promote() == 2  # idempotent
        s.put_entries([entry_doc("after", 9)])  # writable now
        s.wal.close()
        # the epoch outranks the old primary even after a crash-restart
        again = CatalogService(
            tmp_path / "standby.json", clock=lambda: NOW, fsync=False
        )
        assert again.epoch == 2
        again.wal.close()

    def test_stale_client_epoch_is_rejected(self, tmp_path):
        p = primary(tmp_path)
        p.epoch = 3
        with pytest.raises(EpochError, match="stale epoch"):
            p.put_entries([entry_doc("a")], epoch=2)
        p.wal.close()

    def test_resurrected_stale_primary_rejects_newer_writes(self, tmp_path):
        # the split-brain regression: this server was SIGKILLed as the
        # primary and came back still believing it leads; a client
        # carrying the cluster epoch must bounce off it
        p = primary(tmp_path)
        assert p.epoch == 1
        with pytest.raises(EpochError, match="behind the cluster epoch"):
            p.put_entries([entry_doc("a")], epoch=2)
        with pytest.raises(EpochError, match="behind the cluster epoch"):
            p.acquire_lease("night-1", epoch=2)  # lease grants fence too
        assert len(p) == 0 and p.lease_holder == ""
        p.wal.close()

    def test_stale_stream_is_not_applied(self, tmp_path):
        p, s = primary(tmp_path), standby(tmp_path)
        p.put_entries([entry_doc("a")])
        s.promote()  # epoch 2: the old stream now carries a stale epoch
        doc = p.wal_stream(0)
        with pytest.raises(EpochError, match="stale epoch"):
            s.apply_replicated(doc["records"], epoch=doc["epoch"])
        with pytest.raises(EpochError, match="stale epoch"):
            s.load_snapshot({"entries": []}, epoch=1)
        p.wal.close(), s.wal.close()


class TestSnapshotDaemon:
    def test_pays_snapshot_debt_off_the_write_path(self, tmp_path):
        svc = primary(tmp_path, snapshot_every=2)
        daemon = SnapshotDaemon(svc, interval=0.01).start()
        try:
            for i in range(5):
                svc.put_entries([entry_doc(f"k{i}")])
            deadline = time.monotonic() + 5.0
            while svc.snapshot_seq == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert svc.snapshot_seq > 0
            assert daemon.snapshots >= 1
        finally:
            daemon.stop()
            svc.wal.close()

    def test_gc_runs_on_the_daemon_for_primaries_only(self, tmp_path):
        late = NOW + 10**9  # every NOW-observed entry is long expired
        svc = primary(tmp_path, clock=lambda: late)
        svc.put_entries([entry_doc("old", observed_at=NOW)])
        daemon = SnapshotDaemon(svc, interval=60.0, gc_interval=0.0)
        daemon._last_gc = -10**12  # "a gc interval has elapsed"
        daemon.run_once()
        assert daemon.collected == 1
        assert len(svc) == 0
        svc.wal.close()

        s = standby(tmp_path, clock=lambda: late)
        sd = SnapshotDaemon(s, interval=60.0, gc_interval=0.0)
        sd._last_gc = -10**12
        sd.run_once()  # standbys never gc: deletions replicate from the
        assert sd.collected == 0  # primary through the stream instead
        s.wal.close()


class TestReplicationTailer:
    def test_tails_a_live_server_and_reports_lag(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.client import CatalogClient

        listen = f"unix://{tmp_path / 'primary.sock'}"
        metrics = MetricsRegistry()
        with ServerThread(
            listen, tmp_path / "primary.json", fsync=False
        ) as thread:
            client = CatalogClient(listen, timeout=2.0, base_delay=0.0)
            client.record("k1", "se:k1", stat(), 42.0,
                          workflow="wf", run_id="r")
            client.save()
            s = standby(tmp_path, primary_url=listen)
            tailer = ReplicationTailer(
                s, listen, poll_interval=0.02, metrics=metrics
            ).start()
            try:
                head = thread.server.service.wal.last_seq
                assert tailer.wait_caught_up(head, timeout=5.0)
                assert s.get("k1").value() == 42.0
                assert tailer.lag == 0
                assert tailer.polls >= 1 and tailer.failures == 0
            finally:
                tailer.stop()
                s.wal.close()
            client.close()

    def test_promotes_itself_after_consecutive_failed_polls(self, tmp_path):
        s = standby(tmp_path, primary_url=f"unix://{tmp_path}/gone.sock")
        tailer = ReplicationTailer(
            s,
            f"unix://{tmp_path}/gone.sock",
            poll_interval=0.01,
            timeout=0.2,
            auto_promote_after=3,
        ).start()
        try:
            deadline = time.monotonic() + 5.0
            while not tailer.promoted and time.monotonic() < deadline:
                time.sleep(0.01)
            assert tailer.promoted
            assert s.role == "primary" and s.epoch == 2
            assert "promoted after" in tailer.stopped_reason
        finally:
            tailer.stop()
            s.wal.close()

    def test_replication_stall_fault_grows_lag_then_recovers(self, tmp_path):
        from repro.engine.faults import FaultPlan, FaultSpec

        listen = f"unix://{tmp_path / 'primary.sock'}"
        with ServerThread(
            listen, tmp_path / "primary.json", fsync=False
        ) as thread:
            thread.server.service.put_entries([entry_doc("a")])
            s = standby(tmp_path, primary_url=listen)
            plan = FaultPlan(
                specs=(FaultSpec(target="*", kind="replication-stall",
                                 delay=0.01),)
            )
            tailer = ReplicationTailer(
                s, listen, poll_interval=0.01, faults=plan.injector()
            ).start()
            try:
                head = thread.server.service.wal.last_seq
                assert tailer.wait_caught_up(head, timeout=5.0)
                # the stall fired once (default budget) inside the tailer
                assert [e.kind for e in tailer._injector.events] == [
                    "replication-stall"
                ]
            finally:
                tailer.stop()
                s.wal.close()


class TestHttpReplicationPair:
    def test_standby_serves_reads_and_redirects_writes(self, tmp_path):
        from repro.serve.client import CatalogClient

        p_listen = f"unix://{tmp_path / 'p.sock'}"
        s_listen = f"unix://{tmp_path / 's.sock'}"
        with ServerThread(
            p_listen, tmp_path / "p.json", fsync=False
        ) as p_thread:
            writer = CatalogClient(p_listen, timeout=2.0, base_delay=0.0)
            writer.record("k1", "se:k1", stat(), 7.0,
                          workflow="wf", run_id="r")
            writer.save()
            with ServerThread(
                s_listen,
                tmp_path / "s.json",
                fsync=False,
                replicate_from=p_listen,
                poll_interval=0.02,
            ) as s_thread:
                head = p_thread.server.service.wal.last_seq
                assert s_thread.server.tailer.wait_caught_up(head, 5.0)

                # reads answered by the standby itself
                reader = CatalogClient(s_listen, timeout=2.0, base_delay=0.0)
                assert reader.get("k1").value() == 7.0
                health = reader.healthz()
                assert health["role"] == "standby"
                assert health["upstream"] == p_listen

                # a write sent to the standby chases the advertised
                # primary (alive, so no promotion happens)
                reader.record("k2", "se:k2", stat(), 8.0,
                              workflow="wf", run_id="r")
                reader.save()
                assert p_thread.server.service.get("k2").value() == 8.0
                assert s_thread.server.service.role == "standby"
                reader.close()
            writer.close()
