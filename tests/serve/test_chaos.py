"""Catalog-service chaos: the ISSUE's degradation-equivalence criterion.

1. server down all night: ``run_once`` against the degrading client still
   completes, every plan is identical to the local-baseline run, plan
   confidence is demoted exactly one rung, and nothing is recorded as a
   failure -- across the chaos backend matrix;
2. SIGKILL a real ``repro-etl serve`` subprocess after an acknowledged
   night of writes: a restart replays the WAL and restores every entry
   without a snapshot ever having been taken.

Backend coverage is parametrized (restrict with ``REPRO_CHAOS_BACKEND``
for the CI matrix); retries are seeded via ``REPRO_CHAOS_SEED``.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.catalog.store import StatisticsCatalog
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.recovery import demote_confidence
from repro.serve.client import CatalogClient
from repro.serve.service import CatalogService
from repro.workloads import case

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
_only = os.environ.get("REPRO_CHAOS_BACKEND", "")
BACKENDS = [_only] if _only else ["columnar", "streaming", "vectorized"]

WORKFLOW = 11


def _sources():
    return case(WORKFLOW).tables(scale=0.2, seed=7)


def _run(backend, **kwargs):
    pipeline = StatisticsPipeline(case(WORKFLOW).build(), backend=backend)
    return pipeline.run_once(_sources(), **kwargs)


def _plan_key(report):
    return {name: (repr(p.tree), p.cost) for name, p in report.plans.items()}


def _dead_client(tmp_path, fallback=None):
    return CatalogClient(
        f"unix://{tmp_path / 'nobody-home.sock'}",
        fallback=fallback,
        max_retries=0,
        base_delay=0.0,
        max_delay=0.0,
        seed=CHAOS_SEED,
    )


class TestDegradationEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_server_down_all_night_matches_local_baseline(
        self, tmp_path, backend
    ):
        fallback = tmp_path / "local.json"

        # an earlier night populated the client's local fallback file
        _run(
            backend,
            stats_catalog=StatisticsCatalog(fallback),
            run_id="night0",
        )

        # the local baseline: a healthy warm run straight off that file
        baseline = _run(
            backend,
            stats_catalog=StatisticsCatalog.open(fallback),
            run_id="baseline",
        )
        assert not baseline.catalog_degraded

        # tonight the server is gone; the degrading client runs the whole
        # night from its local view and must not fail anything
        client = _dead_client(tmp_path, fallback=fallback)
        report = _run(backend, stats_catalog=client, run_id="dark")

        assert report.catalog_degraded
        assert client.degraded
        assert report.failures == {}
        assert _plan_key(report) == _plan_key(baseline)
        for name, plan in report.plans.items():
            assert plan.confidence == demote_confidence(
                baseline.plans[name].confidence
            ), f"{name}: confidence not demoted exactly one rung"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_server_down_with_no_fallback_still_completes(
        self, tmp_path, backend
    ):
        # worst case: no server AND no local file -- a fully cold
        # degraded night taps everything itself and still finishes
        client = _dead_client(tmp_path)
        report = _run(backend, stats_catalog=client, run_id="dark")
        cold = _run(backend, run_id="cold")
        assert report.catalog_degraded
        assert report.failures == {}
        assert _plan_key(report) == _plan_key(cold)


def _wait_healthy(url, deadline=15.0):
    probe = CatalogClient(
        url, max_retries=0, base_delay=0.0, timeout=1.0,
        breaker_threshold=10**6,  # startup probing must never trip it
    )
    end = time.monotonic() + deadline
    try:
        while time.monotonic() < end:
            try:
                return probe.healthz()
            except Exception:
                probe.degraded = False  # keep probing past a failure
                time.sleep(0.05)
        raise AssertionError(f"server at {url} never became healthy")
    finally:
        probe.close()


class TestServerSigkill:
    def test_wal_replay_restores_the_catalog(self, tmp_path):
        sock = tmp_path / "catalog.sock"
        url = f"unix://{sock}"
        catalog_path = tmp_path / "catalog.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", url,
                "--catalog", str(catalog_path),
                "--snapshot-every", "1000000",  # never snapshot: WAL only
                "--log", str(tmp_path / "server.log"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            _wait_healthy(url)

            # a full night against the live server
            client = CatalogClient(url, seed=CHAOS_SEED)
            report = _run("columnar", stats_catalog=client, run_id="night1")
            assert not report.catalog_degraded
            client.close()

            reader = CatalogClient(url, seed=CHAOS_SEED)
            before = {k: e.value() for k, e in reader.entries.items()}
            assert before  # the night actually wrote something
            reader.close()

            # SIGKILL: no snapshot, no graceful close -- only the WAL
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            assert not catalog_path.exists()

            # restart: replay must restore every acknowledged entry
            revived = CatalogService(catalog_path, fsync=False)
            try:
                assert revived.replayed_records > 0
                after = {
                    e.key: e.value() for e in revived.all_entries()
                }
                assert after == before
            finally:
                revived.wal.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
