"""High-availability chaos: the tentpole's failover acceptance criteria.

1. the primary goes permanently dark mid-night with a warm standby on
   the client's endpoint list: the night completes at *full* confidence
   (no degradation), the chosen plans are identical to a local-catalog
   baseline, and the client counted at least one failover;
2. the old primary resurrects still believing it leads: a client
   carrying the cluster epoch bounces off it (409 ``stale_epoch``) and
   its write lands on the promoted server -- split-brain never commits;
3. end to end with real processes: SIGKILL a ``repro-etl serve``
   primary under a replicating standby and the next night fails over.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.catalog.store import StatisticsCatalog
from repro.engine.faults import FaultPlan, FaultSpec
from repro.framework.pipeline import StatisticsPipeline
from repro.serve.client import CatalogClient
from repro.serve.server import ServerThread
from repro.workloads import case

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
WORKFLOW = 11


def _sources():
    return case(WORKFLOW).tables(scale=0.2, seed=7)


def _run(**kwargs):
    pipeline = StatisticsPipeline(case(WORKFLOW).build(), backend="columnar")
    return pipeline.run_once(_sources(), **kwargs)


def _plan_key(report):
    return {name: (repr(p.tree), p.cost) for name, p in report.plans.items()}


def _stat(name="R"):
    from repro.algebra.expressions import SubExpression
    from repro.core.statistics import Statistic

    return Statistic.card(SubExpression.of(name))


def _baseline(tmp_path):
    """Two healthy nights against a plain local catalog file."""
    path = tmp_path / "baseline.json"
    _run(stats_catalog=StatisticsCatalog(path), run_id="night1")
    return _run(stats_catalog=StatisticsCatalog.open(path), run_id="night2")


def _wait_caught_up(primary_service, standby_service, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if standby_service.wal.last_seq >= primary_service.wal.last_seq:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"standby never caught up: {standby_service.wal.last_seq} < "
        f"{primary_service.wal.last_seq}"
    )


class TestFailoverMidNight:
    def test_primary_dies_mid_night_and_the_run_never_degrades(
        self, tmp_path
    ):
        baseline = _baseline(tmp_path)

        p_url = f"unix://{tmp_path / 'p.sock'}"
        s_url = f"unix://{tmp_path / 's.sock'}"
        with ServerThread(
            p_url, tmp_path / "p.json", fsync=False
        ) as p_thread, ServerThread(
            s_url,
            tmp_path / "s.json",
            fsync=False,
            replicate_from=p_url,
            poll_interval=0.02,
            auto_promote_after=0,  # promotion is the client's call here
        ) as s_thread:
            # night 1: a healthy run through the HA client warms both
            client = CatalogClient(
                f"{p_url},{s_url}",
                max_retries=0, base_delay=0.0, max_delay=0.0,
                seed=CHAOS_SEED, timeout=2.0,
            )
            report1 = _run(stats_catalog=client, run_id="night1")
            assert report1.failures == {}
            assert report1.catalog_failovers == 0
            _wait_caught_up(p_thread.server.service, s_thread.server.service)
            client.close()

            # night 2: every request to the primary's box now dies with a
            # permanent connection error (the injected SIGKILL) -- the
            # client must fail over to the standby and promote it
            plan = FaultPlan(specs=(
                FaultSpec(target=f"{p_url}*", kind="primary-kill"),
            ))
            chaos_client = CatalogClient(
                f"{p_url},{s_url}",
                max_retries=0, base_delay=0.0, max_delay=0.0,
                seed=CHAOS_SEED, timeout=2.0, faults=plan,
            )
            report2 = _run(stats_catalog=chaos_client, run_id="night2")

            assert report2.failures == {}
            assert not report2.catalog_degraded
            assert not chaos_client.degraded
            assert report2.catalog_failovers >= 1
            assert chaos_client.epoch == 2  # the standby was promoted
            assert s_thread.server.service.role == "primary"
            assert _plan_key(report2) == _plan_key(baseline)
            for name, plan_ in report2.plans.items():
                assert plan_.confidence == baseline.plans[name].confidence, (
                    f"{name}: confidence was demoted despite the standby"
                )

            # the failover surfaces on the metrics endpoint the CI job
            # scrapes: catalog_failovers_total >= 1
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.record import record_run_metrics

            registry = MetricsRegistry()
            record_run_metrics(registry, report2, workflow="w11")
            text = registry.render_prometheus()
            assert "catalog_failovers_total" in text

            # -- split-brain regression ---------------------------------
            # the old primary is in fact still running (the kill was
            # injected at the client); to a writer carrying the cluster
            # epoch it is a resurrected stale primary and must be fenced
            fleet = CatalogClient(
                f"{p_url},{s_url}",
                max_retries=0, base_delay=0.0, max_delay=0.0,
                seed=CHAOS_SEED, timeout=2.0,
            )
            fleet.epoch = chaos_client.epoch  # a synced fleet member
            fleet.record("split", "se:split", _stat(), 99.0,
                         workflow="wf", run_id="late")
            fleet.save()
            assert not fleet.degraded
            assert fleet.failovers >= 1  # the walk left the stale box
            assert p_thread.server.service.get("split") is None
            assert p_thread.server.service.epoch == 1
            assert s_thread.server.service.get("split").value() == 99.0
            fleet.close()
            chaos_client.close()


def _wait_healthy(url, deadline=15.0):
    probe = CatalogClient(
        url, max_retries=0, base_delay=0.0, timeout=1.0,
        breaker_threshold=10**6,
    )
    end = time.monotonic() + deadline
    try:
        while time.monotonic() < end:
            try:
                return probe.healthz()
            except Exception:
                probe.degraded = False  # keep probing past a failure
                time.sleep(0.05)
        raise AssertionError(f"server at {url} never became healthy")
    finally:
        probe.close()


class TestRealProcessFailover:
    def _serve(self, tmp_path, name, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", f"unix://{tmp_path / (name + '.sock')}",
                "--catalog", str(tmp_path / (name + ".json")),
                "--log", str(tmp_path / (name + ".log")),
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )

    def test_sigkilled_primary_fails_over_to_the_standby(self, tmp_path):
        baseline = _baseline(tmp_path)
        p_url = f"unix://{tmp_path / 'primary.sock'}"
        s_url = f"unix://{tmp_path / 'standby.sock'}"
        primary = self._serve(tmp_path, "primary")
        standby = None
        try:
            _wait_healthy(p_url)
            standby = self._serve(
                tmp_path, "standby",
                "--replicate-from", p_url,
                "--auto-promote-after", "0",
            )
            assert _wait_healthy(s_url)["role"] == "standby"

            client = CatalogClient(
                f"{p_url},{s_url}",
                max_retries=0, base_delay=0.0, max_delay=0.0,
                seed=CHAOS_SEED, timeout=5.0,
            )
            report1 = _run(stats_catalog=client, run_id="night1")
            assert report1.failures == {}
            client.close()

            # let replication drain, then SIGKILL the primary box
            end = time.monotonic() + 10.0
            while time.monotonic() < end:
                p_seq = _wait_healthy(p_url)["wal_seq"]
                if _wait_healthy(s_url)["wal_seq"] >= p_seq:
                    break
                time.sleep(0.05)
            os.kill(primary.pid, signal.SIGKILL)
            primary.wait(timeout=10)

            night2 = CatalogClient(
                f"{p_url},{s_url}",
                max_retries=0, base_delay=0.0, max_delay=0.0,
                seed=CHAOS_SEED, timeout=5.0,
            )
            report2 = _run(stats_catalog=night2, run_id="night2")
            assert report2.failures == {}
            assert not report2.catalog_degraded
            assert not night2.degraded
            assert report2.catalog_failovers >= 1
            assert _plan_key(report2) == _plan_key(baseline)
            for name, plan in report2.plans.items():
                assert plan.confidence == baseline.plans[name].confidence

            health = _wait_healthy(s_url)
            assert health["role"] == "primary"
            assert health["epoch"] >= 2
            night2.close()
        finally:
            for proc in (primary, standby):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
