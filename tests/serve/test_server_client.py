"""HTTP server round trips and the degrading client's failure ladder."""

import pytest

from repro.core.statistics import Statistic
from repro.engine.faults import FaultPlan, FaultSpec
from repro.serve.client import (
    CatalogClient,
    CatalogUnavailable,
    is_catalog_url,
    resolve_stats_catalog,
)
from repro.serve.server import ServerThread, parse_listen
from repro.serve.service import FenceError

pytestmark = pytest.mark.catalog


def _stat(name="R"):
    from repro.algebra.expressions import SubExpression

    return Statistic.card(SubExpression.of(name))


@pytest.fixture()
def server(tmp_path):
    listen = f"unix://{tmp_path / 'catalog.sock'}"
    with ServerThread(
        listen, tmp_path / "catalog.json", fsync=False,
        log_path=tmp_path / "server.log",
    ) as thread:
        yield thread


def fast_client(url, **kwargs):
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("base_delay", 0.0)
    kwargs.setdefault("max_delay", 0.0)
    return CatalogClient(url, **kwargs)


class TestParseListen:
    def test_forms(self):
        assert parse_listen("unix:///tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_listen("127.0.0.1:8642") == ("tcp", ("127.0.0.1", 8642))
        assert parse_listen("http://0.0.0.0:9000") == ("tcp", ("0.0.0.0", 9000))
        # port 0 stays valid: tests bind ephemeral ports through it
        assert parse_listen("127.0.0.1:0") == ("tcp", ("127.0.0.1", 0))

    def test_bad_forms(self):
        from repro.core.persistence import PersistenceError

        with pytest.raises(PersistenceError):
            parse_listen("no-port-here")
        with pytest.raises(PersistenceError):
            parse_listen("unix://")
        with pytest.raises(PersistenceError, match="empty host"):
            parse_listen(":8000")
        with pytest.raises(PersistenceError, match="out of range"):
            parse_listen("127.0.0.1:70000")
        with pytest.raises(PersistenceError, match="bad listen address"):
            parse_listen("127.0.0.1:")
        with pytest.raises(PersistenceError, match="bad listen address"):
            parse_listen("127.0.0.1:80a0")


class TestIsCatalogUrl:
    def test_urls_and_paths(self):
        assert is_catalog_url("http://host:1")
        assert is_catalog_url("unix:///p.sock")
        assert not is_catalog_url("/var/catalog.json")
        assert not is_catalog_url(None)


class TestHttpRoundTrips:
    def test_healthz(self, server):
        client = fast_client(server.url)
        doc = client.healthz()
        assert doc["entries"] == 0 and doc["wal_seq"] == 0
        client.close()

    def test_record_save_visible_to_second_client(self, server):
        writer = fast_client(server.url)
        writer.record("k1", "se:k1", _stat(), 42.0, workflow="wf", run_id="r")
        writer.save()
        assert not writer.degraded
        reader = fast_client(server.url)
        assert reader.get("k1").value() == 42.0
        assert len(reader.entries) == 1
        writer.close(), reader.close()

    def test_metrics_endpoint_renders_prometheus(self, server):
        client = fast_client(server.url)
        client.healthz()
        status, text = 200, None
        conn = client._connect()
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        status, text = response.status, response.read().decode()
        assert status == 200
        assert "catalog_server_requests_total" in text
        client.close()

    def test_unknown_endpoint_is_404(self, server):
        from repro.serve.client import CatalogRequestError

        client = fast_client(server.url)
        with pytest.raises(CatalogRequestError, match="no such endpoint"):
            client._request("GET", "/nope")
        client.close()

    def test_mark_stale_and_gc_round_trip(self, server):
        client = fast_client(server.url)
        client.record("k1", "se:k1", _stat(), 1.0, workflow="wf", run_id="r")
        client.record("k2", "se:k2", _stat("S"), 2.0, workflow="wf", run_id="r")
        client.save()
        client.mark_stale(["k1"])
        client.save()
        removed = client.gc()
        assert removed == 1
        fresh = fast_client(server.url)
        assert set(fresh.entries) == {"k2"}
        client.close(), fresh.close()

    def test_tcp_listener_works_too(self, tmp_path):
        with ServerThread(
            "127.0.0.1:0", tmp_path / "catalog.json", fsync=False
        ) as thread:
            client = fast_client(thread.url)
            assert client.healthz()["entries"] == 0
            client.close()


class TestLeaseFencing:
    def test_save_under_lease_releases_for_the_next_writer(self, server):
        a = fast_client(server.url, client_id="a")
        a.record("ka", "se:ka", _stat(), 1.0, workflow="wf", run_id="r")
        a.save()
        b = fast_client(server.url, client_id="b")
        b.record("kb", "se:kb", _stat("S"), 2.0, workflow="wf", run_id="r")
        b.save()  # would 409 if a's lease were still held
        assert {  # both writes landed
            "ka", "kb"
        } <= set(fast_client(server.url).entries)
        a.close(), b.close()

    def test_second_writer_blocked_while_lease_live(self, server):
        a = fast_client(server.url, client_id="a")
        a.fence = int(a._request("POST", "/lease", {"holder": "a"})["fence"])
        b = fast_client(server.url, client_id="b")
        b.record("kb", "se:kb", _stat(), 1.0, workflow="wf", run_id="r")
        with pytest.raises(FenceError):
            b.save()
        a._request("POST", "/lease/release", {"fence": a.fence})
        a.close(), b.close()


class TestDegradation:
    def test_unreachable_server_degrades_not_raises(self, tmp_path):
        client = fast_client(
            f"unix://{tmp_path / 'nobody-home.sock'}", max_retries=1
        )
        assert client.get("k") is None  # served by the (empty) mirror
        assert client.degraded

    def test_fallback_file_seeds_the_mirror(self, tmp_path):
        from repro.catalog.store import StatisticsCatalog

        fallback = StatisticsCatalog(tmp_path / "fallback.json")
        fallback.record(
            "k", "se:k", _stat(), 7.0, workflow="wf", run_id="r"
        )
        fallback.save()
        client = fast_client(
            f"unix://{tmp_path / 'gone.sock'}",
            fallback=tmp_path / "fallback.json",
            max_retries=0,
        )
        assert client.get("k").value() == 7.0
        assert client.degraded

    def test_degraded_save_folds_into_fallback_file(self, tmp_path):
        from repro.catalog.store import StatisticsCatalog

        client = fast_client(
            f"unix://{tmp_path / 'gone.sock'}",
            fallback=tmp_path / "fallback.json",
            max_retries=0,
        )
        client.record("k", "se:k", _stat(), 9.0, workflow="wf", run_id="r")
        client.save()
        assert StatisticsCatalog.open(
            tmp_path / "fallback.json"
        ).entries["k"].value() == 9.0

    def test_breaker_opens_after_threshold(self, tmp_path):
        clock = {"now": 0.0}
        client = CatalogClient(
            f"unix://{tmp_path / 'gone.sock'}",
            max_retries=0, base_delay=0.0, max_delay=0.0,
            breaker_threshold=2, breaker_cooldown=30.0,
            clock=lambda: clock["now"],
        )
        for _ in range(2):
            with pytest.raises(CatalogUnavailable):
                client._request("GET", "/healthz")
        with pytest.raises(CatalogUnavailable, match="circuit breaker open"):
            client._request("GET", "/healthz")
        clock["now"] += 31.0  # cooldown over: probes are allowed again
        with pytest.raises(CatalogUnavailable, match="unreachable"):
            client._request("GET", "/healthz")


class TestChaosFaults:
    def _plan(self, kind, **over):
        return FaultPlan(
            (FaultSpec(target="*", kind=kind, **over),), seed=1337
        )

    def test_net_flap_survived_by_one_retry(self, server):
        client = fast_client(
            server.url, faults=self._plan("net-flap"), max_retries=2
        )
        assert client.healthz()["entries"] == 0
        assert client.retries >= 1
        assert not client.degraded
        client.close()

    def test_server_hang_is_transient(self, server):
        client = fast_client(
            server.url,
            faults=self._plan("server-hang", delay=0.01, times=1),
            max_retries=2,
        )
        assert client.healthz() is not None
        assert not client.degraded
        client.close()

    def test_server_kill_degrades_immediately(self, server):
        client = fast_client(
            server.url, faults=self._plan("server-kill"), max_retries=3
        )
        assert client.get("k") is None
        assert client.degraded
        assert client.retries == 0  # permanent: retrying would be pointless
        client.close()


class TestResolve:
    def test_resolution_paths(self, tmp_path, server):
        from repro.catalog.store import StatisticsCatalog

        client = resolve_stats_catalog(server.url)
        assert isinstance(client, CatalogClient)
        client.close()
        store = resolve_stats_catalog(str(tmp_path / "c.json"))
        assert isinstance(store, StatisticsCatalog)
        assert resolve_stats_catalog(store) is store
