"""WAL framing, replay, torn tails, truncation and single-writer lock."""

import json

import pytest

from repro.serve.wal import (
    WAL_FORMAT_VERSION,
    WalError,
    WriteAheadLog,
    decode_record,
    encode_record,
)

pytestmark = pytest.mark.catalog


class TestFraming:
    def test_encode_decode_round_trip(self):
        doc = {"v": 1, "seq": 3, "op": "put", "entries": [{"key": "k"}]}
        assert decode_record(encode_record(doc)) == doc

    def test_bad_checksum_is_rejected(self):
        line = bytearray(encode_record({"v": 1, "seq": 1, "op": "stale"}))
        line[0] = ord("f") if line[0] != ord("f") else ord("0")
        assert decode_record(bytes(line)) is None

    def test_flipped_payload_byte_is_rejected(self):
        line = bytearray(encode_record({"v": 1, "seq": 1, "op": "stale"}))
        line[-3] ^= 0x01
        assert decode_record(bytes(line)) is None

    def test_missing_newline_is_torn(self):
        line = encode_record({"v": 1, "seq": 1, "op": "stale"})
        assert decode_record(line[:-1]) is None

    def test_non_object_payload_is_rejected(self):
        import zlib

        body = b"[1,2]"
        framed = f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode() + body + b"\n"
        assert decode_record(framed) is None


class TestAppendReplay:
    def test_append_then_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        wal.append("stale", 1, keys=["a"])
        wal.append("stale", 2, keys=["b"])
        wal.close()

        fresh = WriteAheadLog(tmp_path / "cat.wal")
        records = list(fresh.replay())
        assert [r["seq"] for r in records] == [1, 2]
        assert fresh.last_seq == 2
        fresh.close()

    def test_replay_skips_snapshot_absorbed_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        for seq in range(1, 6):
            wal.append("stale", seq, keys=[f"k{seq}"])
        assert [r["seq"] for r in wal.replay(after_seq=3)] == [4, 5]
        wal.close()

    def test_unknown_op_is_refused_at_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "cat.wal")
        with pytest.raises(WalError, match="unknown WAL op"):
            wal.append("format-disk", 1)
        wal.close()

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "cat.wal"
        record = encode_record(
            {"v": WAL_FORMAT_VERSION + 1, "seq": 1, "op": "stale"}
        )
        path.write_bytes(record)
        wal = WriteAheadLog(path)
        with pytest.raises(WalError, match="unsupported"):
            list(wal.replay())
        wal.close()

    def test_missing_file_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "never-written.wal")
        assert list(wal.replay()) == []
        wal.close()


class TestTornTail:
    def _write(self, path, n=3):
        wal = WriteAheadLog(path)
        for seq in range(1, n + 1):
            wal.append("stale", seq, keys=[f"k{seq}"])
        wal.close()

    @pytest.mark.parametrize("chop", [1, 5, 20])
    def test_torn_final_record_is_discarded(self, tmp_path, chop):
        path = tmp_path / "cat.wal"
        self._write(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - chop])
        wal = WriteAheadLog(path)
        # every chop lands inside record 3: records 1-2 replay, 3 is gone
        assert [r["seq"] for r in wal.replay()] == [1, 2]
        wal.close()

    def test_damage_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "cat.wal"
        self._write(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"00000000 {garbage}\n"
        path.write_bytes(b"".join(lines))
        wal = WriteAheadLog(path)
        with pytest.raises(WalError, match="damage before the tail"):
            list(wal.replay())
        wal.close()

    def test_every_prefix_of_acknowledged_bytes_replays_cleanly(self, tmp_path):
        # crash-safety property at the byte level: chopping the file at ANY
        # point yields a clean replay of every fully-acknowledged record
        path = tmp_path / "cat.wal"
        self._write(path, n=4)
        data = path.read_bytes()
        boundaries = [i for i, b in enumerate(data) if b == ord("\n")]
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            complete = sum(1 for b in boundaries if b < cut)
            wal = WriteAheadLog(path)
            assert len(list(wal.replay())) == complete
            wal.close()


class TestTruncate:
    def test_truncate_resets_the_file(self, tmp_path):
        path = tmp_path / "cat.wal"
        wal = WriteAheadLog(path)
        wal.append("stale", 1, keys=["a"])
        wal.truncate()
        assert path.read_bytes() == b""
        # appends keep working after a truncation
        wal.append("stale", 2, keys=["b"])
        assert [r["seq"] for r in wal.replay(after_seq=1)] == [2]
        wal.close()


class TestSingleWriter:
    def test_second_writer_is_refused(self, tmp_path):
        path = tmp_path / "cat.wal"
        first = WriteAheadLog(path)
        with pytest.raises(WalError, match="held by another"):
            WriteAheadLog(path)
        first.close()
        # released on close: a successor may take over
        second = WriteAheadLog(path)
        second.close()


class TestDurability:
    def test_records_are_compact_single_lines(self, tmp_path):
        path = tmp_path / "cat.wal"
        wal = WriteAheadLog(path)
        wal.append("put", 1, entries=[{"key": "k", "value": 1}])
        wal.close()
        lines = path.read_bytes().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0][9:])
        assert payload["op"] == "put" and payload["seq"] == 1
