"""CatalogService: durability, fencing, snapshots, fleet scheduling.

The crash-safety property here is the ISSUE's acceptance criterion: for
any prefix of a seeded workload, SIGKILL the server (modelled as dropping
the service without a snapshot), restart it, and the replayed catalog
must equal -- byte for byte -- a reference that applied the same prefix
synchronously with no crash.
"""

import json
import random

import pytest

from repro.core.persistence import PersistenceError
from repro.serve.service import CatalogService, FenceError

pytestmark = pytest.mark.catalog

NOW = 1_000_000.0


def entry_doc(key, value=1.0, se_key=None, observed_at=NOW, **over):
    doc = {
        "key": key,
        "se_key": se_key if se_key is not None else f"se:{key}",
        "stat": {"kind": "card"},
        "value": value,
        "repr": f"T[{key}]",
        "workflow": "wf",
        "run_id": "r1",
        "observed_at": observed_at,
    }
    doc.update(over)
    return doc


def service(tmp_path, **kwargs):
    kwargs.setdefault("clock", lambda: NOW)
    kwargs.setdefault("fsync", False)  # tests do not need real disk flushes
    return CatalogService(tmp_path / "catalog.json", **kwargs)


class TestMutations:
    def test_put_then_lookup(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([entry_doc("a", 10), entry_doc("b", 20)])
        assert len(svc) == 2
        found = svc.lookup(["a", "b", "missing"])
        assert [e.key for e in found] == ["a", "b"]
        svc.wal.close()

    def test_lookup_counts_hits_but_does_not_wal_them(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([entry_doc("a")])
        before = svc.wal.records_written
        svc.lookup(["a"])
        svc.lookup(["a"])
        assert svc.get("a").hits == 2
        assert svc.wal.records_written == before  # advisory only
        svc.wal.close()

    def test_merge_newer_observation_wins(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([entry_doc("a", 1, observed_at=NOW)])
        svc.merge_entries([entry_doc("a", 2, observed_at=NOW - 10)])
        assert svc.get("a").value() == 1  # older loses
        svc.merge_entries([entry_doc("a", 3, observed_at=NOW + 10)])
        assert svc.get("a").value() == 3  # newer wins
        svc.wal.close()

    def test_stale_and_quality(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([entry_doc("a"), entry_doc("b")])
        svc.mark_stale(["a"])
        assert svc.get("a").stale and not svc.get("b").stale
        assert svc.lookup(["a"]) == []  # stale never matches
        svc.adjust_quality([["b", 1.0]])  # full error halves quality
        assert svc.get("b").quality == pytest.approx(0.5)
        svc.wal.close()

    def test_gc_logs_an_explicit_delete(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([
            entry_doc("keep"),
            entry_doc("old", observed_at=NOW - 10**9),
            entry_doc("bad", quality=0.1),
        ])
        removed = svc.gc()
        assert removed == 2
        assert {e.key for e in svc.all_entries()} == {"keep"}
        # restart from WAL alone: the delete replays deterministically
        svc.wal.close()
        again = service(tmp_path)
        assert {e.key for e in again.all_entries()} == {"keep"}
        again.wal.close()


class TestLeases:
    def test_fenced_write_rejected_after_takeover(self, tmp_path):
        clock = {"now": NOW}
        svc = service(tmp_path, clock=lambda: clock["now"], lease_ttl=60.0)
        stale_fence = svc.acquire_lease("night-a")
        clock["now"] += 120  # night-a stalls past its TTL
        fresh_fence = svc.acquire_lease("night-b")
        assert fresh_fence > stale_fence
        with pytest.raises(FenceError, match="stale fence"):
            svc.put_entries([entry_doc("x")], fence=stale_fence)
        svc.put_entries([entry_doc("x")], fence=fresh_fence)
        assert svc.get("x") is not None
        svc.wal.close()

    def test_live_lease_is_not_stolen(self, tmp_path):
        svc = service(tmp_path, lease_ttl=60.0)
        svc.acquire_lease("night-a")
        with pytest.raises(FenceError, match="held by"):
            svc.acquire_lease("night-b")
        svc.wal.close()

    def test_release_frees_the_lease_for_the_next_holder(self, tmp_path):
        svc = service(tmp_path, lease_ttl=60.0)
        fence = svc.acquire_lease("night-a")
        assert svc.release_lease(fence)
        svc.acquire_lease("night-b")  # no FenceError: lease was given back
        svc.wal.close()

    def test_release_with_stale_fence_is_a_noop(self, tmp_path):
        clock = {"now": NOW}
        svc = service(tmp_path, clock=lambda: clock["now"], lease_ttl=60.0)
        old = svc.acquire_lease("night-a")
        clock["now"] += 120
        svc.acquire_lease("night-b")
        assert not svc.release_lease(old)  # a's late release frees nothing
        assert svc.lease_holder == "night-b"
        svc.wal.close()

    def test_fence_survives_restart_and_snapshot(self, tmp_path):
        svc = service(tmp_path, lease_ttl=10**9)
        fence = svc.acquire_lease("night-a")
        svc.snapshot()  # truncates the WAL but re-seeds the lease record
        svc.wal.close()
        again = service(tmp_path, lease_ttl=10**9)
        assert again.fence == fence
        with pytest.raises(FenceError):
            again.acquire_lease("night-b")  # still held across restart
        again.wal.close()


class TestSnapshots:
    def test_snapshot_cadence_flags_debt_and_maybe_snapshot_pays_it(
        self, tmp_path
    ):
        svc = service(tmp_path, snapshot_every=3)
        for i in range(7):
            svc.put_entries([entry_doc(f"k{i}")])
        # the write path only *flags* snapshot debt at the cadence -- the
        # background daemon (or an explicit maybe_snapshot) pays it, so
        # the fsync'd request path never blocks on a snapshot write
        assert svc.snapshot_due
        assert svc.snapshot_seq == 0
        assert svc.maybe_snapshot()
        assert svc.snapshot_seq == 7
        assert not svc.snapshot_due
        assert not svc.maybe_snapshot()  # no new debt, no snapshot
        svc.wal.close()
        again = service(tmp_path)
        assert len(again) == 7
        again.wal.close()

    def test_snapshot_file_is_a_plain_catalog(self, tmp_path):
        from repro.catalog.store import StatisticsCatalog

        svc = service(tmp_path)
        svc.put_entries([entry_doc("a", 42)])
        svc.snapshot()
        svc.wal.close()
        catalog = StatisticsCatalog.open(tmp_path / "catalog.json")
        assert catalog.entries["a"].value() == 42


class TestCrashSafetyProperty:
    """Any prefix of a seeded workload + SIGKILL == synchronous reference."""

    OPS_PER_RUN = 40

    def _workload(self, seed):
        rng = random.Random(seed)
        ops = []
        for i in range(self.OPS_PER_RUN):
            kind = rng.choice(["put", "merge", "stale", "quality", "gc"])
            key = f"k{rng.randrange(8)}"
            if kind in ("put", "merge"):
                ops.append((kind, [entry_doc(
                    key, rng.randrange(100),
                    observed_at=NOW + rng.randrange(100),
                )]))
            elif kind == "stale":
                ops.append(("stale", [key]))
            elif kind == "quality":
                ops.append(("quality", [[key, rng.random()]]))
            else:
                ops.append(("gc", None))
        return ops

    def _apply(self, svc, op):
        kind, payload = op
        if kind == "put":
            svc.put_entries(payload)
        elif kind == "merge":
            svc.merge_entries(payload)
        elif kind == "stale":
            svc.mark_stale(payload)
        elif kind == "quality":
            svc.adjust_quality(payload)
        else:
            svc.gc(min_quality=0.4)

    def _doc(self, svc):
        doc = svc.to_dict()
        doc.pop("wal_seq")  # seq bookkeeping differs; the catalog may not
        return json.dumps(doc, sort_keys=True).encode()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_killed_replay_equals_synchronous_reference(
        self, tmp_path, seed
    ):
        ops = self._workload(seed)
        prefixes = sorted({0, 1, 7, len(ops) // 2, len(ops)})
        for prefix in prefixes:
            crash_dir = tmp_path / f"crash-{seed}-{prefix}"
            ref_dir = tmp_path / f"ref-{seed}-{prefix}"
            crash_dir.mkdir(), ref_dir.mkdir()

            victim = service(crash_dir, snapshot_every=5)
            reference = service(ref_dir, snapshot_every=10**9)
            for op in ops[:prefix]:
                self._apply(victim, op)
                self._apply(reference, op)
            victim.wal.close()  # SIGKILL: no snapshot, no graceful close

            revived = service(crash_dir)
            assert self._doc(revived) == self._doc(reference), (
                f"seed={seed} prefix={prefix}: replayed state diverged"
            )
            revived.wal.close()
            reference.wal.close()


class TestFleetScheduling:
    def test_each_statistic_claimed_once_per_night(self, tmp_path):
        from repro.workloads import case

        svc = service(tmp_path)
        workflow = case(11).build()
        first = svc.plan_share(workflow, night="n1", client="alice")
        assert first["observe"]  # cold catalog: alice taps her share
        second = svc.plan_share(workflow, night="n1", client="bob")
        assert second["observe"] == []  # alice already claimed them
        alice_keys = {o["key"] for o in first["observe"]}
        assert alice_keys & set(second["shared"])
        # a new night resets the claims
        third = svc.plan_share(workflow, night="n2", client="bob")
        assert third["observe"]
        svc.wal.close()

    def test_catalog_entries_are_zero_cost_for_everyone(self, tmp_path):
        from repro.workloads import case

        svc = service(tmp_path)
        workflow = case(11).build()
        share = svc.plan_share(workflow, night="n1", client="a")
        # record every claimed statistic as observed, then replan: the
        # catalog now covers them and nobody needs to tap
        for obs in share["observe"]:
            svc.put_entries([entry_doc(
                obs["key"], 5, se_key=f"se:{obs['key']}"
            )])
        later = svc.plan_share(workflow, night="n2", client="b")
        claimed = {o["key"] for o in later["observe"]}
        assert not (claimed & {o["key"] for o in share["observe"]})
        svc.wal.close()


class TestStartup:
    def test_corrupt_snapshot_raises_persistence_error(self, tmp_path):
        (tmp_path / "catalog.json").write_text("{ nope")
        with pytest.raises(PersistenceError):
            CatalogService(tmp_path / "catalog.json", fsync=False)

    def test_stats_document(self, tmp_path):
        svc = service(tmp_path)
        svc.put_entries([entry_doc("a")])
        doc = svc.stats()
        assert doc["entries"] == 1
        assert doc["wal_seq"] == 1
        svc.wal.close()
