"""Unit tests for source contracts and row-level validation."""

import pytest

from repro.engine.table import Table
from repro.quality import (
    ColumnContract,
    ContractSet,
    QualityError,
    SourceContract,
    validate_rows,
)


def _table():
    return Table.wrap(
        {
            "id": [1, 2, 3, 4],
            "name": ["a", "b", "c", "d"],
            "score": [1.5, 2.0, None, "oops"],
        }
    )


class TestColumnContract:
    def test_rejects_unknown_type(self):
        with pytest.raises(QualityError):
            ColumnContract(name="x", type="decimal")

    def test_rejects_unknown_domain_clause(self):
        with pytest.raises(QualityError):
            ColumnContract(name="x", domain="between:1:2")

    def test_bool_is_not_int(self):
        check = ColumnContract(name="x", type="int").checker()
        assert check(3)
        assert not check(True)

    def test_float_accepts_int(self):
        check = ColumnContract(name="x", type="float").checker()
        assert check(3) and check(3.5)
        assert not check("3.5")

    def test_nullability(self):
        assert not ColumnContract(name="x", nullable=False).checker()(None)
        assert ColumnContract(name="x", nullable=True).checker()(None)

    @pytest.mark.parametrize(
        "domain,value,ok",
        [
            ("min:0", 1, True),
            ("min:0", -1, False),
            ("min:0,max:10", 11, False),
            ("in:red|green", "green", True),
            ("in:red|green", "blue", False),
            ("nonempty", "", False),
            ("nonempty", "x", True),
        ],
    )
    def test_domain_dsl(self, domain, value, ok):
        assert ColumnContract(name="x", domain=domain).checker()(value) is ok

    def test_classify_orders_null_type_domain(self):
        contract = ColumnContract(
            name="x", type="int", nullable=False, domain="min:0"
        )
        assert contract.classify(None)[0] == "null"
        assert contract.classify("s")[0] == "type"
        assert contract.classify(-1)[0] == "domain"

    def test_roundtrip(self):
        contract = ColumnContract(
            name="x", type="int", nullable=False, domain="min:0"
        )
        assert ColumnContract.from_dict(contract.to_dict()) == contract

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(QualityError):
            ColumnContract.from_dict({"name": "x", "typ": "int"})

    def test_infer_unanimous_type(self):
        assert ColumnContract.infer("x", [1, 2, 3]).type == "int"
        assert ColumnContract.infer("x", ["a", "b"]).type == "str"

    def test_infer_mixed_numeric_is_float(self):
        assert ColumnContract.infer("x", [1, 2.5]).type == "float"

    def test_infer_mixed_other_is_any(self):
        assert ColumnContract.infer("x", [1, "a"]).type == "any"

    def test_infer_nullability(self):
        assert ColumnContract.infer("x", [1, None]).nullable
        assert not ColumnContract.infer("x", [1, 2]).nullable


class TestContractSet:
    def test_infer_and_roundtrip(self, tmp_path):
        contracts = ContractSet.infer({"t": _table()})
        path = tmp_path / "contracts.json"
        contracts.save(path)
        loaded = ContractSet.from_file(path)
        assert loaded.sources() == ["t"]
        assert loaded.get("t") == contracts.get("t")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(QualityError):
            SourceContract(
                source="t",
                columns=(
                    ColumnContract(name="x"),
                    ColumnContract(name="x"),
                ),
            )

    def test_describe_mentions_columns(self):
        text = ContractSet.infer({"t": _table()}).describe()
        assert "t:" in text and "id:int" in text


class TestValidateRows:
    def test_clean_table_returned_unchanged(self):
        table = Table.wrap({"id": [1, 2], "name": ["a", "b"]})
        contract = SourceContract.infer("t", table)
        clean, dead, violations = validate_rows(table, contract)
        assert clean is table  # zero-copy on the healthy path
        assert dead.num_rows == 0 and not violations

    def test_invalid_rows_are_split_out(self):
        table = _table()
        contract = SourceContract(
            source="t",
            columns=(
                ColumnContract(name="id", type="int", nullable=False),
                ColumnContract(name="name", type="str", nullable=False),
                ColumnContract(name="score", type="float", nullable=False),
            ),
        )
        clean, dead, violations = validate_rows(table, contract)
        assert clean.num_rows == 2 and dead.num_rows == 2
        assert clean.column("id") == [1, 2]
        assert dead.column("id") == [3, 4]
        assert [(v.row, v.column, v.code) for v in violations] == [
            (2, "score", "null"),
            (3, "score", "type"),
        ]

    def test_one_row_quarantined_once_with_all_violations(self):
        table = Table.wrap({"a": [None, 1], "b": [None, 2]})
        contract = SourceContract(
            source="t",
            columns=(
                ColumnContract(name="a", nullable=False),
                ColumnContract(name="b", nullable=False),
            ),
        )
        clean, dead, violations = validate_rows(table, contract)
        assert dead.num_rows == 1
        assert len(violations) == 2
