"""Chaos: dirty-data injection against the quality gate, end to end.

The ISSUE's acceptance criterion: a run with ~1% injected dirty rows must
complete, quarantine *exactly* the injected rows, exclude them from every
tapped statistic and materialized count, and still select the same plan as
the clean baseline.  Every injection is seeded via ``REPRO_CHAOS_SEED``;
backend coverage is parametrized (restrict with ``REPRO_CHAOS_BACKEND``
for the CI matrix).
"""

import os

import pytest

from repro.algebra.expressions import SubExpression
from repro.engine.faults import CORRUPT_SENTINEL, FaultPlan, FaultSpec
from repro.framework.pipeline import StatisticsPipeline
from repro.quality import ContractSet, QuarantineStore
from repro.workloads import case

pytestmark = pytest.mark.chaos

SE = SubExpression.of

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
_only = os.environ.get("REPRO_CHAOS_BACKEND", "")
BACKENDS = [_only] if _only else ["columnar", "streaming", "vectorized"]

WORKFLOW = 25


def _sources():
    return case(WORKFLOW).tables(scale=0.05, seed=7)


def _dirty_plan():
    # ~1% of rows poisoned per source, each by a different injector, plus
    # one upstream rename for the schema-drift path
    return FaultPlan(
        (
            FaultSpec(target="Trade", kind="corrupt-row", fraction=0.01),
            FaultSpec(target="DimAccount", kind="null-burst", fraction=0.01),
            FaultSpec(target="DimSecurity", kind="type-flip", fraction=0.01),
            FaultSpec(
                target="DimDate", kind="column-rename",
                column="year_id", rename_to="yr",
            ),
        ),
        seed=CHAOS_SEED,
    )


def _run_once(backend, **kwargs):
    pipeline = StatisticsPipeline(
        case(WORKFLOW).build(), backend=backend, solver="greedy"
    )
    return pipeline.run_once(_sources(), **kwargs)


def _plan_trees(report):
    # tree reprs only: removing 1% of the rows legitimately shifts costs
    return {name: repr(p.tree) for name, p in report.plans.items()}


@pytest.mark.parametrize("backend", BACKENDS)
class TestDirtyDataChaos:
    def test_dirty_run_quarantines_exactly_the_injected_rows(self, backend):
        sources = _sources()
        contracts = ContractSet.infer(sources)
        injector = _dirty_plan().injector()
        quarantine = QuarantineStore()
        report = _run_once(
            backend,
            faults=injector,
            contracts=contracts,
            quarantine=quarantine,
        )
        assert report.ok

        # exactly the poisoned rows, row for row
        poisoned = _dirty_plan().injector().apply_sources(sources)
        assert set(injector.dirty_rows) == {
            "Trade", "DimAccount", "DimSecurity"
        }
        for name, victims in injector.dirty_rows.items():
            assert victims, name
            dead = report.quarantined[name]
            expected = poisoned[name].take(sorted(victims))
            assert list(dead.rows()) == list(expected.rows()), name
        assert report.rows_quarantined == sum(
            len(v) for v in injector.dirty_rows.values()
        )

        # quarantined rows are excluded from the materialized ground truth
        for name, table in sources.items():
            victims = injector.dirty_rows.get(name, set())
            assert report.run.se_sizes[SE(name)] == table.num_rows - len(
                victims
            ), name

        # the rename survived the gate as a drift event, not a failure
        assert [(e.source, e.kind) for e in report.schema_drift] == [
            ("DimDate", "renamed")
        ]

    def test_dirty_run_selects_the_clean_baseline_plan(self, backend):
        baseline = _run_once(backend)
        report = _run_once(
            backend,
            faults=_dirty_plan().injector(),
            contracts=ContractSet.infer(_sources()),
        )
        assert _plan_trees(report) == _plan_trees(baseline)

    def test_without_contracts_the_dirt_gets_through(self, backend):
        # control: the gate (not luck) is what keeps the dirt out
        injector = _dirty_plan().injector()
        report = _run_once(backend, faults=injector)
        assert report.rows_quarantined == 0
        trade_rows = list(report.run.env["Trade"].rows())
        assert any(CORRUPT_SENTINEL in row for row in trade_rows)


class TestViolationCodes:
    def test_each_injector_yields_its_violation_code(self):
        report = _run_once(
            "columnar",
            faults=_dirty_plan().injector(),
            contracts=ContractSet.infer(_sources()),
        )
        codes = {(v.source, v.code) for v in report.violations}
        assert ("Trade", "type") in codes  # corrupt-row: str sentinel
        assert ("DimAccount", "null") in codes  # null-burst
        assert ("DimSecurity", "type") in codes  # type-flip
