"""Quality gate wired through the pipeline: catalog invalidation, rung
demotion, metrics, tracing, and session threading."""

import pytest

from repro.catalog.store import StatisticsCatalog
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.scheduler import RetryPolicy
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.session import EtlSession
from repro.quality import ContractSet, QuarantineStore
from repro.workloads import case

WORKFLOW = 25
SEED = 1337
FAST = RetryPolicy(max_retries=1, base_delay=0.001, jitter=0.0,
                   seed=SEED, sleep=lambda s: None)

RENAME_DIMDATE = FaultSpec(
    target="DimDate", kind="column-rename", column="year_id", rename_to="yr"
)


def _sources():
    return case(WORKFLOW).tables(scale=0.05, seed=7)


def _contracts():
    return ContractSet.infer(_sources())


def _run_once(**kwargs):
    pipeline = StatisticsPipeline(
        case(WORKFLOW).build(), solver="greedy"
    )
    return pipeline.run_once(_sources(), **kwargs)


class TestSchemaDriftInvalidation:
    def test_drift_marks_matching_catalog_entries_stale(self, tmp_path):
        path = tmp_path / "catalog.json"
        _run_once(stats_catalog=StatisticsCatalog.open(path), run_id="n1")
        before = StatisticsCatalog.open(path)
        assert before.entries and not any(
            e.stale for e in before.entries.values()
        )

        report = _run_once(
            stats_catalog=StatisticsCatalog.open(path),
            contracts=_contracts(),
            faults=FaultPlan((RENAME_DIMDATE,), seed=SEED),
            run_id="n2",
        )
        assert [e.kind for e in report.schema_drift] == ["renamed"]
        assert report.drift_invalidated > 0
        assert "invalidated by schema drift" in report.describe()

    def test_clean_run_invalidates_nothing(self, tmp_path):
        path = tmp_path / "catalog.json"
        _run_once(stats_catalog=StatisticsCatalog.open(path), run_id="n1")
        report = _run_once(
            stats_catalog=StatisticsCatalog.open(path),
            contracts=_contracts(),
            run_id="n2",
        )
        assert report.schema_drift == ()
        assert report.drift_invalidated == 0


class TestConfidenceDemotion:
    def _degraded(self, path, *, drift):
        faults = [FaultSpec(target="B1", kind="permanent")]
        if drift:
            faults.append(RENAME_DIMDATE)
        return _run_once(
            stats_catalog=StatisticsCatalog.open(path),
            contracts=_contracts(),
            faults=FaultPlan(tuple(faults), seed=SEED),
            retry=FAST,
            run_id="degraded",
        )

    def test_drifted_source_reports_prior_level_trust(self, tmp_path):
        path = tmp_path / "catalog.json"
        _run_once(stats_catalog=StatisticsCatalog.open(path), run_id="n1")

        steady = self._degraded(path, drift=False)
        assert steady.degraded["B2"] == "catalog"

        demoted = self._degraded(path, drift=True)
        # B2 joins the drifted DimDate: the catalog still answers, but at
        # prior-level trust -- one rung weaker, honestly reported
        assert demoted.degraded["B2"] == "prior"
        # B3 joins DimSecurity, which did not drift: full catalog trust
        assert demoted.degraded["B3"] == "catalog"


class TestObservability:
    def test_quarantine_metrics_recorded(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        _run_once(
            contracts=_contracts(),
            faults=FaultPlan(
                (
                    FaultSpec(target="Trade", kind="null-burst", rows=2),
                    RENAME_DIMDATE,
                ),
                seed=SEED,
            ),
            metrics=metrics,
        )
        text = metrics.render_prometheus()
        quarantined = [
            line for line in text.splitlines()
            if line.startswith("etl_rows_quarantined_total{")
        ]
        assert quarantined and 'source="Trade"' in quarantined[0]
        assert quarantined[0].endswith(" 2")
        drifted = [
            line for line in text.splitlines()
            if line.startswith("etl_schema_drift_events_total{")
        ]
        assert drifted and 'kind="renamed"' in drifted[0]
        assert 'source="DimDate"' in drifted[0]

    def test_clean_run_emits_no_quarantine_series(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        _run_once(contracts=_contracts(), metrics=metrics)
        text = metrics.render_prometheus()
        assert "etl_rows_quarantined_total" not in text

    def test_trace_carries_quarantine_points(self):
        from repro.obs import Tracer

        tracer = Tracer()
        _run_once(
            contracts=_contracts(),
            faults=FaultPlan(
                (FaultSpec(target="Trade", kind="null-burst", rows=2),),
                seed=SEED,
            ),
            tracer=tracer,
        )
        points = tracer.root.find(kind="quarantine")
        assert {p.name for p in points} == {
            "Trade", "DimAccount", "DimDate", "DimSecurity"
        }
        trade = next(p for p in points if p.name == "Trade")
        assert trade.attrs["quarantined"] == 2


class TestSessionThreading:
    def test_session_accumulates_the_dead_letter(self):
        quarantine = QuarantineStore()
        session = EtlSession(
            StatisticsPipeline(case(WORKFLOW).build(), solver="greedy"),
            contracts=_contracts(),
            quarantine=quarantine,
            faults=FaultPlan(
                (FaultSpec(target="Trade", kind="corrupt-row", rows=3),),
                seed=SEED,
            ),
        )
        record = session.run(_sources())
        assert record.report.rows_quarantined == 3
        assert quarantine.total_rows == 3

    def test_strict_policy_fails_the_run_loudly(self):
        from repro.quality import SchemaDriftError

        session = EtlSession(
            StatisticsPipeline(case(WORKFLOW).build(), solver="greedy"),
            contracts=_contracts(),
            on_drift="strict",
            faults=FaultPlan((RENAME_DIMDATE,), seed=SEED),
        )
        with pytest.raises(SchemaDriftError):
            session.run(_sources())
