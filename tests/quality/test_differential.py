"""Backend-differential quality enforcement.

The quality gate screens sources at the single :class:`BackendExecutor`
choke point, so enforcement must be backend-invariant *by construction*:
the same dirty extract yields the same quarantine decisions, the same
surviving rows, and the same target outputs on every execution backend.
"""

import pytest

from repro.engine.backend import BackendExecutor, get_backend
from repro.engine.faults import FaultPlan, FaultSpec
from repro.quality import ContractSet, QualityGate
from repro.workloads import case

WORKFLOW = 25
BACKENDS = ("columnar", "streaming", "vectorized")

DIRTY = FaultPlan(
    (
        FaultSpec(target="Trade", kind="corrupt-row", fraction=0.02),
        FaultSpec(target="DimAccount", kind="null-burst", rows=3),
        FaultSpec(target="DimSecurity", kind="type-flip", fraction=0.01),
        FaultSpec(
            target="DimDate", kind="column-rename",
            column="month_id", rename_to="month",
        ),
    ),
    seed=1337,
)


def _run(backend_name):
    from repro.algebra.blocks import analyze

    wfcase = case(WORKFLOW)
    sources = wfcase.tables(scale=0.05, seed=7)
    gate = QualityGate(contracts=ContractSet.infer(sources))
    run = BackendExecutor(analyze(wfcase.build()), get_backend(backend_name)).run(
        sources, faults=DIRTY.injector(), quality=gate
    )
    return run


def _fingerprint(run):
    return {
        "quarantined": {
            name: list(table.rows())
            for name, table in run.quarantined.items()
        },
        "violations": [
            (v.source, v.row, v.column, v.code) for v in run.violations
        ],
        "drift": [
            (e.source, e.kind, e.column, e.resolution)
            for e in run.schema_drift
        ],
        # canonical attribute order: the streaming backend materializes
        # targets from row dicts, so its column order differs
        "targets": {
            name: sorted(table.rows(sorted(table.attrs)), key=repr)
            for name, table in run.targets.items()
        },
        "se_sizes": {repr(se): size for se, size in run.se_sizes.items()},
    }


class TestDifferentialQuarantine:
    def test_all_backends_agree_on_dirty_data(self):
        runs = {name: _run(name) for name in BACKENDS}
        reference = _fingerprint(runs[BACKENDS[0]])
        assert reference["quarantined"]  # the injection actually bit
        assert reference["drift"]
        for name in BACKENDS[1:]:
            assert _fingerprint(runs[name]) == reference, name

    def test_quarantine_is_actually_enforced(self):
        run = _run("columnar")
        assert run.rows_quarantined > 0
        assert len(run.violations) >= run.rows_quarantined
