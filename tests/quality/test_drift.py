"""Unit tests for schema-drift reconciliation."""

import pytest

from repro.engine.table import Table
from repro.quality import (
    ColumnContract,
    QualityError,
    SchemaDriftError,
    SourceContract,
    reconcile_schema,
)


def _contract(**types):
    return SourceContract(
        source="t",
        columns=tuple(
            ColumnContract(name=name, type=typ) for name, typ in types.items()
        ),
    )


CONTRACT = _contract(id="int", name="str", score="float")


def _clean():
    return Table.wrap(
        {"id": [1, 2], "name": ["a", "b"], "score": [1.5, 2.0]}
    )


class TestNoDrift:
    def test_matching_table_passes_untouched(self):
        table = _clean()
        out, events = reconcile_schema(table, CONTRACT, "strict")
        assert out is table and events == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(QualityError):
            reconcile_schema(_clean(), CONTRACT, "lenient")


class TestExtraColumns:
    def _table(self):
        return _clean().with_column("debug", ["x", "y"])

    def test_strict_refuses(self):
        with pytest.raises(SchemaDriftError, match="unexpected column"):
            reconcile_schema(self._table(), CONTRACT, "strict")

    @pytest.mark.parametrize("policy", ["ignore-extra", "coerce"])
    def test_lenient_policies_drop(self, policy):
        out, events = reconcile_schema(self._table(), CONTRACT, policy)
        assert out.attrs == ("id", "name", "score")
        assert [(e.kind, e.column, e.resolution) for e in events] == [
            ("added", "debug", "dropped-extra")
        ]


class TestRenamedColumns:
    def _table(self):
        return Table.wrap(
            {"id": [1, 2], "name": ["a", "b"], "score_v2": [1.5, 2.0]}
        )

    def test_coerce_renames_back(self):
        out, events = reconcile_schema(self._table(), CONTRACT, "coerce")
        assert out.attrs == ("id", "name", "score")
        assert out.column("score") == [1.5, 2.0]
        assert [(e.kind, e.column) for e in events] == [("renamed", "score")]

    def test_strict_refuses(self):
        with pytest.raises(SchemaDriftError):
            reconcile_schema(self._table(), CONTRACT, "strict")

    def test_ambiguous_rename_is_not_guessed(self):
        # two type-compatible unknown columns: neither is claimed, and the
        # non-nullable missing column becomes a hard error even under coerce
        contract = SourceContract(
            source="t",
            columns=(
                ColumnContract(name="id", type="int"),
                ColumnContract(name="score", type="float", nullable=False),
            ),
        )
        table = Table.wrap(
            {"id": [1], "score_a": [1.5], "score_b": [2.5]}
        )
        with pytest.raises(SchemaDriftError, match="missing"):
            reconcile_schema(table, contract, "coerce")


class TestRetypedColumns:
    def _table(self):
        return Table.wrap(
            {"id": ["1", "2"], "name": ["a", "b"], "score": [1.5, 2.0]}
        )

    def test_coerce_casts_wholesale(self):
        out, events = reconcile_schema(self._table(), CONTRACT, "coerce")
        assert out.column("id") == [1, 2]
        assert [(e.kind, e.column, e.resolution) for e in events] == [
            ("retyped", "id", "coerced")
        ]

    def test_strict_refuses(self):
        with pytest.raises(SchemaDriftError, match="arrived as str"):
            reconcile_schema(self._table(), CONTRACT, "strict")

    def test_partial_poison_is_not_a_retype(self):
        # unanimity rule: one stray string among ints is row-level dirt,
        # not schema drift -- validation quarantines it instead
        table = Table.wrap(
            {"id": [1, "x"], "name": ["a", "b"], "score": [1.5, 2.0]}
        )
        out, events = reconcile_schema(table, CONTRACT, "strict")
        assert out is table and events == []

    def test_int_column_is_a_valid_float_column(self):
        table = Table.wrap(
            {"id": [1, 2], "name": ["a", "b"], "score": [1, 2]}
        )
        out, events = reconcile_schema(table, CONTRACT, "strict")
        assert out is table and events == []

    def test_uncoercible_values_left_for_quarantine(self):
        table = Table.wrap(
            {"id": ["1", "oops"], "name": ["a", "b"], "score": [1.5, 2.0]}
        )
        out, events = reconcile_schema(table, CONTRACT, "coerce")
        assert out.column("id") == [1, "oops"]
        assert events[0].kind == "retyped"


class TestDroppedColumns:
    def test_coerce_fills_nullable_with_nulls(self):
        table = Table.wrap({"id": [1, 2], "name": ["a", "b"]})
        out, events = reconcile_schema(table, CONTRACT, "coerce")
        assert out.column("score") == [None, None]
        assert [(e.kind, e.column, e.resolution) for e in events] == [
            ("dropped", "score", "filled-null")
        ]

    def test_non_nullable_missing_is_an_error_even_under_coerce(self):
        contract = SourceContract(
            source="t",
            columns=(
                ColumnContract(name="id", type="int"),
                ColumnContract(name="score", type="float", nullable=False),
            ),
        )
        table = Table.wrap({"id": [1, 2]})
        with pytest.raises(SchemaDriftError, match="not nullable"):
            reconcile_schema(table, contract, "coerce")

    @pytest.mark.parametrize("policy", ["strict", "ignore-extra"])
    def test_stricter_policies_refuse(self, policy):
        table = Table.wrap({"id": [1, 2], "name": ["a", "b"]})
        with pytest.raises(SchemaDriftError):
            reconcile_schema(table, CONTRACT, policy)


class TestEventRoundtrip:
    def test_to_from_dict(self):
        from repro.quality import SchemaDriftEvent

        event = SchemaDriftEvent(
            source="t", kind="renamed", column="score",
            detail="arrived as 'score_v2'", resolution="renamed-back",
        )
        assert SchemaDriftEvent.from_dict(event.to_dict()) == event
        assert "renamed" in event.describe()
