"""Dead-letter persistence: save, reload, and corruption handling."""

import json

import pytest

from repro.core.persistence import PersistenceError
from repro.engine.table import Table
from repro.quality import QuarantineStore, SchemaDriftEvent, Violation


def _store():
    store = QuarantineStore()
    store.add(
        "customers",
        Table.wrap({"id": [3, 9], "name": [None, "x"]}),
        [
            Violation("customers", 0, "name", "null", "not nullable"),
            Violation("customers", 1, "id", "domain", "out of range"),
        ],
        [
            SchemaDriftEvent(
                source="customers", kind="added", column="debug",
                resolution="dropped-extra",
            )
        ],
    )
    store.add("orders", Table.empty(("id",)), [])
    return store


class TestRoundtrip:
    def test_save_skips_clean_sources(self, tmp_path):
        written = _store().save(tmp_path)
        assert [p.name for p in written] == ["quarantine-customers.json"]

    def test_load_dir_restores_everything(self, tmp_path):
        _store().save(tmp_path)
        loaded = QuarantineStore.load_dir(tmp_path)
        assert loaded.total_rows == 2
        assert loaded.tables["customers"].column("id") == [3, 9]
        assert [v.code for v in loaded.all_violations()] == ["null", "domain"]
        assert [e.kind for e in loaded.drift_events()] == ["added"]

    def test_missing_directory_is_operational_error(self, tmp_path):
        with pytest.raises(PersistenceError, match="not found"):
            QuarantineStore.load_dir(tmp_path / "nope")

    def test_truncated_artifact_is_operational_error(self, tmp_path):
        _store().save(tmp_path)
        artifact = tmp_path / "quarantine-customers.json"
        artifact.write_text(artifact.read_text()[:25])
        with pytest.raises(PersistenceError):
            QuarantineStore.load_dir(tmp_path)

    def test_artifact_without_table_is_operational_error(self, tmp_path):
        (tmp_path / "quarantine-x.json").write_text(
            json.dumps({"format_version": 1, "kind": "quarantine"})
        )
        with pytest.raises(PersistenceError, match="no table"):
            QuarantineStore.load_dir(tmp_path)

    def test_corrupt_violation_is_operational_error(self, tmp_path):
        _store().save(tmp_path)
        artifact = tmp_path / "quarantine-customers.json"
        doc = json.loads(artifact.read_text())
        doc["violations"] = [{"row": "NaN"}]
        artifact.write_text(json.dumps(doc))
        with pytest.raises(PersistenceError, match="violation"):
            QuarantineStore.load_dir(tmp_path)


class TestDescribe:
    def test_groups_violations_by_column_and_code(self):
        text = _store().describe()
        assert "2 row(s)" in text
        assert "name [null] x1" in text
        assert "id [domain] x1" in text
        assert "drift: customers.debug: added" in text
