"""Tests for what-if plan ranking and the DOT renderers."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.dot import analysis_to_dot, plan_to_dot, workflow_to_dot
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.estimation.costmodel import PlanCostModel
from repro.estimation.whatif import rank_plans, rank_workflow
from repro.workloads import case


@pytest.fixture(scope="module")
def ranked():
    wfcase = case(13)  # 5-way star
    analysis = analyze(wfcase.build())
    sources = wfcase.tables(scale=0.15, seed=4)
    truth = ground_truth_cardinalities(analysis, sources)
    block = analysis.blocks[0]
    return analysis, block, dict(truth), rank_plans(block, dict(truth))


class TestRankPlans:
    def test_sorted_by_cost(self, ranked):
        _a, _b, _t, ranking = ranked
        costs = [p.cost for p in ranking.plans]
        assert costs == sorted(costs)
        assert [p.rank for p in ranking.plans] == list(
            range(1, len(costs) + 1)
        )

    def test_covers_whole_plan_space(self, ranked):
        analysis, block, _t, ranking = ranked
        assert len(ranking.plans) == block.graph.count_trees()

    def test_initial_plan_present(self, ranked):
        from repro.algebra.plans import tree_splits

        _a, block, _t, ranking = ranked
        # identity is by realized joins (equi-joins are symmetric)
        assert frozenset(tree_splits(ranking.initial.tree)) == frozenset(
            tree_splits(block.initial_tree)
        )
        assert ranking.speedup_available >= 1.0
        assert ranking.risk_avoided >= ranking.speedup_available

    def test_best_matches_optimizer(self, ranked):
        from repro.estimation.optimizer import PlanOptimizer

        analysis, block, truth, ranking = ranked
        best = PlanOptimizer(analysis, truth).optimize()[block.name]
        assert ranking.best.cost == pytest.approx(best.cost)

    def test_costs_verified_by_execution(self, ranked):
        """The top-ranked plan really is cheaper than the worst when both
        are executed."""
        analysis, block, truth, ranking = ranked
        wfcase = case(13)
        sources = wfcase.tables(scale=0.15, seed=4)
        model_best = Executor(analysis).run(
            sources, trees={block.name: ranking.best.tree}
        )
        model_worst = Executor(analysis).run(
            sources, trees={block.name: ranking.worst.tree}
        )
        def cost(run, tree):
            return PlanCostModel(dict(run.se_sizes)).tree_cost(tree)

        assert cost(model_best, ranking.best.tree) <= cost(
            model_worst, ranking.worst.tree
        )

    def test_describe_mentions_initial(self, ranked):
        _a, _b, _t, ranking = ranked
        assert "initial" in ranking.describe(top=3)

    def test_rank_workflow_skips_pinned(self):
        wfcase = case(23)  # pinned 2-way + 3-way
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.15, seed=4)
        truth = ground_truth_cardinalities(analysis, sources)
        rankings = rank_workflow(analysis, dict(truth))
        pinned = [b.name for b in analysis.blocks if b.pinned]
        assert all(name not in rankings for name in pinned)
        assert rankings  # the re-orderable block is ranked


class TestDotRendering:
    def test_workflow_dot(self):
        workflow = case(11).build()
        dot = workflow_to_dot(workflow)
        assert dot.startswith("digraph workflow")
        assert "cylinder" in dot  # sources
        assert "doubleoctagon" in dot  # targets
        assert dot.count("->") >= len(workflow.nodes()) - len(workflow.sources())

    def test_plan_dot(self):
        analysis = analyze(case(11).build())
        dot = plan_to_dot(analysis.blocks[0].initial_tree)
        assert dot.startswith("digraph plan")
        assert "Trade" in dot

    def test_analysis_dot_clusters_blocks(self):
        analysis = analyze(case(23).build())
        dot = analysis_to_dot(analysis)
        assert dot.count("subgraph cluster_") == len(analysis.blocks)
        assert "pinned" in dot
