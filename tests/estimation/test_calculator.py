"""Tests for CSS evaluation: each rule's compute semantics."""

import pytest

from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.core.css import CSS, CssCatalog
from repro.core.histogram import Histogram
from repro.core.statistics import Statistic, StatisticsStore
from repro.estimation.calculator import (
    StatisticsCalculator,
    group_distinct,
    join_histograms,
    compute_statistics,
)

SE = SubExpression.of
H = Histogram.single


class TestJoinHistograms:
    def test_single_side_carried(self):
        h1 = Histogram(("a", "b"), {(1, 10): 2, (2, 20): 3})
        h2 = H("a", {1: 5})
        out = join_histograms(h1, h2, ("a",), ("b",))
        assert out == H("b", {10: 10})

    def test_both_sides_carried(self):
        h1 = Histogram(("a", "b"), {(1, 10): 2})
        h2 = Histogram(("a", "c"), {(1, 7): 3, (2, 8): 4})
        out = join_histograms(h1, h2, ("a",), ("b", "c"))
        assert out == Histogram(("b", "c"), {(10, 7): 6})

    def test_key_in_bs(self):
        h1 = Histogram(("a", "b"), {(1, 10): 2})
        h2 = H("a", {1: 3})
        out = join_histograms(h1, h2, ("a",), ("a", "b"))
        assert out == Histogram(("a", "b"), {(1, 10): 6})

    def test_matches_brute_force(self):
        left = [(1, "x"), (1, "y"), (2, "x"), (3, "z")]
        right = [(1, 7), (1, 8), (2, 7)]
        h1 = Histogram.from_rows(("a", "b"), left)
        h2 = Histogram.from_rows(("a", "c"), right)
        out = join_histograms(h1, h2, ("a",), ("b", "c"))
        brute = {}
        for a1, b in left:
            for a2, c in right:
                if a1 == a2:
                    brute[(b, c)] = brute.get((b, c), 0) + 1
        assert dict(out.counts) == brute


class TestGroupDistinct:
    def test_counts_distinct_groups(self):
        h = Histogram(("a", "b"), {(1, 10): 99, (2, 10): 5, (3, 20): 1})
        out = group_distinct(h, ("b",))
        # two distinct (a,b) groups project to b=10, one to b=20
        assert out == H("b", {10: 2, 20: 1})


def _single_rule_catalog(rule, target, inputs, **ctx):
    catalog = CssCatalog()
    catalog.add(CSS(target, tuple(inputs), rule, tuple(sorted(ctx.items()))))
    return catalog


class TestRuleEvaluation:
    def test_j1(self):
        target = Statistic.card(SE("A", "B"))
        ha = Statistic.hist(SE("A"), "k")
        hb = Statistic.hist(SE("B"), "k")
        catalog = _single_rule_catalog("J1", target, [ha, hb], key=("k",))
        observed = StatisticsStore()
        observed.put(ha, H("k", {1: 2, 2: 1}))
        observed.put(hb, H("k", {1: 3}))
        values = compute_statistics(catalog, observed)
        assert values.get(target) == 6

    def test_j3(self):
        target = Statistic.hist(SE("A", "B"), "k")
        ha = Statistic.hist(SE("A"), "k")
        hb = Statistic.hist(SE("B"), "k")
        catalog = _single_rule_catalog("J3", target, [ha, hb], key=("k",))
        observed = StatisticsStore()
        observed.put(ha, H("k", {1: 2, 2: 4}))
        observed.put(hb, H("k", {1: 3, 3: 9}))
        values = compute_statistics(catalog, observed)
        assert values.get(target) == H("k", {1: 6})

    def test_j4_union_division(self):
        """|T12| = |H_h^kg / H_t3^kg| + |rej join T2| (Equation 3)."""
        e = SE("T1", "T2")
        h_se, t3 = SE("T1", "T2", "T3"), SE("T3")
        rej = RejectSE(SE("T1"), "kg", t3)
        rj = RejectJoinSE(rej, "ke", SE("T2"))
        target = Statistic.card(e)
        h_big = Statistic.hist(h_se, "kg")
        h_t3 = Statistic.hist(t3, "kg")
        c_rj = Statistic.card(rj)
        catalog = _single_rule_catalog(
            "J4", target, [h_big, h_t3, c_rj], kg=("kg",)
        )
        observed = StatisticsStore()
        # surviving T1' x T2 mass: (12/3) + (10/5) = 6; rejects add 4
        observed.put(h_big, H("kg", {1: 12, 2: 10}))
        observed.put(h_t3, H("kg", {1: 3, 2: 5}))
        observed.put(c_rj, 4)
        values = compute_statistics(catalog, observed)
        assert values.get(target) == 10

    def test_j5_union_division_histogram(self):
        e = SE("T1", "T2")
        h_se, t3 = SE("T1", "T2", "T3"), SE("T3")
        rej = RejectSE(SE("T1"), "kg", t3)
        rj = RejectJoinSE(rej, "ke", SE("T2"))
        target = Statistic.hist(e, "b")
        h_big = Statistic.hist(h_se, "b", "kg")
        h_t3 = Statistic.hist(t3, "kg")
        h_rj = Statistic.hist(rj, "b")
        catalog = _single_rule_catalog(
            "J5", target, [h_big, h_t3, h_rj], kg=("kg",), bs=("b",)
        )
        observed = StatisticsStore()
        observed.put(
            h_big, Histogram(("b", "kg"), {(10, 1): 6, (20, 1): 3, (10, 2): 10})
        )
        observed.put(h_t3, H("kg", {1: 3, 2: 5}))
        observed.put(h_rj, H("b", {10: 1}))
        values = compute_statistics(catalog, observed)
        # survived: b=10 -> 6/3 + 10/5 = 4; b=20 -> 1; rejects: b=10 -> +1
        assert values.get(target) == H("b", {10: 5, 20: 1})

    def test_i1_i2_d1(self):
        se = SE("T")
        joint = Statistic.hist(se, "a", "b")
        value = Histogram(("a", "b"), {(1, 10): 2, (1, 20): 3})
        catalog = CssCatalog()
        catalog.add(CSS(Statistic.card(se), (joint,), "I1"))
        catalog.add(CSS(Statistic.hist(se, "a"), (joint,), "I2"))
        catalog.add(
            CSS(Statistic.distinct(se, "a", "b"), (joint,), "D1")
        )
        observed = StatisticsStore()
        observed.put(joint, value)
        values = compute_statistics(catalog, observed)
        assert values.get(Statistic.card(se)) == 5
        assert values.get(Statistic.hist(se, "a")) == H("a", {1: 5})
        assert values.get(Statistic.distinct(se, "a", "b")) == 2

    def test_g2(self):
        up, down = SE("up"), SE("down")
        target = Statistic.hist(down, "b")
        h_up = Statistic.hist(up, "a", "b")
        catalog = _single_rule_catalog(
            "G2", target, [h_up], group=("a", "b"), bs=("b",)
        )
        observed = StatisticsStore()
        observed.put(
            h_up, Histogram(("a", "b"), {(1, 10): 9, (2, 10): 1, (3, 30): 2})
        )
        values = compute_statistics(catalog, observed)
        assert values.get(target) == H("b", {10: 2, 30: 1})

    def test_pass_through_rules(self):
        up, down = SE("up"), SE("down")
        catalog = CssCatalog()
        catalog.add(CSS(Statistic.card(down), (Statistic.card(up),), "B1"))
        catalog.add(
            CSS(Statistic.hist(down, "a"), (Statistic.hist(up, "a"),), "U2")
        )
        observed = StatisticsStore()
        observed.put(Statistic.card(up), 11)
        observed.put(Statistic.hist(up, "a"), H("a", {1: 11}))
        values = compute_statistics(catalog, observed)
        assert values.get(Statistic.card(down)) == 11
        assert values.get(Statistic.hist(down, "a")) == H("a", {1: 11})

    def test_chained_fixpoint(self):
        """A two-hop derivation: J1 needs a histogram produced by I2."""
        a, b = SE("A"), SE("B")
        target = Statistic.card(SE("A", "B"))
        ha = Statistic.hist(a, "k")
        ha_joint = Statistic.hist(a, "k", "x")
        hb = Statistic.hist(b, "k")
        catalog = CssCatalog()
        catalog.add(CSS(target, (ha, hb), "J1", (("key", ("k",)),)))
        catalog.add(CSS(ha, (ha_joint,), "I2"))
        observed = StatisticsStore()
        observed.put(ha_joint, Histogram(("k", "x"), {(1, 5): 2, (1, 6): 1}))
        observed.put(hb, H("k", {1: 10}))
        values = compute_statistics(catalog, observed)
        assert values.get(target) == 30

    def test_unknown_rule_raises(self):
        target = Statistic.card(SE("A"))
        inp = Statistic.hist(SE("A"), "k")
        catalog = _single_rule_catalog("NOPE", target, [inp])
        observed = StatisticsStore()
        observed.put(inp, H("k", {1: 1}))
        with pytest.raises(Exception):
            compute_statistics(catalog, observed)

    def test_uncomputable_stays_missing(self):
        target = Statistic.card(SE("A", "B"))
        inp = Statistic.hist(SE("A"), "k")
        catalog = _single_rule_catalog("I1", target, [inp])
        values = compute_statistics(catalog, StatisticsStore())
        assert target not in values
