"""Exact-vs-HLL differential over the 30-workflow TPC-DI suite.

Two guarantees make ``--distinct-sketch hll`` safe to turn on:

- **Identification is unchanged.**  The optimizer's chosen plans under
  sketched distinct tracking are identical to exact tracking for every
  suite workflow (the sketch only changes *how* distinct taps count, and
  the memory cost model's ``distinct_sketch_units`` cap never flips a
  plan choice here).
- **Estimates are accurate and backend-independent.**  Distinct taps
  forced onto every observable point stay within 5% relative error of
  the exact counts, and -- because the sketch hash is deterministic
  across processes -- every backend (columnar, streaming, vectorized,
  the compiled path and the multiprocess backend at 1/2/4 shards)
  produces the *same* estimate, not merely an equally-close one.

The dist-marker chaos case at the bottom pins the no-double-merge
property: a worker killed mid-shard is retried, and the retried shard's
sketch replaces (never re-merges into) the dead attempt's contribution.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.backend import BackendExecutor, get_backend
from repro.estimation.sketches import SketchSpec, sketch_scope
from repro.framework.pipeline import StatisticsPipeline
from repro.workloads import case, suite

pytestmark = pytest.mark.estimation

SCALE, SEED = 0.05, 11
HLL = SketchSpec(mode="hll")
#: forced-distinct accuracy bound from the acceptance criteria; the
#: default precision's typical error is ~0.8%, so 5% has ample headroom
MAX_REL_ERROR = 0.05

#: engine variants beyond the serial columnar reference: the second
#: element is the scheduler width, or the shard count for multiprocess
#: (``inline`` keeps this suite fork-free; the pool path is pinned by
#: the dist-marker chaos case below and tests/dist)
VARIANTS = [
    ("columnar", 1),
    ("streaming", 1),
    ("vectorized", 1),
    ("compiled", 1),
    ("multiprocess", 1),
    ("multiprocess", 2),
    ("multiprocess", 4),
]


def _variant_backend(backend_name: str, workers: int):
    """``(backend, scheduler width, compile_plans)`` for one variant."""
    if backend_name == "multiprocess":
        from repro.engine.dist import MultiprocessBackend

        backend = MultiprocessBackend(
            shards=workers,
            inline=True,
            factors={"min_shard_rows": 0},
        )
        return backend, 1, False
    if backend_name == "compiled":
        return get_backend("columnar"), 1, True
    return get_backend(backend_name), workers, False


def _forced_distincts(selection, sources) -> list[Statistic]:
    """Distinct statistics on points the run demonstrably materializes.

    The greedy selection rarely picks a DISTINCT statistic on these
    workflows (observing the aggregate output's cardinality is always
    cheaper than the upstream distinct), so the accuracy differential
    taps its own: one per observed histogram's (SE, attrs) pair plus the
    first two attributes of every base source.
    """
    stats: list[Statistic] = []
    seen = set()

    def want(stat: Statistic) -> None:
        if stat not in seen:
            seen.add(stat)
            stats.append(stat)

    for stat in selection.observed:
        if stat.is_histogram:
            want(Statistic.distinct(stat.se, *stat.attrs))
    for name, table in sorted(sources.items()):
        se = SubExpression.of(name)
        for attr in sorted(table.attrs)[:2]:
            want(Statistic.distinct(se, attr))
    return stats


@pytest.fixture(scope="module")
def prepared():
    """Per-workflow (analysis, taps list, sources, exact reference)."""
    cache = {}

    def get(wfcase):
        if wfcase.number not in cache:
            workflow = wfcase.build()
            analysis = analyze(workflow)
            selection = solve_greedy(
                build_problem(
                    generate_css(analysis), CostModel(workflow.catalog)
                )
            )
            sources = wfcase.tables(scale=SCALE, seed=SEED)
            forced = _forced_distincts(selection, sources)
            tapped = list(selection.observed) + forced
            backend = get_backend("columnar")
            ref = BackendExecutor(analysis, backend).run(
                sources, taps=backend.make_taps(tapped)
            )
            # keep only the forced taps the run actually observed
            observed = [
                stat
                for stat in forced
                if ref.observations.maybe(stat) is not None
            ]
            cache[wfcase.number] = (analysis, tapped, observed, sources, ref)
        return cache[wfcase.number]

    return get


@pytest.mark.parametrize("wfcase", suite(), ids=lambda c: f"wf{c.number:02d}")
def test_chosen_plans_identical_under_hll(wfcase):
    sources = wfcase.tables(scale=SCALE, seed=SEED)
    trees = {}
    for mode in ("exact", "hll"):
        report = StatisticsPipeline(
            wfcase.build(), solver="greedy", distinct_sketch=mode
        ).run_once(sources)
        trees[mode] = {
            name: repr(tree) for name, tree in report.chosen_trees.items()
        }
        assert report.sketch_mode == mode
    assert trees["hll"] == trees["exact"]


@pytest.mark.parametrize("backend_name,shards", [
    ("streaming", 1), ("vectorized", 1), ("multiprocess", 2),
])
@pytest.mark.parametrize("number", [7, 17, 21])
def test_chosen_plans_identical_across_backends(number, backend_name, shards):
    # plan choice is backend-independent, so a representative sample
    # suffices here; observation-level equivalence below covers all 30
    wfcase = case(number)
    sources = wfcase.tables(scale=SCALE, seed=SEED)
    trees = {}
    for mode in ("exact", "hll"):
        kwargs = {"shards": shards} if backend_name == "multiprocess" else {}
        pipeline = StatisticsPipeline(
            wfcase.build(),
            solver="greedy",
            backend=backend_name,
            distinct_sketch=mode,
            **kwargs,
        )
        try:
            report = pipeline.run_once(sources)
        finally:
            pipeline.close()
        trees[mode] = {
            name: repr(tree) for name, tree in report.chosen_trees.items()
        }
    assert trees["hll"] == trees["exact"]


@pytest.mark.parametrize(
    "backend_name,workers", VARIANTS, ids=lambda v: str(v)
)
@pytest.mark.parametrize("wfcase", suite(), ids=lambda c: f"wf{c.number:02d}")
def test_distinct_estimates_accurate_and_backend_identical(
    wfcase, backend_name, workers, prepared
):
    analysis, tapped, observed, sources, ref = prepared(wfcase)
    assert observed, "no distinct tap materialized -- the test is vacuous"

    backend, width, compile_plans = _variant_backend(backend_name, workers)
    with sketch_scope(HLL):
        run = BackendExecutor(
            analysis, backend, workers=width, compile_plans=compile_plans
        ).run(sources, taps=backend.make_taps(tapped))

    for stat in observed:
        exact = ref.observations.get(stat)
        estimate = run.observations.maybe(stat)
        assert estimate is not None, stat
        err = abs(estimate - exact) / max(exact, 1)
        assert err <= MAX_REL_ERROR, (stat, exact, estimate)

    if backend_name != "columnar":
        # deterministic hashing: every backend lands the same registers,
        # so estimates agree exactly -- not merely within the bound
        columnar = get_backend("columnar")
        with sketch_scope(HLL):
            hll_ref = BackendExecutor(analysis, columnar).run(
                sources, taps=columnar.make_taps(tapped)
            )
        for stat in observed:
            assert run.observations.maybe(stat) == hll_ref.observations.maybe(
                stat
            ), stat


@pytest.mark.dist
class TestShardRetryNeverDoubleMerges:
    """A worker-kill retry must not fold the same shard's sketch twice.

    The dispatcher keys shard results by shard index (a retry *replaces*
    the dead attempt's slot) and the merge folds each slot exactly once,
    so the estimate under a mid-run worker kill is identical to a clean
    pool run -- any double merge would inflate registers and show up as
    a differing estimate here.
    """

    def test_worker_kill_estimate_unchanged(self):
        from repro.engine.dist import MultiprocessBackend
        from repro.engine.faults import FaultPlan, FaultSpec

        wfcase = case(21)
        workflow = wfcase.build()
        analysis = analyze(workflow)
        selection = solve_greedy(
            build_problem(generate_css(analysis), CostModel(workflow.catalog))
        )
        sources = wfcase.tables(scale=SCALE, seed=SEED)
        forced = _forced_distincts(selection, sources)
        tapped = list(selection.observed) + forced

        def pool_run(faults=None):
            backend = MultiprocessBackend(
                shards=2, inline=False, factors={"min_shard_rows": 0}
            )
            try:
                with sketch_scope(HLL):
                    return BackendExecutor(analysis, backend).run(
                        sources,
                        taps=backend.make_taps(tapped),
                        faults=faults,
                    )
            finally:
                backend.close()

        clean = pool_run()
        killed = pool_run(
            FaultPlan(
                (FaultSpec(target="B1", kind="worker-kill"),), seed=5
            ).injector()
        )
        assert killed.shard_stats["retries"] >= 1

        compared = 0
        for stat in forced:
            estimate = clean.observations.maybe(stat)
            if estimate is None:
                continue
            compared += 1
            assert killed.observations.maybe(stat) == estimate, stat
        assert compared, "no distinct tap materialized under sharding"
