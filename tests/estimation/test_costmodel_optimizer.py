"""Unit tests for the plan cost model and the DP join-order optimizer."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.plans import JoinNode, Leaf, internal_ses
from repro.algebra.schema import Catalog
from repro.estimation.costmodel import CostModelError, PlanCostModel
from repro.estimation.optimizer import PlanOptimizer, optimize_workflow

SE = SubExpression.of


def chain_workflow():
    cat = Catalog()
    cat.add_relation("A", {"x": 10, "ka": 100})
    cat.add_relation("B", {"x": 10, "y": 10})
    cat.add_relation("C", {"y": 10, "kc": 100})
    a, b, c = Source(cat, "A"), Source(cat, "B"), Source(cat, "C")
    flow = Join(Join(a, b, "x"), c, "y")
    return Workflow("chain", cat, [Target(flow, "out")])


CARDS = {
    SE("A"): 100.0,
    SE("B"): 10.0,
    SE("C"): 1000.0,
    SE("A", "B"): 50.0,
    SE("B", "C"): 2000.0,
    SE("A", "B", "C"): 400.0,
}


class TestPlanCostModel:
    def test_cout_sums_intermediates(self):
        model = PlanCostModel(CARDS)
        tree = JoinNode(
            JoinNode(Leaf("A"), Leaf("B"), ("x",)), Leaf("C"), ("y",)
        )
        assert model.tree_cost(tree) == 50 + 400

    def test_other_order_costs_more(self):
        model = PlanCostModel(CARDS)
        bad = JoinNode(
            Leaf("A"), JoinNode(Leaf("B"), Leaf("C"), ("y",)), ("x",)
        )
        assert model.tree_cost(bad) == 2000 + 400

    def test_hash_metric_counts_build_and_probe(self):
        model = PlanCostModel(CARDS, metric="hash")
        tree = JoinNode(Leaf("A"), Leaf("B"), ("x",))
        # build the smaller (10), probe the bigger (100), emit 50
        assert model.tree_cost(tree) == 1.5 * 10 + 100 + 50

    def test_unknown_metric_rejected(self):
        model = PlanCostModel(CARDS, metric="nope")
        with pytest.raises(ValueError):
            model.join_cost(SE("A"), SE("B"))

    def test_missing_cardinality_raises(self):
        model = PlanCostModel({})
        with pytest.raises(CostModelError):
            model.size(SE("A"))

    def test_describe_reports_nodes(self):
        model = PlanCostModel(CARDS)
        tree = JoinNode(Leaf("A"), Leaf("B"), ("x",))
        assert "cost" in model.describe(tree)


class TestPlanOptimizer:
    def test_picks_cheapest_order(self):
        analysis = analyze(chain_workflow())
        optimizer = PlanOptimizer(analysis, CARDS)
        plan = optimizer.optimize()["B1"]
        # (A |x| B) first is far cheaper than (B |x| C) first
        assert SE("A", "B") in internal_ses(plan.tree)
        assert plan.cost == 50 + 400
        assert plan.improved or plan.cost == plan.initial_cost

    def test_optimize_workflow_wrapper(self):
        analysis = analyze(chain_workflow())
        plans = optimize_workflow(analysis, CARDS)
        assert set(plans) == {"B1"}

    def test_cost_never_above_initial(self):
        analysis = analyze(chain_workflow())
        plan = PlanOptimizer(analysis, CARDS).optimize()["B1"]
        assert plan.cost <= plan.initial_cost

    def test_pinned_blocks_keep_plan(self):
        cat = Catalog()
        cat.add_relation("A", {"k": 5})
        cat.add_relation("B", {"k": 5, "m": 5})
        cat.add_relation("C", {"m": 5})
        pinned = Join(Source(cat, "A"), Source(cat, "B"), "k", reject_left=True)
        flow = Join(pinned, Source(cat, "C"), "m")
        wf = Workflow("w", cat, [Target(flow, "out")])
        analysis = analyze(wf)
        cards = {}
        for block in analysis.blocks:
            for se in block.universe():
                cards[se] = float(10 + len(se.relations))
        plans = PlanOptimizer(analysis, cards).optimize()
        pinned_block = [b for b in analysis.blocks if b.pinned][0]
        assert plans[pinned_block.name].tree == pinned_block.initial_tree

    def test_missing_estimates_surface(self):
        analysis = analyze(chain_workflow())
        with pytest.raises((CostModelError, KeyError, ValueError)):
            PlanOptimizer(analysis, {SE("A"): 1.0}).optimize()
