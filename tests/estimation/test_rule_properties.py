"""Property-based tests: rule semantics vs brute-force relational algebra.

For random tables, each rule's computed statistic must equal the statistic
measured on the actual operator output — the exactness that makes the whole
framework work (Section 3.1).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.physical import hash_join
from repro.engine.table import Table
from repro.estimation.calculator import group_distinct, join_histograms

rows_ab = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 4)), min_size=1, max_size=30
)
rows_ac = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 3)), min_size=1, max_size=30
)


@given(rows_ab, rows_ac)
@settings(max_examples=60)
def test_j1_dot_equals_join_size(lrows, rrows):
    left = Table.from_rows(("a", "b"), lrows)
    right = Table.from_rows(("a", "c"), rrows)
    joined, _l, _r = hash_join(left, right, ("a",))
    assert left.histogram(("a",)).dot(right.histogram(("a",))) == joined.num_rows


@given(rows_ab, rows_ac)
@settings(max_examples=60)
def test_j2_join_histograms_equals_join_histogram(lrows, rrows):
    """H computed by the J2 rule == H measured on the actual join output."""
    left = Table.from_rows(("a", "b"), lrows)
    right = Table.from_rows(("a", "c"), rrows)
    joined, _l, _r = hash_join(left, right, ("a",))

    computed = join_histograms(
        left.histogram(("a", "b")), right.histogram(("a", "c")), ("a",), ("b", "c")
    )
    if joined.num_rows:
        measured = joined.histogram(("b", "c"))
        assert computed == measured
    else:
        assert computed.total() == 0


@given(rows_ab, rows_ac)
@settings(max_examples=60)
def test_j3_multiply_equals_join_key_histogram(lrows, rrows):
    left = Table.from_rows(("a", "b"), lrows)
    right = Table.from_rows(("a", "c"), rrows)
    joined, _l, _r = hash_join(left, right, ("a",))
    computed = left.histogram(("a",)).multiply(right.histogram(("a",)))
    if joined.num_rows:
        assert computed == joined.histogram(("a",))
    else:
        assert computed.total() == 0


@given(rows_ab, rows_ac, rows_ac)
@settings(max_examples=40)
def test_union_division_equation3(t1_rows, t3_rows, t2_rows):
    """|T1 join T2| = |H_{T123}^kg / H_{T3}^kg| + |rej(T1) join T2| on
    arbitrary data (the full Equation 1-3 derivation)."""
    t1 = Table.from_rows(("kg", "ke"), t1_rows)
    t3 = Table.from_rows(("kg", "x3"), t3_rows)
    t2 = Table.from_rows(("kg2", "ke"), [(99, r[1]) for r in t2_rows])
    t2 = t2.select_columns(("ke",))

    t13, rej1, _ = hash_join(t1, t3, ("kg",), want_reject_left=True)
    t123, _, _ = hash_join(t13, t2, ("ke",))
    t12, _, _ = hash_join(t1, t2, ("ke",))
    rej_join, _, _ = hash_join(rej1, t2, ("ke",))

    if t123.num_rows:
        survived = t123.histogram(("kg",)).divide(t3.histogram(("kg",))).total()
    else:
        survived = 0.0
    assert survived + rej_join.num_rows == pytest.approx(t12.num_rows)


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 3), st.integers(0, 9)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60)
def test_g1_g2_against_group_by(rows):
    """G1: |G(T, (g, h))| = distinct (g,h); G2: per-attribute histogram of
    the group-by output counts distinct groups."""
    from repro.engine.physical import group_by

    table = Table.from_rows(("g", "h", "v"), rows)
    grouped = group_by(table, ("g", "h"))
    assert grouped.num_rows == table.distinct_count(("g", "h"))

    joint = table.histogram(("g", "h"))
    computed = group_distinct(joint, ("g",))
    assert computed == grouped.histogram(("g",))


@given(rows_ab, st.integers(0, 5))
@settings(max_examples=60)
def test_s1_s2_against_filter(rows, threshold):
    from repro.engine.physical import apply_filter

    table = Table.from_rows(("a", "b"), rows)
    def predicate(v):
        return v <= threshold

    filtered = apply_filter(table, "a", predicate)

    # S1: cardinality from the raw histogram
    assert table.histogram(("a",)).select("a", predicate).total() == filtered.num_rows
    # S2: the filtered b-histogram from the raw joint
    computed = (
        table.histogram(("a", "b")).select("a", predicate).marginalize(("b",))
    )
    if filtered.num_rows:
        assert computed == filtered.histogram(("b",))
    else:
        assert computed.total() == 0
