"""Tests for physical join implementation selection (the [21] extension)."""

import pytest

from repro.algebra.expressions import SubExpression
from repro.algebra.plans import JoinNode, Leaf
from repro.estimation.physical import (
    JoinAlgorithm,
    PhysicalCostModel,
    PhysicalPlanner,
    physical_plans,
)

SE = SubExpression.of


def planner(cards, **kwargs):
    return PhysicalPlanner(PhysicalCostModel(cards, **kwargs))


class TestAlgorithmChoice:
    def test_tiny_inputs_use_nested_loop(self):
        cards = {SE("A"): 3, SE("B"): 3, SE("A", "B"): 4}
        plan = planner(cards).plan(JoinNode(Leaf("A"), Leaf("B"), ("k",)))
        assert plan.algorithm_for(SE("A", "B")) is JoinAlgorithm.NESTED_LOOP

    def test_large_unsorted_inputs_use_hash(self):
        cards = {SE("A"): 10_000, SE("B"): 8_000, SE("A", "B"): 9_000}
        plan = planner(cards).plan(JoinNode(Leaf("A"), Leaf("B"), ("k",)))
        assert plan.algorithm_for(SE("A", "B")) is JoinAlgorithm.HASH

    def test_presorted_chain_prefers_merge(self):
        """Once a sort-merge join has produced key-sorted output, a second
        join on the same key exploits the order (no re-sort of that side)."""
        cards = {
            SE("A"): 50_000,
            SE("B"): 50_000,
            SE("C"): 4_000,
            SE("A", "B"): 40_000,
            SE("A", "B", "C"): 1_000,
        }
        tree = JoinNode(
            JoinNode(Leaf("A"), Leaf("B"), ("k",)), Leaf("C"), ("k",)
        )
        # sorting cheap, hashing expensive -> merge everywhere
        plan = planner(
            cards, sort_factor=0.05, hash_build_factor=30.0
        ).plan(tree)
        assert plan.algorithm_for(SE("A", "B")) is JoinAlgorithm.SORT_MERGE
        upper = [j for j in plan.joins if j.se == SE("A", "B", "C")][0]
        assert upper.algorithm is JoinAlgorithm.SORT_MERGE
        # the propagated sort order saved re-sorting the 40k-row left side:
        # cost = merge(40k + 4k) + out + sort(C only)
        model = PhysicalCostModel(
            cards, sort_factor=0.05, hash_build_factor=30.0
        )
        expected = (
            model.merge_cost(40_000, 4_000, 1_000) + model.sort_cost(4_000)
        )
        assert upper.cost == pytest.approx(expected)

    def test_sortedness_resets_after_hash_join(self):
        cards = {
            SE("A"): 10_000,
            SE("B"): 8_000,
            SE("C"): 9_000,
            SE("A", "B"): 5_000,
            SE("A", "B", "C"): 100,
        }
        tree = JoinNode(
            JoinNode(Leaf("A"), Leaf("B"), ("k",)), Leaf("C"), ("k",)
        )
        plan = planner(cards).plan(tree)  # default factors: hash wins below
        base = [j for j in plan.joins if j.se == SE("A", "B")][0]
        assert base.algorithm is JoinAlgorithm.HASH
        assert base.output_sorted_on == ()

    def test_total_cost_sums_joins(self):
        cards = {SE("A"): 10, SE("B"): 10, SE("A", "B"): 10}
        plan = planner(cards).plan(JoinNode(Leaf("A"), Leaf("B"), ("k",)))
        assert plan.total_cost == plan.joins[0].cost

    def test_unknown_se_raises(self):
        cards = {SE("A"): 10, SE("B"): 10, SE("A", "B"): 10}
        plan = planner(cards).plan(JoinNode(Leaf("A"), Leaf("B"), ("k",)))
        with pytest.raises(KeyError):
            plan.algorithm_for(SE("A", "C"))

    def test_describe_renders(self):
        cards = {SE("A"): 10, SE("B"): 10, SE("A", "B"): 10}
        plan = planner(cards).plan(JoinNode(Leaf("A"), Leaf("B"), ("k",)))
        assert "physical plan cost" in plan.describe()


class TestWorkflowIntegration:
    def test_physical_plans_from_learned_statistics(self):
        """End to end: learned cardinalities feed physical selection."""
        from repro.framework.pipeline import StatisticsPipeline
        from repro.workloads import case

        wfcase = case(11)
        pipeline = StatisticsPipeline(wfcase.build())
        report = pipeline.run_once(wfcase.tables(scale=0.2, seed=3))
        plans = physical_plans(
            report.analysis,
            report.estimator.all_cardinalities(),
            trees=report.chosen_trees,
        )
        assert set(plans) == {b.name for b in report.analysis.blocks}
        for plan in plans.values():
            n_joins = sum(
                1 for j in plan.joins
            )
            assert plan.total_cost >= 0
            # every inner node got a decision
            from repro.algebra.plans import tree_joins

            assert n_joins == len(tree_joins(plan.tree))


class TestPhysicalExecution:
    def test_execute_physical_matches_hash_only(self):
        """Executing the chosen algorithms gives exactly the hash-join
        result, whatever mix the planner picked."""
        from repro.algebra.blocks import analyze
        from repro.engine.ground_truth import block_input_tables
        from repro.engine.executor import Executor
        from repro.estimation.physical import (
            PhysicalCostModel,
            PhysicalPlanner,
            execute_physical,
        )
        from repro.workloads import case

        wfcase = case(13)
        analysis = analyze(wfcase.build())
        block = analysis.blocks[0]
        sources = wfcase.tables(scale=0.15, seed=6)
        run = Executor(analysis).run(sources)
        inputs = block_input_tables(block, run.env)

        # force variety: cheap sorting pushes some joins to sort-merge
        cards = dict(run.se_sizes)
        for se in block.join_ses():
            cards.setdefault(se, 100.0)
        planner = PhysicalPlanner(
            PhysicalCostModel(cards, sort_factor=0.01)
        )
        plan = planner.plan(block.initial_tree)
        result = execute_physical(block.initial_tree, inputs, plan)

        reference = run.env[block.output_name]
        attrs = sorted(reference.attrs)
        assert sorted(result.rows(attrs)) == sorted(reference.rows(attrs))
        # the planner actually mixed algorithms (otherwise the test is vacuous)
        algorithms = {j.algorithm for j in plan.joins}
        assert len(algorithms) >= 1


class TestBackendCostFactors:
    CARDS = {SE("A"): 10_000, SE("B"): 8_000, SE("A", "B"): 9_000}

    def _plan_cost(self, backend):
        model = PhysicalCostModel.for_backend(backend, self.CARDS)
        tree = JoinNode(Leaf("A"), Leaf("B"), ("k",))
        return PhysicalPlanner(model).plan(tree).total_cost

    def test_vectorized_is_cheapest_streaming_dearest(self):
        costs = {
            b: self._plan_cost(b)
            for b in ("columnar", "streaming", "vectorized")
        }
        assert costs["vectorized"] < costs["columnar"] < costs["streaming"]

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(KeyError, match="columnar"):
            PhysicalCostModel.for_backend("bogus", {})

    def test_overrides_win_over_presets(self):
        model = PhysicalCostModel.for_backend("columnar", {}, sort_factor=9.0)
        assert model.sort_factor == 9.0
        assert model.hash_build_factor == 1.5
