"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def wf_json(tmp_path):
    from repro.algebra.serialize import workflow_to_json
    from repro.workloads import case

    path = tmp_path / "wf9.json"
    path.write_text(workflow_to_json(case(9).build()))
    return str(path)


@pytest.fixture
def wf_xml(tmp_path):
    from repro.algebra.serialize import workflow_to_xml
    from repro.workloads import case

    path = tmp_path / "wf9.xml"
    path.write_text(workflow_to_xml(case(9).build()))
    return str(path)


class TestAnalyze:
    def test_json_input(self, wf_json, capsys):
        assert main(["analyze", wf_json]) == 0
        out = capsys.readouterr().out
        assert "block(s)" in out
        assert "sub-expressions" in out

    def test_xml_input(self, wf_xml, capsys):
        assert main(["analyze", wf_xml]) == 0
        assert "B1" in capsys.readouterr().out


class TestIdentify:
    def test_default_ilp(self, wf_json, capsys):
        assert main(["identify", wf_json]) == 0
        out = capsys.readouterr().out
        assert "candidate statistics sets" in out
        assert "Selection [ilp]" in out

    def test_greedy_solver(self, wf_json, capsys):
        assert main(["identify", wf_json, "--solver", "greedy"]) == 0
        assert "Selection [greedy]" in capsys.readouterr().out

    def test_no_union_division(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-union-division", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "J4" not in out and "J5" not in out

    def test_no_fk(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-fk", "--verbose"]) == 0
        assert "CSS[FK]" not in capsys.readouterr().out


class TestSuite:
    def test_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert out.count("wf") >= 30
        assert "grand_trade_report" in out

    def test_single_workflow(self, capsys):
        assert main(["suite", "--number", "21"]) == 0
        out = capsys.readouterr().out
        assert "8-way" in out


class TestExperiments:
    def test_data_table(self, capsys):
        assert main(["experiments", "data"]) == 0
        out = capsys.readouterr().out
        assert "Median" in out

    def test_fig9_restricted(self, capsys):
        assert main(["experiments", "fig9", "--workflows", "2", "9"]) == 0
        out = capsys.readouterr().out
        assert "#CSS (UD)" in out
        assert len(out.strip().splitlines()) == 4  # header + rule + 2 rows

    def test_fig12_restricted(self, capsys):
        assert main(["experiments", "fig12", "--workflows", "1", "9", "13"]) == 0
        out = capsys.readouterr().out
        assert "min executions" in out


class TestExport:
    def test_json_round_trip(self, capsys):
        assert main(["export", "--number", "9", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"].startswith("wf09")

    def test_xml(self, capsys):
        assert main(["export", "--number", "9", "--format", "xml"]) == 0
        assert capsys.readouterr().out.startswith("<etl-workflow")


class TestExperimentsSlowFigures:
    def test_fig10_restricted(self, capsys):
        assert main(
            ["experiments", "fig10", "--workflows", "2", "9",
             "--time-limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "solver kind" in out

    def test_fig11_restricted(self, capsys):
        assert main(
            ["experiments", "fig11", "--workflows", "2", "9",
             "--time-limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "union-division" in out


class TestRun:
    @pytest.mark.parametrize("backend", ["columnar", "streaming", "vectorized"])
    def test_run_on_each_backend(self, backend, capsys):
        assert main(
            ["run", "--number", "9", "--backend", backend,
             "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert f"backend={backend}" in out
        assert "target" in out
        assert "timings:" in out

    def test_run_with_parallel_workers(self, capsys):
        assert main(
            ["run", "--number", "25", "--backend", "vectorized",
             "--workers", "4", "--scale", "0.05"]
        ) == 0
        assert "workers=4" in capsys.readouterr().out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--number", "9", "--backend", "bogus"])


class TestIdentifyBudget:
    def test_budget_schedules_executions(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-fk", "--budget", "8"]) == 0
        out = capsys.readouterr().out
        assert "memory budget" in out
        assert "run 1:" in out

    def test_large_budget_single_run(self, wf_json, capsys):
        assert main(["identify", wf_json, "--budget", "100000"]) == 0
        out = capsys.readouterr().out
        assert "1 execution(s)" in out
