"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def wf_json(tmp_path):
    from repro.algebra.serialize import workflow_to_json
    from repro.workloads import case

    path = tmp_path / "wf9.json"
    path.write_text(workflow_to_json(case(9).build()))
    return str(path)


@pytest.fixture
def wf_xml(tmp_path):
    from repro.algebra.serialize import workflow_to_xml
    from repro.workloads import case

    path = tmp_path / "wf9.xml"
    path.write_text(workflow_to_xml(case(9).build()))
    return str(path)


class TestAnalyze:
    def test_json_input(self, wf_json, capsys):
        assert main(["analyze", wf_json]) == 0
        out = capsys.readouterr().out
        assert "block(s)" in out
        assert "sub-expressions" in out

    def test_xml_input(self, wf_xml, capsys):
        assert main(["analyze", wf_xml]) == 0
        assert "B1" in capsys.readouterr().out


class TestIdentify:
    def test_default_ilp(self, wf_json, capsys):
        assert main(["identify", wf_json]) == 0
        out = capsys.readouterr().out
        assert "candidate statistics sets" in out
        assert "Selection [ilp]" in out

    def test_greedy_solver(self, wf_json, capsys):
        assert main(["identify", wf_json, "--solver", "greedy"]) == 0
        assert "Selection [greedy]" in capsys.readouterr().out

    def test_no_union_division(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-union-division", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "J4" not in out and "J5" not in out

    def test_no_fk(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-fk", "--verbose"]) == 0
        assert "CSS[FK]" not in capsys.readouterr().out


class TestSuite:
    def test_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert out.count("wf") >= 30
        assert "grand_trade_report" in out

    def test_single_workflow(self, capsys):
        assert main(["suite", "--number", "21"]) == 0
        out = capsys.readouterr().out
        assert "8-way" in out


class TestExperiments:
    def test_data_table(self, capsys):
        assert main(["experiments", "data"]) == 0
        out = capsys.readouterr().out
        assert "Median" in out

    def test_fig9_restricted(self, capsys):
        assert main(["experiments", "fig9", "--workflows", "2", "9"]) == 0
        out = capsys.readouterr().out
        assert "#CSS (UD)" in out
        assert len(out.strip().splitlines()) == 4  # header + rule + 2 rows

    def test_fig12_restricted(self, capsys):
        assert main(["experiments", "fig12", "--workflows", "1", "9", "13"]) == 0
        out = capsys.readouterr().out
        assert "min executions" in out


class TestExport:
    def test_json_round_trip(self, capsys):
        assert main(["export", "--number", "9", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"].startswith("wf09")

    def test_xml(self, capsys):
        assert main(["export", "--number", "9", "--format", "xml"]) == 0
        assert capsys.readouterr().out.startswith("<etl-workflow")


class TestExperimentsSlowFigures:
    def test_fig10_restricted(self, capsys):
        assert main(
            ["experiments", "fig10", "--workflows", "2", "9",
             "--time-limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "solver kind" in out

    def test_fig11_restricted(self, capsys):
        assert main(
            ["experiments", "fig11", "--workflows", "2", "9",
             "--time-limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "union-division" in out


class TestRun:
    @pytest.mark.parametrize("backend", ["columnar", "streaming", "vectorized"])
    def test_run_on_each_backend(self, backend, capsys):
        assert main(
            ["run", "--number", "9", "--backend", backend,
             "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert f"backend={backend}" in out
        assert "target" in out
        assert "timings:" in out

    def test_run_with_parallel_workers(self, capsys):
        assert main(
            ["run", "--number", "25", "--backend", "vectorized",
             "--workers", "4", "--scale", "0.05"]
        ) == 0
        assert "workers=4" in capsys.readouterr().out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--number", "9", "--backend", "bogus"])


class TestErrorPaths:
    """Operator mistakes get one line on stderr and a nonzero exit --
    never a traceback."""

    def _assert_one_line_error(self, capsys, *needles):
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        for needle in needles:
            assert needle in captured.err

    def test_unknown_workflow_number(self, capsys):
        assert main(["run", "--number", "99"]) == 1
        self._assert_one_line_error(capsys, "99", "wf01")

    def test_unknown_workflow_number_in_suite(self, capsys):
        assert main(["suite", "--number", "0"]) == 1
        self._assert_one_line_error(capsys)

    def test_missing_workflow_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "ghost.json")]) == 1
        self._assert_one_line_error(capsys, "cannot read")

    def test_corrupt_workflow_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{this is not json")
        assert main(["analyze", str(path)]) == 1
        self._assert_one_line_error(capsys, "corrupt")

    def test_corrupt_fault_plan(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"faults": [{"target": "B1",
                                                "kind": "explode"}]}))
        assert main(["run", "--number", "9", "--faults", str(path)]) == 1
        self._assert_one_line_error(capsys, "kind")

    def test_missing_fault_plan_file(self, tmp_path, capsys):
        assert main(["run", "--number", "9",
                     "--faults", str(tmp_path / "ghost.json")]) == 1
        self._assert_one_line_error(capsys, "cannot read")

    def test_corrupt_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ckpt.json"
        path.write_text("{nope")
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--resume", str(path)]) == 1
        self._assert_one_line_error(capsys, "checkpoint")


class TestRunResilience:
    def _fault_file(self, tmp_path, specs):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"seed": 1337, "faults": specs}))
        return str(path)

    def test_transient_fault_retried_to_clean_exit(self, tmp_path, capsys):
        faults = self._fault_file(
            tmp_path, [{"target": "B1", "kind": "transient"}]
        )
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--faults", faults, "--max-retries", "2"]) == 0
        out = capsys.readouterr().out
        assert "degraded" not in out

    def test_permanent_fault_reports_degraded_and_exits_1(self, tmp_path,
                                                          capsys):
        faults = self._fault_file(
            tmp_path, [{"target": "B2", "kind": "permanent"}]
        )
        assert main(["run", "--number", "25", "--scale", "0.05",
                     "--faults", faults]) == 1
        out = capsys.readouterr().out
        assert "degraded run" in out
        assert "plan confidence" in out
        assert "B2" in out

    def test_block_timeout_flag(self, tmp_path, capsys):
        faults = self._fault_file(
            tmp_path, [{"target": "B1", "kind": "delay", "delay": 30.0}]
        )
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--faults", faults, "--block-timeout", "0.1"]) == 1
        assert "timeout" in capsys.readouterr().out

    def test_resume_skips_finished_blocks(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt.json")
        faults = self._fault_file(
            tmp_path, [{"target": "B3", "kind": "permanent"}]
        )
        # night 1: B3 dies; the surviving blocks are journaled
        assert main(["run", "--number", "25", "--scale", "0.05",
                     "--faults", faults, "--resume", ckpt]) == 1
        capsys.readouterr()
        # night 2: clean re-run resumes instead of re-executing B1/B2
        assert main(["run", "--number", "25", "--scale", "0.05",
                     "--resume", ckpt]) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "B1" in out and "B2" in out
        assert "resumed from checkpoint" in out

    def test_prior_stats_backfill_failed_block(self, tmp_path, capsys):
        stats = str(tmp_path / "prior.json")
        # healthy night persists its statistics...
        assert main(["run", "--number", "25", "--scale", "0.05",
                     "--save-stats", stats]) == 0
        capsys.readouterr()
        # ...which backfill the failed block the next night
        faults = self._fault_file(
            tmp_path, [{"target": "B2", "kind": "permanent"}]
        )
        assert main(["run", "--number", "25", "--scale", "0.05",
                     "--faults", faults, "--prior-stats", stats]) == 1
        assert "B2=prior" in capsys.readouterr().out


class TestIdentifyBudget:
    def test_budget_schedules_executions(self, wf_json, capsys):
        assert main(["identify", wf_json, "--no-fk", "--budget", "8"]) == 0
        out = capsys.readouterr().out
        assert "memory budget" in out
        assert "run 1:" in out

    def test_large_budget_single_run(self, wf_json, capsys):
        assert main(["identify", wf_json, "--budget", "100000"]) == 0
        out = capsys.readouterr().out
        assert "1 execution(s)" in out


class TestCatalogCommands:
    def _run(self, tmp_path, extra=()):
        catalog = str(tmp_path / "catalog.json")
        code = main(["run", "--number", "11", "--solver", "greedy",
                     "--catalog", catalog, *extra])
        return code, catalog

    def test_run_populates_and_reuses_catalog(self, tmp_path, capsys):
        code, catalog = self._run(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "observed fresh" in out
        assert "reconcile" in out

        code, _ = self._run(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "reused at zero cost" in out
        assert "0 observed fresh" in out

    def test_identify_with_catalog_is_zero_cost(self, tmp_path, capsys):
        self._run(tmp_path)
        capsys.readouterr()
        assert main(["export", "--number", "11"]) == 0
        wf_path = tmp_path / "wf11.json"
        wf_path.write_text(capsys.readouterr().out)
        assert main(["identify", str(wf_path), "--catalog",
                     str(tmp_path / "catalog.json")]) == 0
        out = capsys.readouterr().out
        assert "already available at zero cost" in out
        assert "cost=0 (" in out

    def test_show_and_gc(self, tmp_path, capsys):
        _, catalog = self._run(tmp_path)
        capsys.readouterr()
        assert main(["catalog", "show", catalog]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "q=1.00" in out
        assert main(["catalog", "gc", catalog]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_export_import_round_trip(self, tmp_path, capsys):
        _, catalog = self._run(tmp_path)
        capsys.readouterr()
        assert main(["catalog", "export", catalog]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"]

        merged = str(tmp_path / "merged.json")
        assert main(["catalog", "import", merged, catalog]) == 0
        assert "imported" in capsys.readouterr().out
        assert main(["catalog", "show", merged]) == 0
        capsys.readouterr()

    def test_import_signs_a_stats_file(self, tmp_path, capsys):
        stats = str(tmp_path / "stats.json")
        assert main(["run", "--number", "11", "--save-stats", stats]) == 0
        capsys.readouterr()
        catalog = str(tmp_path / "signed.json")
        assert main(["catalog", "import", catalog,
                     "--stats", stats, "--number", "11"]) == 0
        assert "imported" in capsys.readouterr().out
        assert main(["catalog", "show", catalog]) == 0
        assert "import" in capsys.readouterr().out

    def test_plan_fleet(self, tmp_path, capsys):
        _, catalog = self._run(tmp_path)
        capsys.readouterr()
        assert main(["catalog", "plan-fleet", catalog,
                     "--numbers", "11", "12", "13"]) == 0
        out = capsys.readouterr().out
        assert "fleet plan" in out
        assert "standalone" in out
        assert "wf11" in out and "wf13" in out

    def test_plan_fleet_without_catalog(self, capsys):
        assert main(["catalog", "plan-fleet",
                     "--numbers", "11", "12"]) == 0
        assert "fleet plan" in capsys.readouterr().out
    def test_missing_catalog_file_is_an_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["catalog", "show", missing]) == 1
        assert "not found" in capsys.readouterr().err
        assert main(["catalog", "gc", missing]) == 1
        capsys.readouterr()
        assert main(["catalog", "export", missing]) == 1
        capsys.readouterr()
        assert main(["catalog", "import",
                     str(tmp_path / "dest.json"), missing]) == 1
        capsys.readouterr()

    def test_corrupt_catalog_is_one_line_error(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{ not json")
        assert main(["catalog", "export", str(corrupt)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1
        assert main(["catalog", "import",
                     str(tmp_path / "dest.json"), str(corrupt)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_unwritable_destination_is_one_line_error(self, tmp_path, capsys):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores directory write permission bits")
        _, catalog = self._run(tmp_path)
        capsys.readouterr()
        sealed = tmp_path / "sealed"
        sealed.mkdir()
        dest = str(sealed / "dest.json")
        sealed.chmod(0o500)
        try:
            assert main(["catalog", "import", dest, catalog]) == 1
            err = capsys.readouterr().err
            assert err.startswith("error:") and err.count("\n") == 1
        finally:
            sealed.chmod(0o700)

    def test_gc_unwritable_catalog_is_one_line_error(self, tmp_path, capsys):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores directory write permission bits")
        _, catalog = self._run(tmp_path)
        capsys.readouterr()
        tmp_path.chmod(0o500)  # the lock sidecar cannot be created
        try:
            assert main(["catalog", "gc", catalog]) == 1
            err = capsys.readouterr().err
            assert err.startswith("error:") and err.count("\n") == 1
        finally:
            tmp_path.chmod(0o700)


class TestDeterministicExport:
    def test_export_json_is_stable_and_sorted(self, capsys):
        assert main(["export", "--number", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["export", "--number", "9"]) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert first.strip() == json.dumps(doc, indent=2, sort_keys=True)

    def test_saved_stats_file_is_deterministic(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        for path in (a, b):
            assert main(["run", "--number", "9", "--solver", "greedy",
                         "--save-stats", path]) == 0
            capsys.readouterr()
        from pathlib import Path

        assert Path(a).read_text() == Path(b).read_text()
        doc = json.loads(Path(a).read_text())
        assert Path(a).read_text() == json.dumps(doc, indent=1, sort_keys=True)



class TestObservabilityCli:
    def _assert_one_line_error(self, capsys, *needles):
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        for needle in needles:
            assert needle in captured.err

    def test_run_with_bare_trace_flag_renders_tree(self, capsys):
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "run:run" in out
        assert "phase:execution" in out
        assert "block:B1" in out
        assert "slowest blocks" in out

    def test_run_persists_trace_for_trace_show(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--trace", trace]) == 0
        assert f"trace written to {trace}" in capsys.readouterr().out

        assert main(["trace", "show", trace]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace of wf09_broker_accounts run wf09-seed7")
        assert "phase:selection" in out
        assert "operator:" in out

    def test_trace_show_verbose_and_top(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace", "show", trace, "--verbose", "--top", "2"]) == 0
        assert "slowest blocks (top" in capsys.readouterr().out

    @pytest.mark.parametrize("name,fmt", [("m.json", "json"),
                                          ("m.prom", "prometheus")])
    def test_run_writes_metrics(self, tmp_path, capsys, name, fmt):
        path = tmp_path / name
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--metrics-out", str(path)]) == 0
        assert f"metrics ({fmt}) written to" in capsys.readouterr().out
        text = path.read_text()
        if fmt == "json":
            doc = json.loads(text)
            assert doc["kind"] == "metrics"
            assert "etl_runs_total" in doc["metrics"]
        else:
            assert "# TYPE etl_runs_total counter" in text
            assert "etl_phase_seconds_bucket" in text

    def test_trace_show_missing_file(self, tmp_path, capsys):
        assert main(["trace", "show", str(tmp_path / "ghost.json")]) == 1
        self._assert_one_line_error(capsys, "cannot read")

    def test_trace_show_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not a trace")
        assert main(["trace", "show", str(path)]) == 1
        self._assert_one_line_error(capsys, "invalid")

    def test_trace_show_future_format_version(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "trace",
                                    "root": {"name": "run"}}))
        assert main(["trace", "show", str(path)]) == 1
        self._assert_one_line_error(capsys, "format_version")

    def test_trace_show_rejects_other_document_kinds(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "show", str(path)]) == 1
        self._assert_one_line_error(capsys, "not a trace")


class TestCompileFlag:
    def test_trace_shows_compile_phase_with_cache_traffic(self, capsys):
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "phase:compile" in out
        assert "cache_misses=" in out and "cache_hits=" in out

    def test_no_compile_runs_the_interpreter(self, capsys):
        assert main(["run", "--number", "9", "--scale", "0.05",
                     "--no-compile", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "phase:compile" not in out
        assert "target" in out
