"""Golden snapshot: the identification outputs for all 30 workflows.

Pins (#SE, #CSS without UD, #CSS with UD, #observable) per workflow so any
change to block analysis, SE enumeration or the rule set shows up as an
explicit, reviewable diff.  If a deliberate change moves these numbers,
regenerate with::

    python -c "import tests.workloads.test_golden_counts as g; g.regenerate()"
"""

from repro.algebra.blocks import analyze
from repro.core.generator import GeneratorOptions, generate_css
from repro.workloads import suite

#: wf -> (#SE required, #CSS no-UD, #CSS UD, #observable statistics)
GOLDEN = {
    1: (3, 3, 3, 4),
    2: (2, 1, 1, 2),
    3: (3, 3, 3, 4),
    4: (3, 5, 5, 5),
    5: (3, 2, 2, 4),
    6: (4, 4, 4, 5),
    7: (4, 4, 4, 6),
    8: (4, 8, 8, 8),
    9: (6, 15, 27, 15),
    10: (7, 20, 32, 18),
    11: (12, 70, 141, 36),
    12: (6, 15, 27, 15),
    13: (18, 179, 331, 64),
    14: (17, 144, 295, 49),
    15: (11, 43, 80, 30),
    16: (11, 67, 138, 34),
    17: (13, 59, 106, 37),
    18: (6, 13, 13, 13),
    19: (21, 145, 325, 54),
    20: (14, 85, 137, 27),  # UD soundness: off-key t3<->other edges rejected
    21: (73, 3173, 4897, 176),
    22: (8, 11, 11, 13),
    23: (9, 38, 50, 26),
    24: (6, 6, 6, 10),
    25: (8, 20, 20, 18),
    26: (19, 135, 261, 43),
    27: (26, 285, 415, 41),  # UD soundness: off-key t3<->other edges rejected
    28: (27, 311, 569, 84),
    29: (44, 1089, 1742, 105),
    30: (26, 353, 534, 71),
}


def _counts(case):
    analysis = analyze(case.build())
    ud = generate_css(analysis, GeneratorOptions(fk_rules=False))
    noud = generate_css(
        analysis, GeneratorOptions(union_division=False, fk_rules=False)
    )
    cu = ud.counts()
    return (
        cu["required"],
        noud.counts()["css"],
        cu["css"],
        cu["observable"],
    )


def test_identification_counts_are_stable():
    mismatches = {}
    for case in suite():
        got = _counts(case)
        if got != GOLDEN[case.number]:
            mismatches[case.number] = (GOLDEN[case.number], got)
    assert not mismatches, f"golden counts moved: {mismatches}"


def regenerate():  # pragma: no cover - developer utility
    print("GOLDEN = {")
    for case in suite():
        print(f"    {case.number}: {_counts(case)},")
    print("}")
