"""Suite-wide streaming/columnar equivalence.

Every one of the 30 workflows executes identically under the per-tuple
streaming executor and the columnar one: same targets, same SE sizes, same
observed statistics for the greedy-selected set.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.instrumentation import TapSet
from repro.engine.streaming import StreamExecutor, StreamingTaps
from repro.workloads import suite


@pytest.mark.parametrize("case", suite(), ids=lambda c: f"wf{c.number:02d}")
def test_streaming_equals_columnar(case):
    workflow = case.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_greedy(build_problem(catalog, CostModel(workflow.catalog)))
    sources = case.tables(scale=0.06, seed=23)

    columnar = Executor(analysis).run(sources, taps=TapSet(selection.observed))
    streaming = StreamExecutor(analysis).run(
        sources, taps=StreamingTaps(selection.observed)
    )

    assert set(columnar.targets) == set(streaming.targets)
    for name, table in columnar.targets.items():
        attrs = sorted(table.attrs)
        assert sorted(table.rows(attrs)) == sorted(
            streaming.targets[name].rows(attrs)
        ), (case.number, name)
    for se, size in columnar.se_sizes.items():
        assert streaming.se_sizes.get(se) == size, (case.number, se)
    for stat in selection.observed:
        assert streaming.observations.maybe(stat) == columnar.observations.get(
            stat
        ), (case.number, stat)
