"""Suite-wide exactness: every one of the 30 workflows, end to end.

Uses the greedy selector (near-instant on every instance) and tiny data so
the whole sweep stays fast; the guarantee checked is the paper's central
one -- a single instrumented run of the initial plan yields the exact
cardinality of every SE.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.workloads import suite


@pytest.mark.parametrize("case", suite(), ids=lambda c: f"wf{c.number:02d}")
def test_exact_estimates_across_suite(case):
    workflow = case.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))
    selection = solve_greedy(problem)
    assert selection.is_valid

    sources = case.tables(scale=0.06, seed=17)
    taps = TapSet(selection.observed)
    run = Executor(analysis).run(sources, taps=taps)
    assert taps.missing() == []

    estimator = CardinalityEstimator(catalog, run.observations)
    have, total = estimator.coverage()
    assert have == total, estimator.missing()

    truth = ground_truth_cardinalities(analysis, sources)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual), (
            case.number,
            se,
        )
