"""Tests for data generation and the 30-workflow suite."""

import random

import pytest

from repro.algebra.blocks import analyze
from repro.workloads import case, suite
from repro.workloads.characteristics import (
    format_table,
    paper_reference,
    summarize,
    synthetic_population,
)
from repro.workloads.datagen import (
    TableSpec,
    ZipfSampler,
    generate_table,
    generate_tables,
    zipf_sizes,
)


class TestZipfSampler:
    def test_values_within_domain(self):
        rng = random.Random(1)
        sampler = ZipfSampler(50, 1.2, rng)
        values = sampler.sample_many(500)
        assert all(1 <= v <= 50 for v in values)

    def test_high_skew_concentrates_mass(self):
        rng = random.Random(2)
        sampler = ZipfSampler(100, 1.5, rng)
        values = sampler.sample_many(2000)
        from collections import Counter

        top = Counter(values).most_common(1)[0][1]
        assert top > 2000 / 100 * 5  # way above uniform expectation

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))


class TestGenerateTable:
    def test_deterministic_per_seed(self):
        spec = TableSpec("T", 100).column("a", 20).column("b", 10)
        t1 = generate_table(spec, seed=5)
        t2 = generate_table(spec, seed=5)
        assert t1.columns == t2.columns
        t3 = generate_table(spec, seed=6)
        assert t1.columns != t3.columns

    def test_serial_column_covers_domain(self):
        spec = TableSpec("T", 30).column("pk", 30, serial=True)
        t = generate_table(spec, seed=1)
        assert sorted(t.column("pk")) == list(range(1, 31))

    def test_serial_cycles_when_larger(self):
        spec = TableSpec("T", 10).column("pk", 4, serial=True)
        t = generate_table(spec, seed=1)
        assert set(t.column("pk")) == {1, 2, 3, 4}

    def test_generate_tables_accepts_dict_and_list(self):
        spec = TableSpec("T", 5).column("a", 3)
        by_dict = generate_tables({"T": spec}, seed=1)
        by_list = generate_tables([spec], seed=1)
        assert by_dict["T"].columns == by_list["T"].columns


class TestCharacteristics:
    def test_summarize_matches_hand_computation(self):
        rows = summarize([10, 20, 30], [1, 2, 9])
        by_stat = {r.stat: r for r in rows}
        assert by_stat["Max"].card == 30
        assert by_stat["Min"].uv == 1
        assert by_stat["Mean"].card == 20
        assert by_stat["Median"].uv == 2

    def test_synthetic_population_shape(self):
        """The qualitative shape of the paper's data table: strong right
        skew (mean >> median), UV <= Card, ranges within the paper's."""
        cards, uvs = synthetic_population()
        rows = {r.stat: r for r in summarize(cards, uvs)}
        assert rows["Mean"].card > rows["Median"].card
        assert rows["Mean"].uv > rows["Median"].uv
        assert rows["Min"].card >= 3342
        assert rows["Max"].card <= 417874
        assert all(uv <= card for card, uv in zip(cards, uvs))

    def test_paper_reference_is_stable(self):
        rows = {r.stat: r for r in paper_reference()}
        assert rows["Max"].card == 417874
        assert rows["Median"].uv == 6529

    def test_format_table_renders(self):
        text = format_table(paper_reference())
        assert "Median" in text and "417874" in text

    def test_zipf_sizes_bounds(self):
        sizes = zipf_sizes(30, 1000, 10, 1.0, random.Random(3))
        assert len(sizes) == 30
        assert all(10 <= s <= 1000 for s in sizes)
        assert zipf_sizes(0, 10, 1, 1.0, random.Random(1)) == []


class TestSuite:
    def test_thirty_workflows(self):
        cases = suite()
        assert len(cases) == 30
        assert [c.number for c in cases] == list(range(1, 31))

    def test_case_lookup(self):
        assert case(21).name == "grand_trade_report"
        with pytest.raises(KeyError):
            case(99)

    def test_every_workflow_builds_and_analyzes(self):
        for c in suite():
            analysis = analyze(c.build())
            assert analysis.blocks
            for block in analysis.blocks:
                assert block.universe()

    def test_complexity_spread(self):
        """The suite spans the paper's range: linear single-plan flows up
        to an 8-way join."""
        arities = {}
        for c in suite():
            analysis = analyze(c.build())
            arities[c.number] = max(b.n_way for b in analysis.blocks)
        assert arities[21] == 8  # the flagship
        assert max(b for b in arities.values()) == 8
        assert sum(1 for a in arities.values() if a == 1) >= 5  # linear flows

    def test_tables_match_specs(self):
        c = case(11)
        tables = c.tables(scale=0.1, seed=0)
        specs = c.table_specs(scale=0.1)
        for name, spec in specs.items():
            assert tables[name].num_rows == spec.cardinality
            assert set(tables[name].attrs) == set(spec.columns)

    def test_characteristics_scale_facts_only(self):
        c = case(11)
        cards1, _ = c.characteristics(scale=1.0)
        cards2, dv2 = c.characteristics(scale=2.0)
        assert cards2["Trade"] == 2 * cards1["Trade"]
        assert cards2["DimAccount"] == cards1["DimAccount"]
        assert all(
            dv <= cards2[rel] for rel, attrs in dv2.items() for dv in attrs.values()
        )

    def test_workflows_execute_on_generated_data(self):
        """Smoke: a spread of workflows runs end to end on its own data."""
        from repro.engine.executor import Executor

        for number in (2, 7, 16, 24, 30):
            c = case(number)
            analysis = analyze(c.build())
            run = Executor(analysis).run(c.tables(scale=0.1, seed=4))
            assert run.targets


class TestDataIntegrity:
    def test_serial_dimensions_guarantee_fk_coverage(self):
        """Serial key columns cover their domain, so FK joins really are
        lookups on generated data (every fact row matches exactly once)."""
        from repro.engine.physical import hash_join
        from repro.workloads.tpcdi import FOREIGN_KEYS, RELATIONS

        c = case(11)
        tables = c.tables(scale=0.2, seed=5)
        for child, parent, attr in FOREIGN_KEYS:
            if child not in tables or parent not in tables:
                continue
            parent_attrs, parent_card, serial = RELATIONS[parent]
            if attr not in serial:
                continue
            out, rej, _ = hash_join(
                tables[child], tables[parent], (attr,), want_reject_left=True
            )
            assert rej.num_rows == 0, (child, parent, attr)
            assert out.num_rows == tables[child].num_rows

    def test_string_and_mixed_histograms(self):
        """Histograms work over arbitrary hashable values, not just ints."""
        from repro.core.histogram import Histogram
        from repro.engine.table import Table

        t = Table({"s": ["a", "a", "b"], "n": [1, 2, 2]})
        h = t.histogram(("s",))
        assert h.frequency("a") == 2
        joint = t.histogram(("n", "s"))
        assert joint.frequency((2, "b")) == 1
        assert joint.marginalize(("s",)) == Histogram.single(
            "s", {"a": 2, "b": 1}
        )
        other = Table({"s": ["b", "c"]}).histogram(("s",))
        assert h.dot(other) == 1
