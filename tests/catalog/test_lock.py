"""Advisory catalog locking and merge-on-save (concurrent fleet runs)."""

import os
import time

import pytest

from repro.core.persistence import PersistenceError
from repro.core.statistics import Statistic
from repro.catalog.store import StatisticsCatalog, catalog_lock

pytestmark = pytest.mark.catalog


def _stat(name="R"):
    from repro.algebra.expressions import SubExpression

    return Statistic.card(SubExpression.of(name))


def _catalog(path, **entries):
    catalog = StatisticsCatalog.open(path)
    for key, (value, observed_at) in entries.items():
        catalog.record(
            key, f"se:{key}", _stat(), value,
            workflow="wf", run_id="r", observed_at=observed_at,
        )
    return catalog


class TestCatalogLock:
    def test_lock_file_created_and_removed(self, tmp_path):
        target = tmp_path / "catalog.json"
        lock = tmp_path / "catalog.json.lock"
        with catalog_lock(target):
            assert lock.exists()
        assert not lock.exists()

    def test_live_contender_times_out(self, tmp_path):
        target = tmp_path / "catalog.json"
        with catalog_lock(target):
            with pytest.raises(PersistenceError, match="locked by another run"):
                with catalog_lock(target, timeout=0.15, poll=0.01):
                    pass  # pragma: no cover - acquisition must fail

    def test_stale_lock_is_taken_over(self, tmp_path):
        target = tmp_path / "catalog.json"
        lock = tmp_path / "catalog.json.lock"
        # a dead run's leftover: present, flocked by nobody, old mtime
        lock.write_text("pid=0\n")
        old = time.time() - 3600
        os.utime(lock, (old, old))
        acquired = False
        with catalog_lock(target, timeout=1.0, stale_after=60.0, poll=0.01):
            acquired = True
        assert acquired

    def test_reentrant_after_release(self, tmp_path):
        target = tmp_path / "catalog.json"
        for _ in range(3):
            with catalog_lock(target):
                pass


class TestMergeOnSave:
    def test_concurrent_saves_converge_to_the_union(self, tmp_path):
        path = tmp_path / "catalog.json"
        a = _catalog(path, ka=(10, 100.0))
        b = _catalog(path, kb=(20, 100.0))
        a.save()
        b.save()  # must fold a's entry in, not clobber it
        merged = StatisticsCatalog.open(path)
        assert set(merged.entries) == {"ka", "kb"}

    def test_newer_observation_wins_on_both_sides(self, tmp_path):
        path = tmp_path / "catalog.json"
        older = _catalog(path, k=(1, 100.0))
        newer = _catalog(path, k=(2, 200.0))
        newer.save()
        older.save()  # disk entry is newer: keep it
        assert StatisticsCatalog.open(path).entries["k"].value() == 2
        newest = _catalog(path, k=(3, 300.0))
        newest.save()  # in-memory entry is newer: overwrite
        assert StatisticsCatalog.open(path).entries["k"].value() == 3

    def test_same_timestamp_keeps_local_stale_mark(self, tmp_path):
        # tonight's drift scan marks an entry stale; a merge against the
        # identically-timestamped on-disk copy must not resurrect it
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, k=(1, 100.0))
        catalog.save()
        catalog.mark_stale(["k"])
        catalog.save()
        assert StatisticsCatalog.open(path).entries["k"].stale

    def test_gc_save_does_not_resurrect_dropped_entries(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, keep=(1, time.time()), drop=(2, 1.0))
        catalog.save()
        removed = catalog.gc(ttl=3600.0)
        assert removed == 1
        catalog.save(merge=False)  # the gc contract: no merge
        assert set(StatisticsCatalog.open(path).entries) == {"keep"}

    def test_save_without_merge_clobbers(self, tmp_path):
        path = tmp_path / "catalog.json"
        _catalog(path, ka=(10, 100.0)).save()
        other = _catalog(tmp_path / "other.json", kb=(20, 100.0))
        other.save(path, merge=False)
        assert set(StatisticsCatalog.open(path).entries) == {"kb"}

    def test_corrupt_disk_catalog_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, k=(1, 100.0))
        path.write_text("{ truncated")  # corrupted between open and save
        catalog.save()
        assert set(StatisticsCatalog.open(path).entries) == {"k"}
