"""Advisory catalog locking and merge-on-save (concurrent fleet runs)."""

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.core.persistence import PersistenceError
from repro.core.statistics import Statistic
from repro.catalog.store import (
    CatalogLockHandle,
    StatisticsCatalog,
    catalog_lock,
)

pytestmark = pytest.mark.catalog


def _stat(name="R"):
    from repro.algebra.expressions import SubExpression

    return Statistic.card(SubExpression.of(name))


def _catalog(path, **entries):
    catalog = StatisticsCatalog.open(path)
    for key, (value, observed_at) in entries.items():
        catalog.record(
            key, f"se:{key}", _stat(), value,
            workflow="wf", run_id="r", observed_at=observed_at,
        )
    return catalog


class TestCatalogLock:
    def test_lock_file_created_and_removed(self, tmp_path):
        target = tmp_path / "catalog.json"
        lock = tmp_path / "catalog.json.lock"
        with catalog_lock(target):
            assert lock.exists()
        assert not lock.exists()

    def test_live_contender_times_out(self, tmp_path):
        target = tmp_path / "catalog.json"
        with catalog_lock(target):
            with pytest.raises(PersistenceError, match="locked by another run"):
                with catalog_lock(target, timeout=0.15, poll=0.01):
                    pass  # pragma: no cover - acquisition must fail

    def test_stale_lock_is_taken_over(self, tmp_path):
        target = tmp_path / "catalog.json"
        lock = tmp_path / "catalog.json.lock"
        # a dead run's leftover: present, flocked by nobody, old mtime
        lock.write_text("pid=0\n")
        old = time.time() - 3600
        os.utime(lock, (old, old))
        acquired = False
        with catalog_lock(target, timeout=1.0, stale_after=60.0, poll=0.01):
            acquired = True
        assert acquired

    def test_reentrant_after_release(self, tmp_path):
        target = tmp_path / "catalog.json"
        for _ in range(3):
            with catalog_lock(target):
                pass


class TestLockFence:
    """The stale-takeover race: a paused holder must not clobber its
    successor.  The fence token in the lock file is what detects it."""

    def test_handle_carries_a_validating_token(self, tmp_path):
        target = tmp_path / "catalog.json"
        with catalog_lock(target) as lock:
            assert isinstance(lock, CatalogLockHandle)
            assert lock.held()
            lock.validate()  # must not raise while we own the file

    def test_validate_fails_after_takeover(self, tmp_path):
        target = tmp_path / "catalog.json"
        lock_path = tmp_path / "catalog.json.lock"
        with catalog_lock(target) as lock:
            # simulate a takeover: the successor unlinked our stale file
            # and wrote its own (our flock is on the orphaned inode)
            lock_path.unlink()
            lock_path.write_text("pid=0\ntoken=somebody-else\n")
            assert not lock.held()
            with pytest.raises(PersistenceError, match="taken over"):
                lock.validate()
        # release must NOT delete the new holder's lock file
        assert lock_path.exists()
        assert "somebody-else" in lock_path.read_text()

    def test_validate_fails_when_lock_file_vanished(self, tmp_path):
        target = tmp_path / "catalog.json"
        with catalog_lock(target) as lock:
            (tmp_path / "catalog.json.lock").unlink()
            with pytest.raises(PersistenceError, match="taken over"):
                lock.validate()

    def test_two_process_stale_takeover_is_fenced(self, tmp_path):
        """Process A stalls holding the lock; we take it over; A's late
        save must abort with the fence error, not overwrite our file."""
        path = tmp_path / "catalog.json"
        flag = tmp_path / "takeover.done"
        script = textwrap.dedent(
            f"""
            import sys, time
            from repro.catalog.store import StatisticsCatalog, catalog_lock

            catalog = StatisticsCatalog.open({str(path)!r})
            try:
                catalog.save()          # lock -> merge -> validate -> write
            except Exception as exc:
                print("SAVE-FAILED", type(exc).__name__, flush=True)

            # now model the pause *inside* the critical section
            from repro.core.persistence import PersistenceError
            with catalog_lock({str(path)!r}) as lock:
                print("HELD", flush=True)
                deadline = time.time() + 20
                while time.time() < deadline:   # "GC pause" until takeover
                    if {str(flag)!r} and __import__("pathlib").Path({str(flag)!r}).exists():
                        break
                    time.sleep(0.02)
                try:
                    lock.validate()
                except PersistenceError:
                    print("FENCED", flush=True)
                    sys.exit(0)
                print("CLOBBERED", flush=True)
                sys.exit(1)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            while line and line != "HELD":
                line = proc.stdout.readline().strip()
            assert line == "HELD"
            # age A's lock past the stale deadline and take it over
            lock_path = Path(str(path) + ".lock")
            old = time.time() - 3600
            os.utime(lock_path, (old, old))
            with catalog_lock(
                path, timeout=5.0, stale_after=60.0, poll=0.01
            ) as mine:
                flag.write_text("go")
                out, _ = proc.communicate(timeout=30)
                assert "FENCED" in out
                assert proc.returncode == 0
                mine.validate()  # the takeover still holds its own fence
        finally:
            if proc.poll() is None:  # pragma: no cover - only on failure
                proc.kill()


class TestMergeOnSave:
    def test_concurrent_saves_converge_to_the_union(self, tmp_path):
        path = tmp_path / "catalog.json"
        a = _catalog(path, ka=(10, 100.0))
        b = _catalog(path, kb=(20, 100.0))
        a.save()
        b.save()  # must fold a's entry in, not clobber it
        merged = StatisticsCatalog.open(path)
        assert set(merged.entries) == {"ka", "kb"}

    def test_newer_observation_wins_on_both_sides(self, tmp_path):
        path = tmp_path / "catalog.json"
        older = _catalog(path, k=(1, 100.0))
        newer = _catalog(path, k=(2, 200.0))
        newer.save()
        older.save()  # disk entry is newer: keep it
        assert StatisticsCatalog.open(path).entries["k"].value() == 2
        newest = _catalog(path, k=(3, 300.0))
        newest.save()  # in-memory entry is newer: overwrite
        assert StatisticsCatalog.open(path).entries["k"].value() == 3

    def test_same_timestamp_keeps_local_stale_mark(self, tmp_path):
        # tonight's drift scan marks an entry stale; a merge against the
        # identically-timestamped on-disk copy must not resurrect it
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, k=(1, 100.0))
        catalog.save()
        catalog.mark_stale(["k"])
        catalog.save()
        assert StatisticsCatalog.open(path).entries["k"].stale

    def test_gc_save_does_not_resurrect_dropped_entries(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, keep=(1, time.time()), drop=(2, 1.0))
        catalog.save()
        removed = catalog.gc(ttl=3600.0)
        assert removed == 1
        catalog.save(merge=False)  # the gc contract: no merge
        assert set(StatisticsCatalog.open(path).entries) == {"keep"}

    def test_save_without_merge_clobbers(self, tmp_path):
        path = tmp_path / "catalog.json"
        _catalog(path, ka=(10, 100.0)).save()
        other = _catalog(tmp_path / "other.json", kb=(20, 100.0))
        other.save(path, merge=False)
        assert set(StatisticsCatalog.open(path).entries) == {"kb"}

    def test_corrupt_disk_catalog_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = _catalog(path, k=(1, 100.0))
        path.write_text("{ truncated")  # corrupted between open and save
        catalog.save()
        assert set(StatisticsCatalog.open(path).entries) == {"k"}
