"""Fleet observation planning: each shared statistic observed once."""

import pytest

from repro.algebra.blocks import analyze
from repro.catalog import StatisticsCatalog, WorkflowSigner, plan_fleet
from repro.core.generator import generate_css
from repro.workloads import case

NOW = 3_000_000.0


def builds(numbers):
    return [case(n).build() for n in numbers]


@pytest.mark.parametrize("solver", ["greedy", "ilp"])
def test_no_statistic_observed_twice(solver):
    fleet = plan_fleet(builds([11, 12, 13]), solver=solver)
    seen = {}
    for plan in fleet.workflows:
        analysis = analyze(case(int(plan.name[2:4])).build())
        signer = WorkflowSigner(analysis)
        for stat in plan.observe:
            key = signer.statistic_key(stat)
            assert key not in seen, (
                f"{stat!r} observed by both {seen[key]} and {plan.name}"
            )
            seen[key] = plan.name


def test_later_workflows_reuse_earlier_observations():
    fleet = plan_fleet(builds([11, 12, 13]))
    first, *rest = fleet.workflows
    assert first.shared == {} or all(
        provider == "catalog" for provider in first.shared.values()
    )
    providers = {
        provider
        for plan in rest
        for provider in plan.shared.values()
    }
    assert providers, "overlapping workflows must share observations"
    assert all(p != "catalog" for p in providers)
    assert fleet.total_planned_cost < fleet.total_standalone_cost


def test_catalog_entries_cover_every_workflow():
    # a catalog populated by a real run of wf11 removes wf11's whole share
    # of the fleet plan and shrinks the others'
    from repro.framework.pipeline import StatisticsPipeline

    wfcase = case(11)
    catalog = StatisticsCatalog()
    StatisticsPipeline(wfcase.build(), solver="greedy").run_once(
        wfcase.tables(scale=0.2, seed=7), stats_catalog=catalog
    )
    cold = plan_fleet(builds([11, 12]))
    warm = plan_fleet(builds([11, 12]), catalog=catalog, now=NOW)
    warm_wf11 = warm.workflows[0]
    assert warm_wf11.observe == []
    assert {p for p in warm_wf11.shared.values()} == {"catalog"}
    assert warm.unique_observations < cold.unique_observations


def test_order_matters_but_coverage_is_total():
    forward = plan_fleet(builds([11, 12, 13]))
    backward = plan_fleet(builds([13, 12, 11]))
    # whoever goes first pays; totals stay below standalone either way
    for fleet in (forward, backward):
        assert fleet.total_planned_cost <= fleet.total_standalone_cost
        for plan in fleet.workflows:
            assert plan.selection.is_valid
            assert plan.planned_cost <= plan.standalone_cost


def test_disjoint_workflows_share_nothing():
    # wf1 (linear, its own source) against itself shares everything; a
    # sanity check that sharing is symmetric and complete
    fleet = plan_fleet(builds([11, 11]))
    a, b = fleet.workflows
    assert b.observe == []
    assert set(b.shared.values()) == {a.name}
    assert b.planned_cost == 0.0


def test_fleet_describe_is_informative():
    fleet = plan_fleet(builds([11, 12]))
    text = fleet.describe()
    assert "fleet plan" in text
    assert "standalone" in text
    for plan in fleet.workflows:
        assert plan.name in text
