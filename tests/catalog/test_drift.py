"""Drift detection: reconcile_run keeps the catalog honest.

The acceptance scenario from the issue: inject a 10x shift into one
source's cardinality and verify the drift detector catches it, refreshes
the affected cardinality entries in place, marks only the sibling
histogram/distinct entries stale, and leaves every unrelated entry
untouched -- so the next run re-observes exactly the invalidated
statistics and nothing else.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.catalog import (
    StatisticsCatalog,
    WorkflowSigner,
    reconcile_run,
)
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.core.costs import CostModel
from repro.engine.backend import BackendExecutor, get_backend
from repro.framework.pipeline import StatisticsPipeline
from repro.workloads import case

NOW = 2_000_000.0


def grow_table(table, factor):
    """Repeat a table's rows ``factor`` times (the injected data shift)."""
    rows = list(table.rows())
    repeated = [rows[i % len(rows)] for i in range(len(rows) * factor)]
    return type(table).from_rows(table.attrs, repeated)


def observe(number, scale=0.2, seed=7, grow=None):
    """Run one instrumented execution; returns what reconcile_run needs."""
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    css = generate_css(analysis)
    selection = solve_greedy(build_problem(css, CostModel(workflow.catalog)))
    sources = wfcase.tables(scale=scale, seed=seed)
    if grow:
        name, factor = grow
        sources[name] = grow_table(sources[name], factor)
    backend = get_backend("columnar")
    run = BackendExecutor(analysis, backend).run(
        sources, taps=backend.make_taps(selection.observed)
    )
    signer = WorkflowSigner(analysis)
    return signer, selection, run


def test_first_run_admits_everything():
    signer, selection, run = observe(11)
    catalog = StatisticsCatalog()
    report = reconcile_run(
        catalog,
        signer,
        run.observations,
        run.se_sizes,
        selection.observed,
        workflow="wf11",
        run_id="r0",
        backend="columnar",
        now=NOW,
    )
    assert len(report.added) == len(selection.observed)
    assert report.refreshed == [] and report.drifted == []
    assert len(catalog) == len(selection.observed)
    entry = next(iter(catalog.entries.values()))
    assert entry.workflow == "wf11" and entry.run_id == "r0"


def test_steady_state_refreshes_without_drift():
    signer, selection, run = observe(11)
    catalog = StatisticsCatalog()
    reconcile_run(
        catalog, signer, run.observations, run.se_sizes,
        selection.observed, now=NOW,
    )
    report = reconcile_run(
        catalog, signer, run.observations, run.se_sizes,
        selection.observed, now=NOW + 10,
    )
    assert report.added == []
    assert len(report.refreshed) == len(selection.observed)
    assert report.drifted == [] and report.stale_marked == 0
    assert report.max_rel_error == 0.0
    assert all(e.quality == 1.0 for e in catalog.entries.values())


def test_untapped_run_drift_scan_validates_entries():
    # second run taps nothing (catalog-covered); identical data means the
    # drift scan confirms every prediction and touches nothing
    signer, selection, run = observe(11)
    catalog = StatisticsCatalog()
    reconcile_run(
        catalog, signer, run.observations, run.se_sizes,
        selection.observed, now=NOW,
    )
    before = dict(catalog.entries)
    report = reconcile_run(
        catalog, signer, run.observations, run.se_sizes, [], now=NOW + 10,
    )
    assert report.touched == 0 and report.drifted == []
    assert catalog.entries == before


def test_tenfold_shift_caught_and_isolated():
    signer, selection, run = observe(11)
    catalog = StatisticsCatalog()
    reconcile_run(
        catalog, signer, run.observations, run.se_sizes,
        selection.observed, now=NOW, workflow="wf11", run_id="r0",
    )
    untouched = {
        key: entry
        for key, entry in catalog.entries.items()
        if "Trade" not in entry.repr
    }

    # night 2: Trade grows 10x; the catalog covers everything, so nothing
    # is tapped and only the drift scan sees the change
    signer2, _, run2 = observe(11, grow=("Trade", 10))
    report = reconcile_run(
        catalog, signer2, run2.observations, run2.se_sizes, [],
        now=NOW + 10, workflow="wf11", run_id="r1",
    )

    assert report.drifted, "a 10x shift must register as drift"
    assert report.max_rel_error >= 5.0
    # every drifted SE involves the shifted source
    assert all("Trade" in se_repr for se_repr in report.drifted)
    # cardinalities refreshed in place carry the true size and a
    # penalized quality score
    for se_repr in report.drifted:
        matches = [
            e
            for e in catalog.entries.values()
            if e.repr == f"|{se_repr}|"
        ]
        assert matches and matches[0].run_id == "r1"
        assert matches[0].quality < 1.0
    # sibling histogram/distinct entries forced out for re-observation
    assert report.stale_marked >= 1
    stale = [e for e in catalog.entries.values() if e.stale]
    assert stale
    assert all("Trade" in e.repr for e in stale)
    # unrelated entries are byte-identical
    for key, entry in untouched.items():
        assert catalog.entries[key] == entry


def test_next_run_reobserves_only_the_drifted():
    # end-to-end through the pipeline: after the shift, run 3 taps exactly
    # the entries the drift detector invalidated
    wfcase = case(11)
    catalog = StatisticsCatalog()
    pipeline = StatisticsPipeline(wfcase.build(), solver="greedy")
    pipeline.run_once(wfcase.tables(scale=0.2, seed=7), stats_catalog=catalog)

    grown = wfcase.tables(scale=0.2, seed=7)
    grown["Trade"] = grow_table(grown["Trade"], 10)
    report2 = pipeline.run_once(grown, stats_catalog=catalog)
    assert report2.tapped == []  # everything was covered...
    assert report2.drift is not None and report2.drift.drifted

    report3 = pipeline.run_once(grown, stats_catalog=catalog)
    assert report3.tapped, "stale entries must be re-observed"
    assert all("Trade" in repr(stat) for stat in report3.tapped)
    # and once re-observed the catalog is whole again
    report4 = pipeline.run_once(grown, stats_catalog=catalog)
    assert report4.tapped == []


def test_threshold_is_respected():
    signer, selection, run = observe(11)
    catalog = StatisticsCatalog()
    reconcile_run(
        catalog, signer, run.observations, run.se_sizes,
        selection.observed, now=NOW,
    )
    _, _, run2 = observe(11, grow=("Trade", 2))
    lax = reconcile_run(
        catalog, signer, run2.observations, run2.se_sizes, [],
        now=NOW + 10, threshold=100.0,
    )
    assert lax.drifted == [] and lax.stale_marked == 0
