"""StatisticsCatalog: persistence, lookup semantics, TTL/quality/GC."""

import json

import pytest

from repro.algebra.blocks import analyze
from repro.catalog.signatures import WorkflowSigner
from repro.catalog.store import (
    DEFAULT_MIN_QUALITY,
    StatisticsCatalog,
)
from repro.core.generator import generate_css
from repro.core.persistence import PersistenceError
from repro.core.statistics import Statistic
from repro.workloads import case

NOW = 1_000_000.0


@pytest.fixture
def wf11():
    wfcase = case(11)
    analysis = analyze(wfcase.build())
    css = generate_css(analysis)
    return analysis, css, WorkflowSigner(analysis)


def populate(catalog, signer, stats, values=None, observed_at=NOW):
    for i, stat in enumerate(sorted(stats, key=lambda s: s.sort_key())):
        value = 100 + i if values is None else values[stat]
        if stat.is_histogram:
            continue
        catalog.record(
            signer.statistic_key(stat),
            signer.se_key(stat.se),
            stat,
            value,
            workflow="wf11",
            run_id="r0",
            backend="columnar",
            observed_at=observed_at,
        )


class TestLookup:
    def test_lookup_returns_values_and_keys(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        hits = catalog.lookup(signer, css.all_statistics, now=NOW)
        assert len(hits) == len(catalog)
        for stat in hits.free:
            assert stat in hits.values
            assert hits.keys[stat] in catalog
        assert hits.newest_observed_at == NOW

    def test_stale_entries_never_match(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        victim = sorted(catalog.entries)[0]
        assert catalog.mark_stale([victim]) == 1
        hits = catalog.lookup(signer, css.all_statistics, now=NOW)
        assert victim not in {hits.keys[s] for s in hits.free}

    def test_expired_entries_never_match(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog(ttl=100.0)
        populate(catalog, signer, css.all_statistics, observed_at=NOW - 101)
        assert len(catalog.lookup(signer, css.all_statistics, now=NOW)) == 0

    def test_low_quality_entries_never_match(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        for key in list(catalog.entries):
            catalog.adjust_quality(key, rel_error=1.0)  # quality -> 0.5
            catalog.adjust_quality(key, rel_error=1.0)  # quality -> 0.25
        assert all(
            e.quality < DEFAULT_MIN_QUALITY for e in catalog.entries.values()
        )
        assert len(catalog.lookup(signer, css.all_statistics, now=NOW)) == 0

    def test_lookup_counts_hits(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        catalog.lookup(signer, css.all_statistics, now=NOW)
        catalog.lookup(signer, css.all_statistics, now=NOW, count_hits=False)
        assert {e.hits for e in catalog.entries.values()} == {1}


class TestPersistence:
    def test_round_trip(self, tmp_path, wf11):
        _, css, signer = wf11
        path = tmp_path / "catalog.json"
        catalog = StatisticsCatalog(path)
        populate(catalog, signer, css.all_statistics)
        catalog.save()
        reloaded = StatisticsCatalog.open(path)
        assert len(reloaded) == len(catalog)
        for key, entry in catalog.entries.items():
            other = reloaded.get(key)
            assert other is not None
            assert other.value() == entry.value()
            assert other.workflow == "wf11"
            assert other.backend == "columnar"
            assert other.observed_at == NOW

    def test_file_is_deterministic(self, tmp_path, wf11):
        _, css, signer = wf11
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            catalog = StatisticsCatalog(path)
            populate(catalog, signer, css.all_statistics)
            catalog.save()
        assert a.read_text() == b.read_text()

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"format_version": 2, "entries": "nope"}')
        with pytest.raises(PersistenceError):
            StatisticsCatalog.open(path)

    def test_save_without_path_rejected(self):
        with pytest.raises(PersistenceError):
            StatisticsCatalog().save()

    def test_open_missing_file_starts_empty(self, tmp_path):
        catalog = StatisticsCatalog.open(tmp_path / "new.json")
        assert len(catalog) == 0


class TestMaintenance:
    def test_gc_drops_expired_stale_and_poor(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog(ttl=1000.0)
        populate(catalog, signer, css.all_statistics)
        keys = sorted(catalog.entries)
        catalog.mark_stale([keys[0]])
        catalog.adjust_quality(keys[1], 1.0)
        catalog.adjust_quality(keys[1], 1.0)
        before = len(catalog)
        dropped = catalog.gc(now=NOW)
        assert dropped == 2
        assert len(catalog) == before - 2
        # everything expires eventually
        assert catalog.gc(now=NOW + 2000) == len(keys) - 2

    def test_merge_prefers_newer_observation(self, wf11):
        _, css, signer = wf11
        older, newer = StatisticsCatalog(), StatisticsCatalog()
        stats = [s for s in css.all_statistics if not s.is_histogram]
        populate(older, signer, stats, observed_at=NOW - 50)
        populate(
            newer,
            signer,
            stats,
            values={s: 999 for s in stats},
            observed_at=NOW,
        )
        assert older.merge(newer) == len(stats)
        assert all(e.value() == 999 for e in older.entries.values())
        # merging the older copy back changes nothing
        stale_copy = StatisticsCatalog()
        populate(stale_copy, signer, stats, observed_at=NOW - 50)
        assert older.merge(stale_copy) == 0

    def test_record_preserves_hit_count(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        catalog.lookup(signer, css.all_statistics, now=NOW)
        populate(catalog, signer, css.all_statistics, observed_at=NOW + 10)
        assert {e.hits for e in catalog.entries.values()} == {1}

    def test_describe_mentions_flags(self, wf11):
        _, css, signer = wf11
        catalog = StatisticsCatalog()
        populate(catalog, signer, css.all_statistics)
        catalog.mark_stale(list(catalog.entries)[:1])
        text = catalog.describe()
        assert "stale" in text
        assert "entries" in text


def test_histogram_value_round_trip(tmp_path, wf11):
    analysis, css, signer = wf11
    wfcase = case(11)
    sources = wfcase.tables(scale=0.1, seed=3)
    table = sources["Trade"]
    se_stats = [
        s
        for s in css.all_statistics
        if s.is_histogram and getattr(s.se, "relations", None) == frozenset({"Trade"})
    ]
    assert se_stats
    stat = min(se_stats, key=lambda s: s.sort_key())
    histogram = table.histogram(tuple(stat.attrs))
    path = tmp_path / "cat.json"
    catalog = StatisticsCatalog(path)
    catalog.record(
        signer.statistic_key(stat),
        signer.se_key(stat.se),
        stat,
        histogram,
        observed_at=NOW,
    )
    catalog.save()
    entry = next(iter(StatisticsCatalog.open(path).entries.values()))
    assert entry.value() == histogram

    # JSON on disk is sorted and therefore diffable
    text = path.read_text()
    assert json.loads(text)  # valid
    assert text == json.dumps(json.loads(text), indent=1, sort_keys=True)
