"""Catalog wired through the pipeline and session layers."""

import pytest

from repro.catalog import StatisticsCatalog
from repro.engine.faults import FaultPlan, FaultSpec
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.session import EtlSession
from repro.workloads import case


def _permanent(target):
    return FaultPlan((FaultSpec(target=target, kind="permanent"),), seed=5)


def fresh(number=11, **kwargs):
    wfcase = case(number)
    pipeline = StatisticsPipeline(wfcase.build(), solver="greedy", **kwargs)
    return wfcase, pipeline


class TestWarmRuns:
    def test_second_run_observes_nothing_new(self, tmp_path):
        wfcase, pipeline = fresh()
        sources = wfcase.tables(scale=0.2, seed=7)
        catalog = StatisticsCatalog(tmp_path / "catalog.json")

        cold = pipeline.run_once(sources, stats_catalog=catalog)
        assert cold.catalog_hits == 0
        assert cold.tapped == list(cold.selection.observed)
        assert cold.drift is not None and cold.drift.added

        warm = pipeline.run_once(sources, stats_catalog=catalog)
        assert warm.tapped == []
        assert warm.catalog_hits == len(warm.selection.observed)
        assert warm.selection.total_cost == 0.0

        # identical plans and estimates either way
        assert warm.chosen_trees == cold.chosen_trees
        assert warm.estimator.all_cardinalities() == pytest.approx(
            cold.estimator.all_cardinalities()
        )

    def test_catalog_persisted_between_processes(self, tmp_path):
        path = tmp_path / "catalog.json"
        wfcase, pipeline = fresh()
        sources = wfcase.tables(scale=0.2, seed=7)
        pipeline.run_once(sources, stats_catalog=StatisticsCatalog(path))
        assert path.exists()

        # a different process (fresh pipeline, reopened catalog) stays warm
        _, pipeline2 = fresh()
        warm = pipeline2.run_once(
            sources, stats_catalog=StatisticsCatalog.open(path)
        )
        assert warm.tapped == []

    def test_cross_workflow_sharing(self, tmp_path):
        catalog = StatisticsCatalog(tmp_path / "shared.json")
        wf11, p11 = fresh(11)
        p11.run_once(wf11.tables(scale=0.2, seed=7), stats_catalog=catalog)

        wf12, p12 = fresh(12)
        cold_taps = len(
            p12.run_once(wf12.tables(scale=0.2, seed=7)).selection.observed
        )
        report = p12.run_once(
            wf12.tables(scale=0.2, seed=7), stats_catalog=catalog
        )
        assert report.catalog_hits > 0
        assert len(report.tapped) < cold_taps

    def test_describe_reports_reuse(self, tmp_path):
        wfcase, pipeline = fresh()
        sources = wfcase.tables(scale=0.2, seed=7)
        catalog = StatisticsCatalog(tmp_path / "c.json")
        pipeline.run_once(sources, stats_catalog=catalog)
        warm = pipeline.run_once(sources, stats_catalog=catalog)
        text = warm.describe()
        assert "reused at zero" in text


class TestSessionWiring:
    def test_session_threads_catalog_through_runs(self, tmp_path):
        wfcase, pipeline = fresh()
        catalog = StatisticsCatalog(tmp_path / "catalog.json")
        session = EtlSession(pipeline, stats_catalog=catalog)
        first = session.run(wfcase.tables(scale=0.2, seed=7))
        second = session.run(wfcase.tables(scale=0.2, seed=8))
        assert first.report.catalog_hits == 0
        assert second.report.catalog_hits > 0
        # run ids recorded in provenance
        run_ids = {e.run_id for e in catalog.entries.values()}
        assert run_ids <= {"run0", "run1"}


class TestResumeWithCatalog:
    """A checkpoint-restored statistic was observed on an earlier night;
    the resumed run must not hand it to the catalog as tonight's fresh
    observation (double-refresh corrupts provenance timestamps)."""

    def test_restored_statistics_not_recorded_as_fresh(self, tmp_path):
        from repro.framework.recovery import RunCheckpoint

        wfcase, pipeline = fresh(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        cp_path = tmp_path / "cp.json"

        # night 1 journals every block but crashes before the catalog
        # reconcile (modelled by simply not passing a catalog)
        cp = RunCheckpoint.open(cp_path)
        pipeline.run_once(sources, checkpoint=cp, run_id="night1")
        assert cp.completed

        # night 2 resumes the finished journal: every block restores,
        # no tap actually fires -- the checkpoint's statistics must not
        # enter the catalog stamped as night-2 observations
        catalog = StatisticsCatalog(tmp_path / "catalog.json")
        resumed = RunCheckpoint.open(cp_path)
        report = pipeline.run_once(
            sources,
            checkpoint=resumed,
            stats_catalog=catalog,
            run_id="night2",
        )
        assert report.run.restored_statistics
        assert report.drift is not None
        assert report.drift.added == []
        assert report.drift.refreshed == []
        assert not any(
            entry.run_id == "night2" for entry in catalog.entries.values()
        )

    def test_catalog_provenance_stable_across_resume(self, tmp_path):
        from repro.framework.recovery import RunCheckpoint

        wfcase, pipeline = fresh(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        cp_path = tmp_path / "cp.json"
        catalog = StatisticsCatalog(tmp_path / "catalog.json")

        cp = RunCheckpoint.open(cp_path)
        pipeline.run_once(
            sources, checkpoint=cp, stats_catalog=catalog, run_id="night1"
        )
        before = {
            key: (entry.observed_at, entry.run_id)
            for key, entry in catalog.entries.items()
        }
        assert before

        resumed = RunCheckpoint.open(cp_path)
        pipeline.run_once(
            sources,
            checkpoint=resumed,
            stats_catalog=catalog,
            run_id="night2",
        )
        after = {
            key: (entry.observed_at, entry.run_id)
            for key, entry in catalog.entries.items()
        }
        assert after == before


class TestDegradedWithCatalog:
    def test_catalog_backfills_failed_block(self, tmp_path):
        wfcase, pipeline = fresh(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        catalog = StatisticsCatalog(tmp_path / "catalog.json")
        pipeline.run_once(sources, stats_catalog=catalog)

        # warm run: the block fails permanently, but the catalog holds
        # every statistic -- confidence lands on the catalog rung
        block = pipeline.analysis.blocks[0].name
        faults = _permanent(block)
        report = pipeline.run_once(
            sources, stats_catalog=catalog, faults=faults
        )
        assert report.failures
        assert report.degraded
        labels = set()
        for per_se in report.degraded_sources.values():
            labels |= set(per_se.values())
        assert "catalog" in labels
        assert report.degraded[block] == "catalog"

    def test_without_catalog_falls_back_to_prior(self):
        wfcase, pipeline = fresh(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        clean = pipeline.run_once(sources)
        block = pipeline.analysis.blocks[0].name
        report = pipeline.run_once(
            sources,
            faults=_permanent(block),
            prior_statistics=clean.run.observations,
        )
        assert report.degraded[block] == "prior"
