"""Suite-scale acceptance: the catalog pays for itself across the fleet.

A cold nightly pass over the full 30-workflow TPC-DI suite populates one
shared catalog; the warm pass the next night must observe at least 30%
fewer statistics (the issue's acceptance floor — in practice the saving
is total when the data does not move) while choosing identical plans.
"""

import pytest

from repro.catalog import StatisticsCatalog, plan_fleet
from repro.framework.pipeline import StatisticsPipeline
from repro.workloads import suite

SCALE = 0.08
SEED = 5


def nightly_pass(catalog, run_id):
    """One night: every suite workflow, sharing one catalog."""
    taps = 0
    plans = {}
    hits = 0
    for wfcase in suite():
        pipeline = StatisticsPipeline(wfcase.build(), solver="greedy")
        report = pipeline.run_once(
            wfcase.tables(scale=SCALE, seed=SEED),
            stats_catalog=catalog,
            run_id=run_id,
        )
        taps += len(report.tapped)
        hits += report.catalog_hits
        plans[wfcase.number] = report.chosen_trees
    return taps, hits, plans


@pytest.mark.catalog
def test_warm_suite_pass_observes_30_percent_fewer(tmp_path):
    catalog = StatisticsCatalog(tmp_path / "fleet.json")
    cold_taps, _, cold_plans = nightly_pass(catalog, "night1")
    warm_taps, warm_hits, warm_plans = nightly_pass(catalog, "night2")

    assert cold_taps > 0
    assert warm_taps <= 0.7 * cold_taps, (
        f"warm pass observed {warm_taps} of {cold_taps} — saving below 30%"
    )
    assert warm_hits > 0
    assert warm_plans == cold_plans, "reused statistics must not change plans"


@pytest.mark.catalog
def test_cold_pass_already_shares_within_the_night(tmp_path):
    # the first night is not fully cold either: workflows later in the
    # batch reuse what earlier ones observed minutes before
    catalog = StatisticsCatalog(tmp_path / "fleet.json")
    _, first_night_hits, _ = nightly_pass(catalog, "night1")
    assert first_night_hits > 0


@pytest.mark.catalog
def test_fleet_plan_matches_catalog_coverage(tmp_path):
    # after a full warm catalog, the fleet planner schedules zero
    # observations for the whole suite
    catalog = StatisticsCatalog(tmp_path / "fleet.json")
    nightly_pass(catalog, "night1")
    fleet = plan_fleet(
        [wfcase.build() for wfcase in suite()], catalog=catalog
    )
    assert fleet.unique_observations == 0
    assert fleet.total_planned_cost == 0.0
    assert fleet.total_standalone_cost > 0.0
