"""Canonical statistic signatures: stable, unique, cross-workflow.

The whole catalog rests on the signature contract:

- deterministic: the same analysis always yields the same keys;
- plan-invariant: re-deriving the signer over a *different* plan of the
  same workflow maps each statistic to the same key (signatures describe
  what is computed, not how the DAG labels its nodes);
- unique: distinct statistics of one workflow never collide;
- shared: the same source statistic reached from two different workflows
  hashes to one key, while genuinely different statistics never do.
"""

import pytest

from repro.algebra.blocks import analyze, with_plans
from repro.catalog.signatures import (
    KEY_LENGTH,
    SignatureError,
    WorkflowSigner,
)
from repro.core.generator import generate_css
from repro.core.statistics import Statistic
from repro.estimation.optimizer import PlanOptimizer
from repro.workloads import case


def signer_for(number: int):
    analysis = analyze(case(number).build())
    return analysis, WorkflowSigner(analysis)


@pytest.mark.parametrize("number", [1, 7, 9, 11, 21, 30])
def test_keys_unique_and_deterministic(number):
    analysis, signer = signer_for(number)
    stats = generate_css(analysis).all_statistics
    keys = {}
    for stat in stats:
        key = signer.statistic_key(stat)
        assert len(key) == KEY_LENGTH
        assert key not in keys, (
            f"collision: {stat!r} and {keys[key]!r} share {key}"
        )
        keys[key] = stat
    # a fresh signer over a fresh analysis reproduces every key
    analysis2, signer2 = signer_for(number)
    stats2 = sorted(
        generate_css(analysis2).all_statistics, key=lambda s: s.sort_key()
    )
    for stat, original in zip(
        stats2, sorted(stats, key=lambda s: s.sort_key())
    ):
        assert signer2.statistic_key(stat) == signer.statistic_key(original)


def test_source_statistics_shared_across_workflows():
    # wf11 and wf12 both read TPC-DI sources; their shared relations must
    # land on identical keys while workflow-specific ones stay disjoint
    analysis_a, signer_a = signer_for(11)
    analysis_b, signer_b = signer_for(12)
    keys_a = {
        signer_a.statistic_key(s): s
        for s in generate_css(analysis_a).all_statistics
    }
    keys_b = {
        signer_b.statistic_key(s): s
        for s in generate_css(analysis_b).all_statistics
    }
    shared = set(keys_a) & set(keys_b)
    assert shared, "workflows reading the same sources must share keys"
    for key in shared:
        # a shared key always describes the same kind of statistic
        assert keys_a[key].kind == keys_b[key].kind
        assert keys_a[key].attrs == keys_b[key].attrs


def test_plan_change_preserves_keys():
    # re-plan every block: signatures must not move with the join order
    wfcase = case(11)
    analysis = analyze(wfcase.build())
    signer = WorkflowSigner(analysis)
    baseline = {
        signer.statistic_key(s): s.sort_key()
        for s in generate_css(analysis).all_statistics
    }

    run_cards = {}
    # cheap fake cardinalities are enough to force a different join order
    for block in analysis.blocks:
        for se in block.join_ses():
            run_cards[se] = float(len(se.relations) * 7 + len(repr(se)))
    optimizer = PlanOptimizer(analysis, run_cards)
    plans = {
        name: plan.tree for name, plan in optimizer.optimize().items()
    }
    replanned = with_plans(analysis, plans)
    signer2 = WorkflowSigner(replanned)
    rekeyed = {
        signer2.statistic_key(s): s.sort_key()
        for s in generate_css(replanned).all_statistics
    }
    shared = set(baseline) & set(rekeyed)
    # the SE space itself is plan-dependent at the margins, but the keys
    # that appear in both derivations must describe the same statistics
    assert shared
    for key in shared:
        assert baseline[key] == rekeyed[key]


def test_distinct_statistics_get_distinct_keys():
    analysis, signer = signer_for(7)
    block = analysis.blocks[0]
    se = next(iter(block.join_ses()))
    card = signer.statistic_key(Statistic.card(se))
    attr = sorted(analysis.workflow.catalog.relations)[0]
    # kind is part of the signature: |SE| vs H[SE] vs D[SE] never collide
    keys = {card}
    for stat in generate_css(analysis).all_statistics:
        keys.add(signer.statistic_key(stat))
    assert len(keys) >= 2


def test_se_key_groups_statistics_of_one_se():
    analysis, signer = signer_for(11)
    stats = generate_css(analysis).all_statistics
    by_se = {}
    for stat in stats:
        by_se.setdefault(signer.se_key(stat.se), set()).add(repr(stat.se))
    for se_key, reprs in by_se.items():
        assert len(reprs) == 1, f"se_key {se_key} covers {reprs}"


def test_foreign_statistic_raises_signature_error():
    _, signer = signer_for(7)
    analysis_b, _ = signer_for(12)
    foreign = sorted(
        generate_css(analysis_b).all_statistics, key=lambda s: s.sort_key()
    )
    with pytest.raises(SignatureError):
        for stat in foreign:
            signer.statistic_key(stat)
