"""The adaptive feedback loop: error stream -> catalog corrections.

Unit pins for :class:`~repro.catalog.feedback.FeedbackCorrector` (EWMA
smoothing, miss streaks, in-place correction with quality penalty), its
re-ranking contract with :func:`~repro.catalog.fleet.plan_fleet`, and
the acceptance scenario: a two-night pipeline run where night one is
poisoned with a misestimate, the corrector fixes the catalog in place
(``etl_catalog_corrections_total`` > 0), and night two's estimation
error is strictly lower.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.catalog import (
    FeedbackCorrector,
    StatisticsCatalog,
    WorkflowSigner,
    plan_fleet,
    reconcile_run,
)
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.backend import BackendExecutor, get_backend
from repro.framework.pipeline import StatisticsPipeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workloads import case

NOW = 3_000_000.0


def observe(number=11, scale=0.2, seed=7):
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    selection = solve_greedy(
        build_problem(generate_css(analysis), CostModel(workflow.catalog))
    )
    sources = wfcase.tables(scale=scale, seed=seed)
    backend = get_backend("columnar")
    run = BackendExecutor(analysis, backend).run(
        sources, taps=backend.make_taps(selection.observed)
    )
    return workflow, WorkflowSigner(analysis), selection, run


def seeded_catalog(signer, selection, run):
    catalog = StatisticsCatalog()
    reconcile_run(
        catalog,
        signer,
        run.observations,
        run.se_sizes,
        selection.observed,
        workflow="wf11",
        run_id="r0",
        backend="columnar",
        now=NOW,
    )
    return catalog


class TestCorrectorUnit:
    def test_accurate_predictions_correct_nothing(self):
        _, signer, selection, run = observe()
        catalog = seeded_catalog(signer, selection, run)
        corrector = FeedbackCorrector(catalog)
        report = corrector.observe_run(
            signer, dict(run.se_sizes), run.se_sizes, now=NOW
        )
        assert report.observed > 0
        assert report.corrected == [] and report.flagged == []
        assert report.mean_rel_error == 0.0
        assert corrector.corrections_total == 0

    def test_misestimate_corrects_entry_in_place(self):
        _, signer, selection, run = observe()
        catalog = seeded_catalog(signer, selection, run)
        size_before = len(catalog)
        estimates = {se: rows * 10 for se, rows in run.se_sizes.items()}
        corrector = FeedbackCorrector(catalog)
        report = corrector.observe_run(
            signer, estimates, run.se_sizes,
            workflow="wf11", run_id="r1", now=NOW + 10,
        )
        assert report.corrections > 0
        assert corrector.corrections_total == report.corrections
        assert len(catalog) == size_before  # in place, never new entries

        corrected = 0
        for se, rows in run.se_sizes.items():
            key = signer.statistic_key(Statistic.card(se))
            entry = catalog.get(key)
            if entry is None:
                continue
            corrected += 1
            assert entry.value() == rows  # refreshed to the observed value
            assert entry.quality < 1.0  # and penalized for the miss
            assert entry.run_id == "r1"
        assert corrected > 0

    def test_ewma_smoothing_and_streaks(self):
        _, signer, selection, run = observe()
        corrector = FeedbackCorrector(None, smoothing=0.5)
        se = next(iter(run.se_sizes))
        key = signer.statistic_key(Statistic.card(se))
        actual = {se: run.se_sizes[se]}

        corrector.observe_run(signer, {se: run.se_sizes[se] * 2}, actual)
        first = corrector.errors[key]
        assert first > corrector.threshold
        assert corrector.streaks[key] == 1
        assert not corrector.should_reobserve(key) or first > 0.25

        corrector.observe_run(signer, dict(actual), actual)
        # EWMA halves toward zero; an accurate run resets the streak
        assert corrector.errors[key] == pytest.approx(first / 2)
        assert corrector.streaks[key] == 0

    def test_streak_flags_reobservation(self):
        _, signer, selection, run = observe()
        corrector = FeedbackCorrector(None, reobserve_streak=2)
        se = next(iter(run.se_sizes))
        key = signer.statistic_key(Statistic.card(se))
        wrong = {se: run.se_sizes[se] * 3}
        actual = {se: run.se_sizes[se]}

        corrector.observe_run(signer, wrong, actual)
        assert corrector.streaks[key] == 1
        report = corrector.observe_run(signer, wrong, actual)
        assert corrector.streaks[key] == 2
        assert corrector.should_reobserve(key)
        assert key in report.flagged

    def test_priority_is_smoothed_error(self):
        corrector = FeedbackCorrector(None)
        corrector.errors["k1"] = 0.8
        assert corrector.priority("k1") == 0.8
        assert corrector.priority("unknown") == 0.0
        assert corrector.priority(None) == 0.0

    def test_metrics_and_describe(self):
        _, signer, selection, run = observe()
        catalog = seeded_catalog(signer, selection, run)
        registry = MetricsRegistry()
        corrector = FeedbackCorrector(catalog)
        report = corrector.observe_run(
            signer,
            {se: rows * 10 for se, rows in run.se_sizes.items()},
            run.se_sizes,
            workflow="wf11",
            now=NOW + 10,
            metrics=registry,
        )
        assert registry.get("feedback_corrections_total").value(
            workflow="wf11"
        ) == report.corrections
        assert registry.get("feedback_mean_rel_error").value(
            workflow="wf11"
        ) == pytest.approx(report.mean_rel_error)
        assert "corrected" in report.describe()

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            FeedbackCorrector(None, smoothing=0.0)


class TestFleetReRanking:
    def test_flagged_keys_withdrawn_from_catalog_cover(self):
        workflow, signer, selection, run = observe()
        catalog = seeded_catalog(signer, selection, run)

        # warm catalog: nothing to observe tonight
        warm = plan_fleet([workflow], catalog, solver="greedy", now=NOW + 1)
        assert warm.workflows[0].observe == []

        # two badly-missed nights flag every cardinality for re-observation
        corrector = FeedbackCorrector(catalog)
        wrong = {se: rows * 10 for se, rows in run.se_sizes.items()}
        corrector.observe_run(signer, wrong, run.se_sizes, now=NOW + 2)
        corrector.observe_run(signer, wrong, run.se_sizes, now=NOW + 3)

        replanned = plan_fleet(
            [workflow], catalog, solver="greedy",
            now=NOW + 4, feedback=corrector,
        )
        plan = replanned.workflows[0]
        assert plan.observe  # the poisoned entries are observed afresh
        flagged_keys = {
            key for key in corrector.errors if corrector.should_reobserve(key)
        }
        observed_keys = {
            signer.statistic_key(stat) for stat in plan.observe
        }
        assert observed_keys & flagged_keys

    def test_observe_list_ordered_most_misestimated_first(self):
        workflow, signer, selection, run = observe()
        corrector = FeedbackCorrector(None)
        # cold catalog: everything is observed; seed distinct priorities
        # straight into the corrector's smoothed-error state
        baseline = plan_fleet([workflow], solver="greedy", now=NOW)
        stats = baseline.workflows[0].observe
        assert len(stats) >= 2
        for rank, stat in enumerate(reversed(stats)):
            corrector.errors[signer.statistic_key(stat)] = 0.3 + 0.01 * rank

        ranked = plan_fleet(
            [workflow], solver="greedy", now=NOW, feedback=corrector
        )
        priorities = [
            corrector.priority(signer.statistic_key(stat))
            for stat in ranked.workflows[0].observe
        ]
        assert priorities == sorted(priorities, reverse=True)


class TestTwoNightSelfCorrection:
    """The acceptance scenario: a poisoned night self-corrects."""

    def test_injected_misestimate_corrected_on_night_two(self, tmp_path):
        wfcase = case(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        catalog = StatisticsCatalog(tmp_path / "catalog.json")

        # night zero populates the catalog with honest entries
        StatisticsPipeline(wfcase.build(), solver="greedy").run_once(
            sources, stats_catalog=catalog, run_id="n0"
        )

        # poison: inflate every base-source cardinality tenfold -- the
        # catalog hit feeds the optimizer the wrong prior on night one
        poisoned = 0
        for key, entry in list(catalog.entries.items()):
            stat = entry.statistic()
            if not (stat.is_cardinality and len(stat.se) == 1):
                continue
            catalog.record(
                key,
                entry.se_key,
                stat,
                int(entry.value()) * 10,
                workflow=entry.workflow,
                run_id="poison",
                backend=entry.backend,
                observed_at=entry.observed_at,
            )
            poisoned += 1
        assert poisoned > 0

        corrector = FeedbackCorrector(catalog)
        reports, registries = [], []
        for night in ("n1", "n2"):
            registry = MetricsRegistry()
            # a drift threshold far above any real error keeps the drift
            # scan out of the way: only the feedback loop may correct
            report = StatisticsPipeline(
                wfcase.build(), solver="greedy"
            ).run_once(
                sources,
                stats_catalog=catalog,
                run_id=night,
                drift_threshold=1000.0,
                feedback=corrector,
                tracer=Tracer(),
                metrics=registry,
            )
            reports.append(report)
            registries.append(registry)

        night1, night2 = reports
        # night one saw the poison and corrected the catalog in place
        assert night1.corrections > 0
        assert night1.feedback.mean_rel_error > 0.25
        assert registries[0].get("etl_catalog_corrections_total").value(
            workflow=wfcase.build().name, backend="columnar"
        ) == night1.corrections

        # night two runs on the corrected entries: strictly lower error,
        # nothing left to fix
        assert night2.feedback.mean_rel_error < night1.feedback.mean_rel_error
        assert night2.corrections == 0
        assert registries[1].get("etl_catalog_corrections_total") is None

        # the trace-layer histogram tells the same story
        name = wfcase.build().name
        labels = dict(workflow=name, backend="columnar")
        means = []
        for registry in registries:
            hist = registry.get("etl_estimation_rel_error")
            assert hist is not None and hist.count(**labels) > 0
            means.append(hist.sum(**labels) / hist.count(**labels))
        assert means[1] < means[0]

        # and the corrections were persisted with the night-one save
        reopened = StatisticsCatalog.open(tmp_path / "catalog.json")
        assert not any(
            entry.run_id == "poison" for entry in reopened.entries.values()
        )


class TestSessionWiring:
    def test_session_feeds_every_run_through_the_corrector(self, tmp_path):
        from repro.framework.session import EtlSession

        wfcase = case(11)
        sources = wfcase.tables(scale=0.2, seed=7)
        catalog = StatisticsCatalog(tmp_path / "catalog.json")
        corrector = FeedbackCorrector(catalog)
        session = EtlSession(
            StatisticsPipeline(wfcase.build(), solver="greedy"),
            stats_catalog=catalog,
            feedback=corrector,
        )
        session.run(sources)
        session.run(sources)
        assert all(
            record.report.feedback is not None for record in session.history
        )
        # honest catalog entries, honest priors: nothing to correct
        assert corrector.corrections_total == 0
        assert session.history[1].report.feedback.observed > 0
