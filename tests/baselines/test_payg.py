"""Tests for the pay-as-you-go baseline (Section 7.3)."""

import pytest

from repro.algebra.blocks import BlockInput, Block, analyze
from repro.algebra.enumeration import JoinEdge, JoinGraph
from repro.algebra.plans import JoinNode, Leaf, internal_ses, leaves
from repro.baselines.payg import (
    CoverageScheduler,
    coverable_ses,
    min_executions,
    semantic_lower_bound,
    workflow_executions,
    workflow_lower_bound,
    workflow_schedule,
)
from repro.workloads import case


def make_block(names, edges, name="B1"):
    inputs = {
        m: BlockInput(m, m, (), tuple(sorted({e.attr for e in edges if e.touches(m)})),
                      tuple(sorted({e.attr for e in edges if e.touches(m)})))
        for m in names
    }
    graph = JoinGraph(list(names), edges)
    tree = Leaf(names[0])
    for m in names[1:]:
        key = graph.crossing_key(tree.se.relations, frozenset({m}))
        tree = JoinNode(tree, Leaf(m), key)
    return Block(name, inputs, graph, tree)


def clique_block(n):
    names = [f"T{i}" for i in range(n)]
    edges = [JoinEdge(a, b, "k") for i, a in enumerate(names) for b in names[i + 1:]]
    return make_block(names, edges)


def chain_block(n):
    names = [f"T{i}" for i in range(n)]
    edges = [JoinEdge(names[i], names[i + 1], f"k{i}") for i in range(n - 1)]
    return make_block(names, edges)


class TestMinExecutions:
    def test_paper_values(self):
        """The exact numbers quoted in Section 7.3."""
        assert min_executions(5) == 9
        assert min_executions(8) == 41  # workflow 21
        assert min_executions(6) == 14  # workflow 30

    def test_trivial_sizes(self):
        assert min_executions(1) == 1
        assert min_executions(2) == 1
        assert min_executions(3) == 3

    def test_monotone_in_n(self):
        values = [min_executions(n) for n in range(2, 10)]
        assert values == sorted(values)


class TestCoverableSes:
    def test_excludes_bases_and_final(self):
        block = clique_block(4)
        targets = coverable_ses(block)
        for se in targets:
            assert 1 < len(se) < 4
        assert len(targets) == 2**4 - 1 - 4 - 1  # all subsets minus bases/full

    def test_chain_counts(self):
        block = chain_block(4)
        # connected proper intervals of length 2..3: (2:3, 3:2)
        assert len(coverable_ses(block)) == 5

    def test_semantic_lower_bound_le_generic(self):
        for n in (4, 5, 6):
            block = chain_block(n)
            assert semantic_lower_bound(block) <= min_executions(n)


class TestCoverageScheduler:
    @pytest.mark.parametrize("factory,n", [
        (clique_block, 4), (clique_block, 5), (clique_block, 6),
        (chain_block, 4), (chain_block, 6),
    ])
    def test_schedule_covers_everything(self, factory, n):
        block = factory(n)
        schedule = CoverageScheduler(block).schedule()
        targets = set(coverable_ses(block))
        covered = set()
        for tree in schedule.trees:
            assert {leaf.name for leaf in leaves(tree)} == set(block.inputs)
            covered.update(internal_ses(tree))
        assert targets <= covered

    def test_schedule_respects_lower_bound(self):
        for n in (4, 5, 6):
            block = clique_block(n)
            schedule = CoverageScheduler(block).schedule()
            assert schedule.executions >= min_executions(n)

    def test_two_way_needs_single_run(self):
        block = clique_block(2)
        assert CoverageScheduler(block).schedule().executions == 1

    def test_chain_efficiency(self):
        """Chains have few SEs; the schedule should stay near the semantic
        bound, far below the generic formula."""
        block = chain_block(6)
        schedule = CoverageScheduler(block).schedule()
        assert schedule.executions <= 2 * semantic_lower_bound(block) + 2
        assert schedule.executions < min_executions(6)


class TestWorkflowLevel:
    def test_linear_workflows_need_one_execution(self):
        for number in (1, 2, 3, 4, 5, 6):
            analysis = analyze(case(number).build())
            assert workflow_executions(analysis) == 1

    def test_wf21_lower_bound_is_41(self):
        analysis = analyze(case(21).build())
        assert workflow_lower_bound(analysis) == 41

    def test_wf30_lower_bound_is_14(self):
        analysis = analyze(case(30).build())
        assert workflow_lower_bound(analysis) == 14

    def test_found_schedule_at_least_lower_bound_on_cliquish_blocks(self):
        analysis = analyze(case(21).build())
        found = workflow_executions(analysis)
        # the greedy schedule cannot beat the semantic bound of any block
        semantic = max(
            semantic_lower_bound(b, analysis.workflow.catalog)
            for b in analysis.blocks
        )
        assert found >= semantic

    def test_fk_semantics_reduce_executions(self):
        """Exploiting lookup metadata shrinks the coverage requirement
        (the Section 7.3 remark)."""
        analysis = analyze(case(11).build())
        plain = workflow_executions(analysis, use_fk=False)
        with_fk = workflow_executions(analysis, use_fk=True)
        assert with_fk <= plain

    def test_workflow_schedule_has_entry_per_block(self):
        analysis = analyze(case(23).build())
        schedules = workflow_schedule(analysis)
        assert set(schedules) == {b.name for b in analysis.blocks}
