"""Tests for the XPLUS-style exploration/exploitation baseline."""

import pytest

from repro.algebra.blocks import analyze
from repro.baselines.explore import ExploreExploitSession
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.estimation.costmodel import PlanCostModel
from repro.estimation.optimizer import PlanOptimizer
from repro.workloads import case


@pytest.fixture(scope="module")
def setup():
    wfcase = case(9)  # 3-way join: small plan space, quick convergence
    analysis = analyze(wfcase.build())
    sources = wfcase.tables(scale=0.2, seed=5)
    return analysis, sources


class TestExploreExploit:
    def test_first_runs_explore(self, setup):
        analysis, sources = setup
        session = ExploreExploitSession(analysis)
        step = session.run(sources)
        assert step.explored
        assert step.newly_covered > 0

    def test_eventually_fully_explored_and_exploiting(self, setup):
        analysis, sources = setup
        session = ExploreExploitSession(analysis)
        for _ in range(10):
            if session.fully_explored:
                break
            session.run(sources)
        assert session.fully_explored
        step = session.run(sources)
        assert not step.explored
        assert step.newly_covered == 0

    def test_converges_to_true_optimum(self, setup):
        """Once everything is known, the exploited plan equals the plan a
        fully-informed optimizer picks."""
        analysis, sources = setup
        session = ExploreExploitSession(analysis)
        for _ in range(10):
            session.run(sources)
            if session.fully_explored:
                break
        final = session.run(sources)

        truth = ground_truth_cardinalities(analysis, sources)
        optimizer = PlanOptimizer(analysis, dict(truth))
        best = optimizer.optimize()
        model = PlanCostModel(dict(truth))
        for block in analysis.blocks:
            exploited_cost = model.tree_cost(final.trees[block.name])
            assert exploited_cost == pytest.approx(best[block.name].cost)

    def test_known_values_are_exact(self, setup):
        analysis, sources = setup
        session = ExploreExploitSession(analysis)
        session.run(sources)
        truth = ground_truth_cardinalities(analysis, sources)
        for se, value in session.known.items():
            if se in truth:
                assert value == truth[se]

    def test_alpha_zero_never_explores_after_first(self, setup):
        """A tiny alpha forbids paying for exploration once a cheapest-known
        plan exists (it may still 'explore' when the cheapest plan itself
        reveals unknowns)."""
        analysis, sources = setup
        session = ExploreExploitSession(analysis, alpha=0.0)
        for _ in range(6):
            session.run(sources)
        # exploration steps can only have happened on plans within the
        # zero-regret budget; cumulative cost must match repeating the
        # estimated-cheapest plan within a small factor
        costs = [s.executed_cost for s in session.history]
        assert max(costs) <= 3 * min(costs) + 1

    def test_cumulative_cost_accumulates(self, setup):
        analysis, sources = setup
        session = ExploreExploitSession(analysis)
        session.run(sources)
        session.run(sources)
        assert session.cumulative_cost() == pytest.approx(
            sum(s.executed_cost for s in session.history)
        )
