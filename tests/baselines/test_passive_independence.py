"""Tests for passive monitoring and independence-assumption baselines."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.baselines.independence import IndependenceEstimator, profile_inputs
from repro.baselines.passive import PassiveMonitor
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.workloads import case

SE = SubExpression.of


class TestPassiveMonitor:
    def test_single_run_covers_only_plan_points(self):
        wfcase = case(9)  # 3-way join
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=1)
        monitor = PassiveMonitor(analysis)
        monitor.absorb(Executor(analysis).run(sources))
        coverage = monitor.coverage()
        assert 0 < coverage.fraction < 1
        # plan-internal SEs are known, off-plan SEs are not
        block = analysis.blocks[0]
        from repro.algebra.plans import tree_ses

        for se in tree_ses(block.initial_tree):
            assert monitor.cardinality(se) is not None
        off_plan = [
            se for se in block.join_ses()
            if se not in set(tree_ses(block.initial_tree))
        ]
        assert off_plan
        assert all(monitor.cardinality(se) is None for se in off_plan)

    def test_absorbing_reordered_runs_grows_coverage(self):
        wfcase = case(9)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=1)
        block = analysis.blocks[0]
        monitor = PassiveMonitor(analysis)
        monitor.absorb(Executor(analysis).run(sources))
        before = monitor.coverage().fraction
        for tree in block.graph.enumerate_trees():
            monitor.absorb(
                Executor(analysis).run(sources, trees={block.name: tree})
            )
        after = monitor.coverage().fraction
        assert after == 1.0
        assert after > before

    def test_known_values_are_exact(self):
        wfcase = case(12)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=2)
        monitor = PassiveMonitor(analysis)
        monitor.absorb(Executor(analysis).run(sources))
        truth = ground_truth_cardinalities(analysis, sources)
        for se, value in monitor.known.items():
            if se in truth:
                assert value == truth[se]


class TestIndependenceEstimator:
    def test_base_cardinalities_exact(self):
        wfcase = case(9)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=1)
        run = Executor(analysis).run(sources)
        estimator = IndependenceEstimator(
            analysis, profile_inputs(analysis, run.env)
        )
        block = analysis.blocks[0]
        for name in block.inputs:
            truth = ground_truth_cardinalities(analysis, sources)[SE(name)]
            assert estimator.cardinality(SE(name)) == truth

    def test_skewed_data_breaks_independence(self):
        """On a skewed many-to-many join (customers x prospects on region)
        the independence estimate diverges -- the error that motivates
        learned statistics.  FK lookups, by contrast, stay exact."""
        wfcase = case(16)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.5, seed=7)
        run = Executor(analysis).run(sources)
        estimator = IndependenceEstimator(
            analysis, profile_inputs(analysis, run.env)
        )
        truth = ground_truth_cardinalities(analysis, sources)
        target = SE("DimCustomer", "Prospect")
        est = estimator.cardinality(target)
        actual = truth[target]
        rel_error = abs(est - actual) / max(actual, 1)
        assert rel_error > 0.05  # clearly off on skewed data

    def test_estimates_cover_all_join_ses(self):
        wfcase = case(13)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=1)
        run = Executor(analysis).run(sources)
        estimator = IndependenceEstimator(
            analysis, profile_inputs(analysis, run.env)
        )
        all_cards = estimator.all_cardinalities()
        for block in analysis.blocks:
            for se in block.join_ses():
                assert se in all_cards

    def test_unknown_se_raises(self):
        wfcase = case(9)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=1)
        run = Executor(analysis).run(sources)
        estimator = IndependenceEstimator(
            analysis, profile_inputs(analysis, run.env)
        )
        from repro.algebra.expressions import RejectSE

        with pytest.raises(KeyError):
            estimator.cardinality(RejectSE(SE("A"), "k", SE("B")))
