"""Differential fuzz: every backend agrees on random workflows.

The suite-wide equivalence test pins the backend contract on the 30
hand-written workflows; this one extends it to *seeded random* workflows,
where operator mixes (reject links under transforms, projected join keys,
aggregations over filtered joins) occur in combinations no suite workflow
exercises.  The columnar serial run is the reference; every other
(backend, workers) variant must produce identical sorted target tables,
identical observation-point sizes, and identical tapped statistics.

Seeds derive from ``REPRO_PROPERTY_SEED`` (default 0), so the CI sample is
fixed and failures replay locally with the same environment variable.
"""

import os

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.workloads.randomgen import random_workflow

pytestmark = pytest.mark.property

BASE_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))
SEEDS = [BASE_SEED * 1000 + i for i in range(12)]

#: every non-reference variant: both materializing backends, the
#: streaming engine (serial and under the 4-wide parallel scheduler),
#: and the sharded multiprocess backend at 1/2/4 shards (the second
#: element is the shard count for multiprocess rows)
VARIANTS = [
    ("columnar", 4),
    ("streaming", 1),
    ("streaming", 4),
    ("vectorized", 1),
    ("vectorized", 4),
    ("multiprocess", 1),
    ("multiprocess", 2),
    ("multiprocess", 4),
]


def _variant_backend(backend_name: str, workers: int):
    """``(backend instance, scheduler width)`` for one variant row."""
    if backend_name == "multiprocess":
        from repro.engine.dist import MultiprocessBackend

        backend = MultiprocessBackend(
            shards=workers,
            inline=True,  # fork-free here; the pool path is pinned in tests/dist
            factors={"min_shard_rows": 0},
        )
        return backend, 1
    return get_backend(backend_name), workers


@pytest.fixture(scope="module")
def reference():
    """Per-seed (analysis, selection, tables, columnar serial run)."""
    cache = {}

    def get(seed):
        if seed not in cache:
            workflow, tables = random_workflow(seed)
            analysis = analyze(workflow)
            catalog = generate_css(analysis)
            selection = solve_greedy(
                build_problem(catalog, CostModel(workflow.catalog))
            )
            backend = get_backend("columnar")
            run = BackendExecutor(analysis, backend).run(
                tables, taps=backend.make_taps(selection.observed)
            )
            cache[seed] = (analysis, selection, tables, run)
        return cache[seed]

    return get


@pytest.mark.parametrize("backend_name,workers", VARIANTS, ids=lambda v: str(v))
@pytest.mark.parametrize("seed", SEEDS)
def test_backends_agree_on_random_workflow(seed, backend_name, workers, reference):
    analysis, selection, tables, ref = reference(seed)
    backend, workers = _variant_backend(backend_name, workers)
    run = BackendExecutor(analysis, backend, workers=workers).run(
        tables, taps=backend.make_taps(selection.observed)
    )

    # identical targets under a canonical (sorted) attribute + row order
    assert set(run.targets) == set(ref.targets)
    for name, table in ref.targets.items():
        other = run.targets[name]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (seed, name)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            seed,
            name,
        )

    # identical observation-point sizes
    assert run.se_sizes == ref.se_sizes, seed

    # identical tapped statistics
    for stat in selection.observed:
        assert run.observations.maybe(stat) == ref.observations.get(stat), (
            seed,
            stat,
        )
