"""Property: both solvers always cover all SE cardinalities.

Section 5 frames statistics selection as a weighted hitting-set problem;
the ILP solves it exactly and the greedy approximates it.  Whatever the
workflow, both must return *valid* selections (the closure of the observed
set derives the cardinality of every SE in S_C) and the approximation can
never beat the optimum: ``greedy cost >= ILP cost``.

Hypothesis drives the seed space (derandomized, so CI is reproducible);
the workflow generator turns each seed into a random join graph.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.workloads.randomgen import random_workflow

pytestmark = pytest.mark.property


@settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_greedy_and_ilp_cover_all_cardinalities(seed):
    workflow, _ = random_workflow(seed)
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))

    ilp = solve_ilp(problem)
    greedy = solve_greedy(problem)

    # validity: the observed closure derives every required cardinality
    for result in (ilp, greedy):
        assert result.is_valid, (seed, result.method)
        computable = catalog.closure(set(result.observed))
        missing = catalog.required - computable
        assert not missing, (seed, result.method, missing)

    # optimality ordering: the approximation never beats the exact solve
    assert greedy.total_cost >= ilp.total_cost - 1e-9, seed
