"""Property: every derived CSS reproduces the SE's ground-truth cardinality.

The paper's Section 4.1 rules are only sound if *each* CSS -- evaluated in
isolation, on exact inputs -- recomputes the statistic it claims to derive.
The end-to-end suites check the fixpoint as a whole; this property pins
every rule application separately: for seeded random workflows, each
non-trivial CSS targeting a cardinality is evaluated through a
single-entry catalog seeded with exact input values, and must reproduce
the brute-force cardinality of its SE.

Seeds derive from ``REPRO_PROPERTY_SEED`` (default 0) so CI runs a fixed,
reproducible sample while local runs can explore other regions.
"""

import os

import pytest

from repro.algebra.blocks import analyze
from repro.core.css import CssCatalog
from repro.core.generator import generate_css
from repro.core.statistics import StatisticsStore
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.calculator import StatisticsCalculator, compute_statistics
from repro.workloads.randomgen import random_workflow

pytestmark = pytest.mark.property

BASE_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))
SEEDS = [BASE_SEED * 1000 + i for i in range(16)]


@pytest.mark.parametrize("seed", SEEDS)
def test_each_css_reproduces_ground_truth_cardinality(seed):
    workflow, tables = random_workflow(seed)
    analysis = analyze(workflow)
    catalog = generate_css(analysis)

    # exact reference values for every derivable statistic: observe all of
    # S_O once, then run the full fixpoint
    taps = TapSet(catalog.observable)
    run = Executor(analysis).run(tables, taps=taps)
    assert taps.missing() == []
    reference = compute_statistics(catalog, run.observations)
    truth = ground_truth_cardinalities(analysis, tables)

    checked = 0
    for target, bucket in catalog.css.items():
        if not target.is_cardinality or target.se not in truth:
            continue
        for css in bucket:
            if css.is_trivial:
                continue
            if any(s not in reference for s in css.inputs):
                continue  # inputs not derivable from tonight's plan
            # a catalog containing ONLY this CSS: the fixpoint cannot route
            # around a broken rule, the one entry must do the work itself
            mini = CssCatalog(steps=dict(catalog.steps))
            mini.add(css)
            seeded = StatisticsStore()
            for stat in css.inputs:
                seeded.put(stat, reference.get(stat))
            out = StatisticsCalculator(mini, seeded).compute_all()
            assert out.get(target) == pytest.approx(truth[target.se]), (
                seed,
                css,
            )
            checked += 1
    # a workflow with no derivable non-trivial cardinality CSS would make
    # this test vacuous -- the generator never produces one
    assert checked > 0, seed
