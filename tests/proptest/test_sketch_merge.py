"""Merge-law property suite for the HyperLogLog distinct sketch.

The multiprocess backend's correctness rests on the accumulator algebra:
folding per-shard sketches together in *any* order must reproduce the
unsharded sketch exactly (register for register), which in turn requires
the merge to be commutative, associative and idempotent.  This suite
pins those laws on seeded random value sets and random shard cuts, plus
the estimate-accuracy bound the precision implies and the versioned JSON
round-trip the checkpoints rely on.

Seeds derive from ``REPRO_PROPERTY_SEED`` (default 0), so the CI sample
is fixed and failures replay locally with the same environment variable.
"""

import math
import os
import random

import pytest

from repro.engine.instrumentation import (
    DistinctAccumulator,
    InstrumentationError,
    make_distinct_accumulator,
)
from repro.estimation.sketches import (
    DEFAULT_PRECISION,
    HllSketch,
    SketchError,
    SketchSpec,
    active_sketch_spec,
    hash64,
    sketch_scope,
)

pytestmark = pytest.mark.property

BASE_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))
SEEDS = [BASE_SEED * 1000 + i for i in range(8)]

#: a low threshold so most random sets exercise the dense-register path,
#: and a threshold-free variant that stays in the exact-set fallback
SMALL = dict(precision=10, exact_threshold=8)


def _values(rng: random.Random, n: int) -> list[tuple]:
    """Random accumulator values: tuples, as the taps produce."""
    return [
        (rng.randrange(n * 4), rng.choice("abcdef"))
        for _ in range(n)
    ]


def _shards(rng: random.Random, values: list, k: int) -> list[list]:
    cuts = sorted(rng.randrange(len(values) + 1) for _ in range(k - 1))
    bounds = [0, *cuts, len(values)]
    return [values[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


@pytest.mark.parametrize("seed", SEEDS)
class TestMergeLaws:
    def test_commutative(self, seed):
        rng = random.Random(seed)
        a_vals = _values(rng, rng.randrange(1, 200))
        b_vals = _values(rng, rng.randrange(1, 200))

        ab = HllSketch(a_vals, **SMALL)
        ab.merge(HllSketch(b_vals, **SMALL))
        ba = HllSketch(b_vals, **SMALL)
        ba.merge(HllSketch(a_vals, **SMALL))

        assert ab == ba
        assert ab.result() == ba.result()

    def test_associative(self, seed):
        rng = random.Random(seed * 31 + 1)
        parts = [_values(rng, rng.randrange(1, 150)) for _ in range(3)]

        left = HllSketch(parts[0], **SMALL)
        left.merge(HllSketch(parts[1], **SMALL))
        left.merge(HllSketch(parts[2], **SMALL))

        bc = HllSketch(parts[1], **SMALL)
        bc.merge(HllSketch(parts[2], **SMALL))
        right = HllSketch(parts[0], **SMALL)
        right.merge(bc)

        assert left == right

    def test_idempotent(self, seed):
        rng = random.Random(seed * 17 + 3)
        vals = _values(rng, rng.randrange(1, 200))
        sketch = HllSketch(vals, **SMALL)
        twin = HllSketch(vals, **SMALL)
        before = HllSketch(vals, **SMALL)

        sketch.merge(twin)

        assert sketch == before
        assert sketch.result() == before.result()

    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_any_order_shard_merge_is_register_exact(self, seed, k):
        rng = random.Random(seed * 13 + k)
        vals = _values(rng, rng.randrange(k, 400))
        whole = HllSketch(vals, **SMALL)

        shards = [
            HllSketch(piece, **SMALL)
            for piece in _shards(rng, vals, k)
        ]
        rng.shuffle(shards)
        merged, *rest = shards
        for shard in rest:
            merged.merge(shard)

        # equality compares the exact set or the raw register array, so
        # this is the register-level guarantee, not just estimate-level
        assert merged == whole
        assert merged.result() == whole.result()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("precision", [10, 12, 14])
def test_estimate_within_precision_error_bound(seed, precision):
    rng = random.Random(seed * 7 + precision)
    truth = rng.randrange(2_000, 20_000)
    sketch = HllSketch(
        ((i, seed) for i in range(truth)),
        precision=precision,
        exact_threshold=0,
    )

    assert not sketch.is_exact
    # 1.04/sqrt(m) is the *typical* (one sigma) error; 4 sigma bounds the
    # seeded sample with plenty of slack while still scaling with p
    bound = 4 * 1.04 / math.sqrt(1 << precision)
    assert abs(sketch.result() - truth) / truth <= bound


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_exact_fallback_is_exact(seed):
    rng = random.Random(seed)
    vals = _values(rng, rng.randrange(1, 64))
    sketch = HllSketch(vals, precision=DEFAULT_PRECISION)

    assert sketch.is_exact
    assert sketch.result() == len(set(vals))


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_json_round_trip_both_modes(seed):
    rng = random.Random(seed * 3 + 2)
    for n in (5, 200):  # exact-set payload, then a densified one
        vals = _values(rng, n)
        sketch = HllSketch(vals, **SMALL)
        back = HllSketch.from_doc(sketch.to_doc())
        assert back == sketch
        assert back.result() == sketch.result()
        assert back.is_exact == sketch.is_exact


def test_hash64_is_deterministic():
    # the cross-process contract: no per-process salt anywhere
    assert hash64((1, "x")) == hash64((1, "x"))
    assert hash64((1, "x")) != hash64((1, "y"))


class TestMixedImplementationMerge:
    def test_exact_into_sketch_raises(self):
        sketch = HllSketch([(1,)], **SMALL)
        with pytest.raises(InstrumentationError):
            sketch.merge(DistinctAccumulator([(1,)]))

    def test_sketch_into_exact_raises(self):
        exact = DistinctAccumulator([(1,)])
        with pytest.raises(InstrumentationError):
            exact.merge(HllSketch([(1,)], **SMALL))

    def test_mismatched_precisions_raise(self):
        a = HllSketch([(1,)], precision=10)
        b = HllSketch([(2,)], precision=12)
        with pytest.raises(InstrumentationError):
            a.merge(b)


class TestFactorySeam:
    def test_default_spec_builds_exact_accumulators(self):
        assert active_sketch_spec().mode == "exact"
        acc = make_distinct_accumulator([(1,), (2,)])
        assert isinstance(acc, DistinctAccumulator)
        assert acc.result() == 2

    def test_hll_scope_builds_sketches_and_restores(self):
        with sketch_scope(SketchSpec(mode="hll", precision=10)):
            acc = make_distinct_accumulator([(1,), (2,)])
            assert isinstance(acc, HllSketch)
            assert acc.precision == 10
        assert isinstance(make_distinct_accumulator(), DistinctAccumulator)

    def test_invalid_spec_rejected(self):
        with pytest.raises(SketchError):
            SketchSpec(mode="bloom")
        with pytest.raises(SketchError):
            SketchSpec(mode="hll", precision=2)
