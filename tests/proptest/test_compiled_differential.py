"""Differential fuzz: compiled plans agree with the interpreter.

The plan-compilation layer promises bit-for-bit observational equivalence
with each backend's interpreter: same targets, same observation-point
sizes, same tapped statistics, same reject rows.  The hand-written suite
pins that on 30 workflows; this file extends it to seeded random
workflows (operator mixes the suite never produces), to dirty extracts
(quarantine victims and schema-drift resolutions must be identical), and
to the optimizer itself (the chosen plans cannot depend on whether the
executor compiled).

Seeds derive from ``REPRO_PROPERTY_SEED`` (default 0), so the CI sample
is fixed and failures replay locally with the same environment variable.
"""

import os

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.engine.faults import FaultPlan, FaultSpec
from repro.quality import ContractSet, QualityGate
from repro.workloads import case
from repro.workloads.randomgen import random_workflow

pytestmark = pytest.mark.property

BASE_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))
SEEDS = [BASE_SEED * 1000 + i for i in range(8)]
BACKENDS = ("columnar", "streaming", "vectorized")


@pytest.fixture(scope="module")
def reference():
    """Per-seed (analysis, selection, tables) plus interpreted runs."""
    cache = {}

    def get(seed, backend_name):
        if seed not in cache:
            workflow, tables = random_workflow(seed)
            analysis = analyze(workflow)
            catalog = generate_css(analysis)
            selection = solve_greedy(
                build_problem(catalog, CostModel(workflow.catalog))
            )
            cache[seed] = (analysis, selection, tables, {})
        analysis, selection, tables, runs = cache[seed]
        if backend_name not in runs:
            backend = get_backend(backend_name)
            runs[backend_name] = BackendExecutor(
                analysis, backend, compile_plans=False
            ).run(tables, taps=backend.make_taps(selection.observed))
        return analysis, selection, tables, runs[backend_name]

    return get


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_matches_interpreter_on_random_workflow(
    seed, backend_name, reference
):
    analysis, selection, tables, ref = reference(seed, backend_name)
    backend = get_backend(backend_name)
    run = BackendExecutor(analysis, backend, compile_plans=True).run(
        tables, taps=backend.make_taps(selection.observed)
    )

    # identical targets under a canonical (sorted) attribute + row order
    assert set(run.targets) == set(ref.targets)
    for name, table in ref.targets.items():
        other = run.targets[name]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (seed, name)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            seed,
            name,
        )

    # identical observation-point sizes (the statistics the optimizer eats)
    assert run.se_sizes == ref.se_sizes, seed

    # identical tapped statistics -- the fused kernels feed the same
    # column batches the interpreter feeds row-by-row or table-at-once
    for stat in selection.observed:
        assert run.observations.maybe(stat) == ref.observations.get(stat), (
            seed,
            stat,
        )

    # identical reject-link victims, row for row
    assert set(run.rejects) == set(ref.rejects), seed
    for rej, table in ref.rejects.items():
        other = run.rejects[rej]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (seed, rej)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            seed,
            rej,
        )


# ---------------------------------------------------------------------------
# dirty extracts: quarantine victims must not depend on compilation
# ---------------------------------------------------------------------------
DIRTY = FaultPlan(
    (
        FaultSpec(target="Trade", kind="corrupt-row", fraction=0.02),
        FaultSpec(target="DimAccount", kind="null-burst", rows=3),
        FaultSpec(target="DimSecurity", kind="type-flip", fraction=0.01),
        FaultSpec(
            target="DimDate", kind="column-rename",
            column="month_id", rename_to="month",
        ),
    ),
    seed=1337,
)


def _quality_fingerprint(run):
    return {
        "quarantined": {
            name: list(table.rows())
            for name, table in run.quarantined.items()
        },
        "violations": [
            (v.source, v.row, v.column, v.code) for v in run.violations
        ],
        "drift": [
            (e.source, e.kind, e.column, e.resolution)
            for e in run.schema_drift
        ],
        "targets": {
            name: sorted(table.rows(sorted(table.attrs)), key=repr)
            for name, table in run.targets.items()
        },
        "se_sizes": {repr(se): size for se, size in run.se_sizes.items()},
    }


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_quarantine_victims_identical_compiled_vs_interpreted(backend_name):
    wfcase = case(25)
    analysis = analyze(wfcase.build())
    fingerprints = {}
    for compiled in (False, True):
        sources = wfcase.tables(scale=0.05, seed=7)
        gate = QualityGate(contracts=ContractSet.infer(sources))
        run = BackendExecutor(
            analysis, get_backend(backend_name), compile_plans=compiled
        ).run(sources, faults=DIRTY.injector(), quality=gate)
        fingerprints[compiled] = _quality_fingerprint(run)
    assert fingerprints[True]["quarantined"]  # the injection actually bit
    assert fingerprints[True]["drift"]
    assert fingerprints[True] == fingerprints[False], backend_name


# ---------------------------------------------------------------------------
# the optimizer: chosen plans must not depend on compilation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS[:4])
def test_chosen_plans_identical_compiled_vs_interpreted(seed):
    from repro.framework.pipeline import StatisticsPipeline

    workflow, tables = random_workflow(seed)
    chosen = {}
    for compiled in (False, True):
        pipeline = StatisticsPipeline(
            workflow,
            solver="greedy",
            backend="vectorized",
            compile=compiled,
        )
        report = pipeline.run_once(tables)
        chosen[compiled] = {
            name: repr(tree) for name, tree in report.chosen_trees.items()
        }
    assert chosen[True] == chosen[False], seed
