"""Unit tests for the columnar table."""

import pytest

from repro.core.histogram import Histogram
from repro.engine.table import Table, TableError


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(TableError):
            Table({"a": [1, 2], "b": [1]})

    def test_empty_schema_rejected(self):
        with pytest.raises(TableError):
            Table({})

    def test_from_rows_roundtrip(self):
        t = Table.from_rows(("a", "b"), [(1, 2), (3, 4)])
        assert t.num_rows == 2
        assert list(t.rows()) == [(1, 2), (3, 4)]
        assert t.column("a") == [1, 3]

    def test_from_rows_validates_width(self):
        with pytest.raises(TableError):
            Table.from_rows(("a", "b"), [(1,)])

    def test_rows_with_projection(self):
        t = Table({"a": [1, 2], "b": [3, 4]})
        assert list(t.rows(("b",))) == [(3,), (4,)]

    def test_unknown_column(self):
        t = Table({"a": [1]})
        with pytest.raises(TableError):
            t.column("b")
        assert t.has_column("a") and not t.has_column("b")

    def test_take(self):
        t = Table({"a": [10, 20, 30]})
        assert t.take([2, 0]).column("a") == [30, 10]

    def test_with_column(self):
        t = Table({"a": [1, 2]})
        t2 = t.with_column("b", [5, 6])
        assert t2.attrs == ("a", "b")
        assert t.attrs == ("a",)  # original untouched
        with pytest.raises(TableError):
            t.with_column("b", [5])

    def test_select_columns(self):
        t = Table({"a": [1], "b": [2]})
        assert t.select_columns(("b",)).attrs == ("b",)

    def test_histogram(self):
        t = Table({"a": [1, 1, 2]})
        assert t.histogram(("a",)) == Histogram.single("a", {1: 2, 2: 1})

    def test_distinct_count(self):
        t = Table({"a": [1, 1, 2], "b": [1, 1, 1]})
        assert t.distinct_count(("a",)) == 2
        assert t.distinct_count(("a", "b")) == 2

    def test_init_copies_caller_columns(self):
        """Regression: the constructor used to alias the caller's lists, so
        mutating the source dict after construction corrupted the table."""
        col = [1, 2, 3]
        t = Table({"a": col})
        col.append(4)
        col[0] = 99
        assert t.num_rows == 3
        assert t.column("a") == [1, 2, 3]

    def test_tables_from_same_dict_are_independent(self):
        columns = {"a": [1, 2]}
        t1 = Table(columns)
        t2 = Table(columns)
        t1.columns["a"][0] = 77
        assert t2.column("a") == [1, 2]

    def test_wrap_adopts_columns_without_copy(self):
        """``wrap`` is the trusted fast path: fresh engine-built columns are
        adopted as-is (no defensive copy, no validation loop)."""
        col = [1, 2]
        t = Table.wrap({"a": col})
        assert t.column("a") is col
        assert t.num_rows == 2 and t.attrs == ("a",)

    def test_wrap_requires_a_column(self):
        with pytest.raises(TableError):
            Table.wrap({})

    def test_row_dicts(self):
        t = Table({"a": [1], "b": [2]})
        assert t.row_dicts() == [{"a": 1, "b": 2}]

    def test_empty_table(self):
        t = Table.empty(("a", "b"))
        assert t.num_rows == 0
        assert list(t.rows()) == []
