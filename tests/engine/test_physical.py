"""Unit tests for physical operators, reject links included."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.physical import (
    apply_aggregate_udf,
    apply_filter,
    apply_project,
    apply_transform,
    group_by,
    hash_join,
)
from repro.engine.table import Table, TableError


class TestUnary:
    def test_filter(self):
        t = Table({"a": [1, 2, 3], "b": [9, 8, 7]})
        out = apply_filter(t, "a", lambda v: v >= 2)
        assert list(out.rows()) == [(2, 8), (3, 7)]

    def test_transform_single_attr(self):
        t = Table({"a": [1, 2]})
        out = apply_transform(t, ("a",), lambda v: v * 10, "a")
        assert out.column("a") == [10, 20]

    def test_transform_derives_attr(self):
        t = Table({"a": [1, 2]})
        out = apply_transform(t, ("a",), lambda v: v + 1, "c")
        assert out.column("a") == [1, 2]
        assert out.column("c") == [2, 3]

    def test_transform_multi_attr(self):
        t = Table({"a": [1, 2], "b": [10, 20]})
        out = apply_transform(t, ("a", "b"), lambda vs: vs[0] + vs[1], "s")
        assert out.column("s") == [11, 22]

    def test_project(self):
        t = Table({"a": [1], "b": [2]})
        assert apply_project(t, ("b",)).attrs == ("b",)


class TestHashJoin:
    def test_basic_join_with_multiplicity(self):
        left = Table({"k": [1, 1, 2], "l": [10, 11, 12]})
        right = Table({"k": [1, 3], "r": [100, 300]})
        out, rl, rr = hash_join(left, right, ("k",))
        assert rl is None and rr is None
        assert sorted(out.rows()) == [(1, 10, 100), (1, 11, 100)]

    def test_join_key_coalesces(self):
        left = Table({"k": [1], "l": [2]})
        right = Table({"k": [1], "r": [3]})
        out, _l, _r = hash_join(left, right, ("k",))
        assert out.attrs == ("k", "l", "r")

    def test_reject_left(self):
        left = Table({"k": [1, 2, 3]})
        right = Table({"k": [2]})
        out, rl, _ = hash_join(left, right, ("k",), want_reject_left=True)
        assert rl.column("k") == [1, 3]
        assert out.column("k") == [2]

    def test_reject_right(self):
        left = Table({"k": [2]})
        right = Table({"k": [1, 2, 2, 3]})
        _, _, rr = hash_join(left, right, ("k",), want_reject_right=True)
        assert rr.column("k") == [1, 3]

    def test_composite_key(self):
        left = Table({"a": [1, 1], "b": [5, 6]})
        right = Table({"a": [1], "b": [5], "c": [9]})
        out, _l, _r = hash_join(left, right, ("a", "b"))
        assert list(out.rows()) == [(1, 5, 9)]

    def test_empty_sides(self):
        left = Table.empty(("k",))
        right = Table({"k": [1]})
        out, rl, rr = hash_join(
            left, right, ("k",), want_reject_left=True, want_reject_right=True
        )
        assert out.num_rows == 0
        assert rl.num_rows == 0
        assert rr.num_rows == 1

    @given(
        st.lists(st.integers(0, 8), max_size=30),
        st.lists(st.integers(0, 8), max_size=30),
    )
    @settings(max_examples=50)
    def test_join_partition_invariant(self, lvals, rvals):
        """|matched rows of left side| + |reject_left| accounts for every
        left row, and the join size equals the histogram dot product."""
        left = Table({"k": lvals}) if lvals else Table.empty(("k",))
        right = Table({"k": rvals}) if rvals else Table.empty(("k",))
        out, rl, _ = hash_join(left, right, ("k",), want_reject_left=True)
        right_set = set(rvals)
        matched_left = sum(1 for v in lvals if v in right_set)
        assert rl.num_rows == len(lvals) - matched_left
        if lvals and rvals:
            expected = left.histogram(("k",)).dot(right.histogram(("k",)))
            assert out.num_rows == expected


class TestGroupBy:
    def test_count_sum_min_max(self):
        t = Table({"g": [1, 1, 2], "v": [10, 20, 30]})
        out = group_by(
            t,
            ("g",),
            {
                "n": ("count", "v"),
                "s": ("sum", "v"),
                "lo": ("min", "v"),
                "hi": ("max", "v"),
            },
        )
        rows = {r[0]: r[1:] for r in out.rows(("g", "n", "s", "lo", "hi"))}
        assert rows[1] == (2, 30, 10, 20)
        assert rows[2] == (1, 30, 30, 30)

    def test_group_count_equals_distinct(self):
        t = Table({"g": [1, 2, 2, 3, 3, 3]})
        out = group_by(t, ("g",))
        assert out.num_rows == 3

    def test_requires_something(self):
        t = Table({"g": [1]})
        with pytest.raises(TableError):
            group_by(t, ())


class TestAggregateUdf:
    def test_black_box_shrink(self):
        t = Table({"a": [1, 1, 2]})
        out = apply_aggregate_udf(
            t, lambda rows: [dict(s) for s in {tuple(r.items()) for r in rows}]
        )
        assert out.num_rows == 2

    def test_empty_result(self):
        t = Table({"a": [1]})
        out = apply_aggregate_udf(t, lambda rows: [])
        assert out.num_rows == 0
        assert out.attrs == ("a",)


class TestAlternativeJoinImplementations:
    """Sort-merge and nested-loop must agree with the hash join exactly."""

    @given(
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 4)), max_size=25),
        st.lists(st.tuples(st.integers(0, 6), st.integers(0, 4)), max_size=25),
    )
    @settings(max_examples=50)
    def test_all_three_agree(self, lrows, rrows):
        from repro.engine.physical import merge_join, nested_loop_join

        left = (
            Table.from_rows(("k", "l"), lrows) if lrows else Table.empty(("k", "l"))
        )
        right = (
            Table.from_rows(("k", "r"), rrows) if rrows else Table.empty(("k", "r"))
        )
        hashed, _l, _r = hash_join(left, right, ("k",))
        merged = merge_join(left, right, ("k",))
        nested = nested_loop_join(left, right, ("k",))
        want = sorted(hashed.rows(("k", "l", "r")))
        assert sorted(merged.rows(("k", "l", "r"))) == want
        assert sorted(nested.rows(("k", "l", "r"))) == want

    def test_merge_join_composite_key(self):
        from repro.engine.physical import merge_join

        left = Table({"a": [1, 1, 2], "b": [5, 6, 5], "l": [10, 11, 12]})
        right = Table({"a": [1, 2], "b": [5, 5], "r": [7, 8]})
        out = merge_join(left, right, ("a", "b"))
        assert sorted(out.rows(("a", "b", "l", "r"))) == [
            (1, 5, 10, 7),
            (2, 5, 12, 8),
        ]
