"""Unit tests for the fault-injection harness and the retrying scheduler.

These are the chaos suite's foundations: fault specs validate and
round-trip, the injector fires deterministically under a fixed seed, and
the scheduler's retry/timeout/skip machinery turns injected errors into
structured :class:`RunFailure` records instead of torn-down runs.
"""

import os
import time

import pytest

from repro.engine.faults import (
    FaultError,
    FaultPlan,
    FaultSpec,
    PermanentFault,
    TransientFault,
    as_injector,
)
from repro.engine.scheduler import (
    BlockTimeout,
    ParallelScheduler,
    RetryPolicy,
    Task,
    classify_error,
)
from repro.engine.table import Table

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))

#: a policy that retries fast and never really sleeps
FAST = RetryPolicy(max_retries=3, base_delay=0.001, jitter=0.0,
                   sleep=lambda s: None)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="kind"):
            FaultSpec(target="B1", kind="explode")

    def test_empty_target_rejected(self):
        with pytest.raises(FaultError, match="target"):
            FaultSpec(target="", kind="transient")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(target="B1", kind="transient", probability=1.5)

    def test_truncate_needs_keep_or_rows(self):
        with pytest.raises(FaultError, match="truncate"):
            FaultSpec(target="src", kind="truncate")

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultError, match="delay"):
            FaultSpec(target="B1", kind="delay", delay=-1.0)

    def test_default_fire_limits(self):
        assert FaultSpec(target="B1", kind="transient").fire_limit == 1
        assert FaultSpec(target="B1", kind="permanent").fire_limit is None
        assert FaultSpec(target="B1", kind="transient", times=3).fire_limit == 3

    def test_glob_target(self):
        spec = FaultSpec(target="B*", kind="permanent")
        assert spec.matches("B1") and spec.matches("B17")
        assert not spec.matches("customers")

    def test_dict_round_trip(self):
        spec = FaultSpec(target="B2", kind="transient", times=2,
                         probability=0.5, message="flaky source")
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultError, match="unknown"):
            FaultSpec.from_dict({"target": "B1", "kind": "transient",
                                 "bogus": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(FaultError, match="missing"):
            FaultSpec.from_dict({"target": "B1"})


class TestDirtyFaultSpecs:
    def test_dirty_kind_needs_fraction_or_rows(self):
        for kind in ("corrupt-row", "type-flip", "null-burst"):
            with pytest.raises(FaultError, match="fraction"):
                FaultSpec(target="src", kind=kind)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(FaultError, match="fraction"):
            FaultSpec(target="src", kind="corrupt-row", fraction=1.5)
        with pytest.raises(FaultError, match="fraction"):
            FaultSpec(target="src", kind="null-burst", fraction=-0.1)

    def test_fraction_rejected_on_non_dirty_kinds(self):
        with pytest.raises(FaultError, match="fraction"):
            FaultSpec(target="B1", kind="transient", fraction=0.1)

    def test_column_rename_needs_column(self):
        with pytest.raises(FaultError, match="column"):
            FaultSpec(target="src", kind="column-rename")

    def test_rename_to_only_for_column_rename(self):
        with pytest.raises(FaultError, match="rename_to"):
            FaultSpec(target="src", kind="null-burst", rows=1,
                      rename_to="x")

    def test_dirty_dict_round_trip(self):
        specs = (
            FaultSpec(target="Trade", kind="corrupt-row", fraction=0.01),
            FaultSpec(target="DimAccount", kind="null-burst", rows=3,
                      column="account_id"),
            FaultSpec(target="DimSecurity", kind="type-flip", fraction=0.5),
            FaultSpec(target="DimDate", kind="column-rename",
                      column="year_id", rename_to="yr"),
        )
        for spec in specs:
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_injection_is_deterministic_and_tracked(self):
        table = Table.wrap({"id": list(range(100)), "v": list(range(100))})
        plan = FaultPlan(
            (FaultSpec(target="src", kind="null-burst", fraction=0.1),),
            seed=CHAOS_SEED,
        )
        first = plan.injector()
        poisoned = first.apply_sources({"src": table})
        victims = first.dirty_rows["src"]
        assert victims and len(victims) == 10
        # same seed, fresh injector: identical victim set and values
        second = plan.injector()
        again = second.apply_sources({"src": table})
        assert second.dirty_rows["src"] == victims
        assert list(again["src"].rows()) == list(poisoned["src"].rows())
        # the untouched original is untouched
        assert None not in set(table.column("v"))

    def test_rename_of_missing_column_is_a_noop(self):
        # glob targets may span heterogeneous schemas; a rename that finds
        # nothing to rename silently passes the table through
        table = Table.wrap({"id": [1, 2]})
        inj = FaultPlan(
            (FaultSpec(target="src", kind="column-rename",
                       column="ghost", rename_to="boo"),),
            seed=CHAOS_SEED,
        ).injector()
        out = inj.apply_sources({"src": table})
        assert out["src"].attrs == ("id",)


class TestFaultPlan:
    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(target="B1", kind="transient"),
                FaultSpec(target="customers", kind="truncate", keep=0.5),
            ),
            seed=CHAOS_SEED,
        )
        path = tmp_path / "faults.json"
        plan.save(path)
        assert FaultPlan.from_file(path) == plan

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read"):
            FaultPlan.from_file(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(FaultError, match="JSON"):
            FaultPlan.from_file(path)

    def test_as_injector_normalizes(self):
        plan = FaultPlan()
        injector = plan.injector()
        assert as_injector(None) is None
        assert as_injector(injector) is injector
        assert as_injector(plan).plan is plan
        with pytest.raises(FaultError):
            as_injector("not a plan")


class TestFaultInjector:
    def test_transient_fires_once_by_default(self):
        inj = FaultPlan((FaultSpec(target="B1", kind="transient"),)).injector()
        with pytest.raises(TransientFault):
            inj.on_attempt("B1", ("B1",))
        inj.on_attempt("B1", ("B1",))  # second attempt is clean
        assert inj.fired() == 1

    def test_permanent_fires_on_every_attempt(self):
        inj = FaultPlan((FaultSpec(target="B1", kind="permanent"),)).injector()
        for _ in range(3):
            with pytest.raises(PermanentFault):
                inj.on_attempt("B1", ("B1",))
        assert inj.fired() == 3

    def test_times_bounds_firings(self):
        inj = FaultPlan(
            (FaultSpec(target="B1", kind="transient", times=2),)
        ).injector()
        for _ in range(2):
            with pytest.raises(TransientFault):
                inj.on_attempt("B1", ("B1",))
        inj.on_attempt("B1", ("B1",))

    def test_source_fault_fires_in_consuming_block(self):
        """A fault on a source surfaces as a load error in its reader."""
        inj = FaultPlan(
            (FaultSpec(target="customers", kind="permanent"),)
        ).injector()
        inj.on_attempt("B1", ("B1", "orders"))  # does not read customers
        with pytest.raises(PermanentFault, match="customers"):
            inj.on_attempt("B2", ("B2", "customers"))

    def test_per_task_budgets_are_independent(self):
        inj = FaultPlan((FaultSpec(target="B*", kind="transient"),)).injector()
        with pytest.raises(TransientFault):
            inj.on_attempt("B1", ("B1",))
        with pytest.raises(TransientFault):
            inj.on_attempt("B2", ("B2",))

    def test_truncate_keep_fraction(self):
        inj = FaultPlan(
            (FaultSpec(target="customers", kind="truncate", keep=0.5),)
        ).injector()
        sources = {"customers": Table({"id": list(range(10))}),
                   "orders": Table({"id": list(range(4))})}
        out = inj.apply_sources(sources)
        assert out["customers"].num_rows == 5
        assert out["orders"].num_rows == 4  # untouched
        assert sources["customers"].num_rows == 10  # input not mutated

    def test_truncate_absolute_rows(self):
        inj = FaultPlan(
            (FaultSpec(target="customers", kind="truncate", rows=3),)
        ).injector()
        out = inj.apply_sources({"customers": Table({"id": list(range(10))})})
        assert out["customers"].num_rows == 3

    def test_probabilistic_faults_are_seed_deterministic(self):
        plan = FaultPlan(
            (FaultSpec(target="B1", kind="transient", times=100,
                       probability=0.5),),
            seed=CHAOS_SEED,
        )

        def outcomes():
            inj = plan.injector()
            fired = []
            for _ in range(30):
                try:
                    inj.on_attempt("B1", ("B1",))
                    fired.append(False)
                except TransientFault:
                    fired.append(True)
            return fired

        first, second = outcomes(), outcomes()
        assert first == second
        assert any(first) and not all(first)  # p=0.5 actually gates

    def test_delay_fault_pauses_the_attempt(self):
        inj = FaultPlan(
            (FaultSpec(target="B1", kind="delay", delay=0.05, times=1),)
        ).injector()
        t0 = time.perf_counter()
        inj.on_attempt("B1", ("B1",))
        assert time.perf_counter() - t0 >= 0.05
        t0 = time.perf_counter()
        inj.on_attempt("B1", ("B1",))  # budget spent: no pause
        assert time.perf_counter() - t0 < 0.05


class TestClassifyError:
    @pytest.mark.parametrize(
        ("exc", "expected"),
        [
            (TransientFault("x"), "transient"),
            (PermanentFault("x"), "permanent"),
            (BlockTimeout("x"), "transient"),
            (TimeoutError("x"), "transient"),
            (ConnectionError("x"), "transient"),
            (ValueError("bad data"), "permanent"),
            (KeyError("missing"), "permanent"),
        ],
    )
    def test_triage(self, exc, expected):
        assert classify_error(exc) == expected


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        rng = policy.rng_for("B1")
        delays = [policy.backoff(i, rng) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_per_task(self):
        policy = RetryPolicy(jitter=0.5, seed=CHAOS_SEED)
        a = [policy.backoff(i, policy.rng_for("B1")) for i in range(3)]
        b = [policy.backoff(i, policy.rng_for("B1")) for i in range(3)]
        assert a == b
        assert a != [policy.backoff(i, policy.rng_for("B2")) for i in range(3)]


def _task(name, requires, provides, fn):
    return Task(name=name, provides=provides, requires=tuple(requires), fn=fn)


@pytest.mark.parametrize("workers", [1, 3])
class TestSchedulerRetries:
    def test_transient_failures_are_retried_to_success(self, workers):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("still warming up")

        result = ParallelScheduler(workers).execute(
            [_task("a", ["s"], "a", flaky)], available=["s"], policy=FAST
        )
        assert result.ok and result.completed == ["a"]
        assert len(calls) == 3

    def test_permanent_failure_is_not_retried(self, workers):
        calls = []

        def broken():
            calls.append(1)
            raise PermanentFault("schema break")

        result = ParallelScheduler(workers).execute(
            [_task("a", ["s"], "a", broken)], available=["s"], policy=FAST
        )
        failure = result.failures["a"]
        assert failure.kind == "permanent" and failure.attempts == 1
        assert failure.error_type == "PermanentFault"
        assert len(calls) == 1

    def test_exhausted_retry_budget_records_transient(self, workers):
        def always_flaky():
            raise TransientFault("never recovers")

        result = ParallelScheduler(workers).execute(
            [_task("a", ["s"], "a", always_flaky)], available=["s"],
            policy=FAST,
        )
        failure = result.failures["a"]
        assert failure.kind == "transient"
        assert failure.attempts == FAST.max_retries + 1

    def test_timeout_is_classified_and_retryable(self, workers):
        policy = RetryPolicy(max_retries=1, block_timeout=0.05,
                             base_delay=0.001, jitter=0.0,
                             sleep=lambda s: None)
        started = []

        def hang():
            started.append(1)
            time.sleep(30)

        result = ParallelScheduler(workers).execute(
            [_task("a", ["s"], "a", hang)], available=["s"], policy=policy
        )
        failure = result.failures["a"]
        assert failure.kind == "timeout" and failure.attempts == 2
        assert len(started) == 2
        assert "deadline" in failure.error

    def test_dependents_of_a_failure_are_skipped(self, workers):
        log = []

        def boom():
            raise PermanentFault("dead")

        tasks = [
            _task("a", ["s"], "a", boom),
            _task("b", ["a"], "b", lambda: log.append("b")),
            _task("c", ["b"], "c", lambda: log.append("c")),
            _task("x", ["s"], "x", lambda: log.append("x")),
        ]
        result = ParallelScheduler(workers).execute(
            tasks, available=["s"], policy=FAST
        )
        assert set(result.failures) == {"a", "b", "c"}
        assert result.failures["b"].kind == "skipped"
        assert result.failures["b"].missing == ("a",)
        assert result.failures["c"].kind == "skipped"
        assert log == ["x"]  # the independent branch still ran
        assert "skipped" in result.failures["b"].describe()

    def test_without_policy_exceptions_propagate(self, workers):
        def boom():
            raise PermanentFault("dead")

        with pytest.raises(PermanentFault):
            ParallelScheduler(workers).execute(
                [_task("a", ["s"], "a", boom)], available=["s"]
            )

    def test_injector_wrapped_tasks_survive_with_one_retry(self, workers):
        inj = FaultPlan(
            (FaultSpec(target="ta", kind="transient"),), seed=CHAOS_SEED
        ).injector()
        done = []
        tasks = inj.wrap_tasks([
            _task("ta", ["s"], "a", lambda: done.append("a")),
            _task("tb", ["a"], "b", lambda: done.append("b")),
        ])
        result = ParallelScheduler(workers).execute(
            tasks, available=["s"], policy=FAST
        )
        assert result.ok and sorted(done) == ["a", "b"]
        assert inj.fired() == 1


def test_backoff_sleeps_between_attempts():
    slept = []
    policy = RetryPolicy(max_retries=2, base_delay=0.1, jitter=0.0,
                         sleep=slept.append)

    def always_flaky():
        raise TransientFault("no luck")

    ParallelScheduler(1).execute(
        [_task("a", ["s"], "a", always_flaky)], available=["s"], policy=policy
    )
    assert slept == pytest.approx([0.1, 0.2])


def test_concurrent_faulty_blocks_fire_deterministically():
    """Interleaving must not change which faults fire for which task."""
    plan = FaultPlan(
        (FaultSpec(target="B*", kind="transient", times=1),), seed=CHAOS_SEED
    )

    def run(workers):
        inj = plan.injector()
        tasks = inj.wrap_tasks([
            _task(f"B{i}", ["s"], f"B{i}.out", lambda: None) for i in range(6)
        ])
        result = ParallelScheduler(workers).execute(
            tasks, available=["s"], policy=FAST
        )
        assert result.ok
        return sorted((e.task, e.kind, e.attempt) for e in inj.events)

    assert run(1) == run(4)
