"""Integration tests: executing analyzed workflows with instrumentation."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Predicate,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.plans import JoinNode, Leaf
from repro.algebra.schema import Catalog
from repro.core.statistics import Statistic
from repro.engine.executor import Executor
from repro.engine.instrumentation import InstrumentationError, TapSet
from repro.engine.table import Table, TableError

SE = SubExpression.of


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_relation("O", {"pid": 5, "cid": 5, "oid": 100})
    cat.add_relation("P", {"pid": 5, "pname": 10})
    cat.add_relation("C", {"cid": 5, "cname": 10})
    o, p, c = Source(cat, "O"), Source(cat, "P"), Source(cat, "C")
    wf = Workflow(
        "w", cat, [Target(Join(Join(o, p, "pid"), c, "cid"), "out")]
    )
    sources = {
        "O": Table({"pid": [1, 1, 2, 3], "cid": [1, 2, 2, 4], "oid": [1, 2, 3, 4]}),
        "P": Table({"pid": [1, 2, 2], "pname": [7, 8, 9]}),
        "C": Table({"cid": [2, 4], "cname": [5, 6]}),
    }
    return analyze(wf), sources


class TestExecution:
    def test_initial_plan_produces_target(self, setup):
        analysis, sources = setup
        run = Executor(analysis).run(sources)
        # brute force: O|x|P on pid then |x|C on cid
        expected = 0
        for pid, cid in zip(sources["O"].column("pid"), sources["O"].column("cid")):
            p_matches = sum(1 for v in sources["P"].column("pid") if v == pid)
            c_matches = sum(1 for v in sources["C"].column("cid") if v == cid)
            expected += p_matches * c_matches
        assert run.target("out").num_rows == expected

    def test_se_sizes_recorded_for_plan_points(self, setup):
        analysis, sources = setup
        run = Executor(analysis).run(sources)
        assert run.se_sizes[SE("O")] == 4
        assert SE("O", "P") in run.se_sizes
        assert SE("C", "O", "P") in run.se_sizes
        assert SE("C", "O") not in run.se_sizes  # not in the initial plan

    def test_reordered_plan_same_target(self, setup):
        analysis, sources = setup
        block = analysis.blocks[0]
        reordered = JoinNode(
            JoinNode(Leaf("O"), Leaf("C"), ("cid",)), Leaf("P"), ("pid",)
        )
        base = Executor(analysis).run(sources)
        alt = Executor(analysis).run(sources, trees={block.name: reordered})
        assert (
            sorted(alt.target("out").rows(sorted(alt.target("out").attrs)))
            == sorted(base.target("out").rows(sorted(base.target("out").attrs)))
        )
        assert SE("C", "O") in alt.se_sizes

    def test_tree_must_cover_inputs(self, setup):
        analysis, sources = setup
        block = analysis.blocks[0]
        bad = JoinNode(Leaf("O"), Leaf("P"), ("pid",))
        with pytest.raises(TableError):
            Executor(analysis).run(sources, trees={block.name: bad})

    def test_missing_source_rejected(self, setup):
        analysis, sources = setup
        del sources["C"]
        with pytest.raises(TableError, match="missing source"):
            Executor(analysis).run(sources)

    def test_taps_observe_requested_stats(self, setup):
        analysis, sources = setup
        taps = TapSet(
            [
                Statistic.card(SE("O", "P")),
                Statistic.hist(SE("O"), "cid"),
                Statistic.hist(SE("C"), "cid"),
            ]
        )
        run = Executor(analysis).run(sources, taps=taps)
        assert taps.missing() == []
        assert run.observations.cardinality(SE("O", "P")) == run.se_sizes[SE("O", "P")]
        hist = run.observations.get(Statistic.hist(SE("O"), "cid"))
        assert hist.total() == 4

    def test_instrumentation_reject_link_added(self, setup):
        """A reject-link statistic forces the executor to produce the
        reject output even though the workflow never materialized it."""
        analysis, sources = setup
        rej = RejectSE(SE("O"), "pid", SE("P"))
        taps = TapSet([Statistic.card(rej), Statistic.hist(rej, "cid")])
        run = Executor(analysis).run(sources, taps=taps)
        assert taps.missing() == []
        # O rows with pid=3 never join P
        assert run.observations.get(Statistic.card(rej)) == 1
        assert rej in run.rejects

    def test_reject_join_statistic_rejected_by_taps(self, setup):
        from repro.algebra.expressions import RejectJoinSE

        rej = RejectSE(SE("O"), "pid", SE("P"))
        rj = RejectJoinSE(rej, "cid", SE("C"))
        with pytest.raises(InstrumentationError):
            TapSet([Statistic.card(rj)])

    def test_histogram_on_missing_attr_fails_loudly(self, setup):
        analysis, sources = setup
        taps = TapSet([Statistic.hist(SE("P"), "cid")])  # P has no cid
        with pytest.raises(InstrumentationError, match="not live"):
            Executor(analysis).run(sources, taps=taps)


class TestBoundariesExecution:
    def test_pinned_join_with_reject_and_downstream_block(self):
        cat = Catalog()
        cat.add_relation("A", {"k": 5, "g": 4})
        cat.add_relation("B", {"k": 5})
        cat.add_relation("D", {"g": 4, "w": 9})
        a, b, d = Source(cat, "A"), Source(cat, "B"), Source(cat, "D")
        pinned = Join(a, b, "k", reject_left=True)
        wf = Workflow("w", cat, [Target(Join(pinned, d, "g"), "out")])
        analysis = analyze(wf)
        sources = {
            "A": Table({"k": [1, 2, 9], "g": [1, 1, 2]}),
            "B": Table({"k": [1, 2, 3]}),
            "D": Table({"g": [1, 3], "w": [10, 30]}),
        }
        run = Executor(analysis).run(sources)
        # pinned join drops k=9, downstream join keeps g=1 rows (2 of them)
        assert run.target("out").num_rows == 2
        # the materialized reject was produced
        assert any(r.source == SE("A") for r in run.rejects)

    def test_aggregate_boundary_and_downstream_join(self):
        cat = Catalog()
        cat.add_relation("T", {"g": 4, "v": 50})
        cat.add_relation("R", {"g": 4, "w": 9})
        t, r = Source(cat, "T"), Source(cat, "R")
        agg = Aggregate(t, ("g",), {"n": ("count", "v")})
        wf = Workflow("w", cat, [Target(Join(agg, r, "g"), "out")])
        analysis = analyze(wf)
        sources = {
            "T": Table({"g": [1, 1, 2], "v": [5, 6, 7]}),
            "R": Table({"g": [1, 2, 3], "w": [10, 20, 30]}),
        }
        run = Executor(analysis).run(sources)
        out = run.target("out")
        assert out.num_rows == 2
        rows = {row[0]: row for row in out.rows(("g", "n", "w"))}
        assert rows[1] == (1, 2, 10)
        assert rows[2] == (2, 1, 20)

    def test_aggregate_udf_boundary(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 5})
        def dedupe(rows):
            return [dict(t) for t in sorted({tuple(r.items()) for r in rows})]

        flow = AggregateUDF(Source(cat, "T"), "dedupe", dedupe)
        wf = Workflow("w", cat, [Target(flow, "out")])
        run = Executor(analyze(wf)).run({"T": Table({"a": [1, 1, 2]})})
        assert run.target("out").num_rows == 2

    def test_materialize_passthrough(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 5})
        flow = Materialize(Source(cat, "T"), "snap")
        wf = Workflow("w", cat, [Target(flow, "out")])
        run = Executor(analyze(wf)).run({"T": Table({"a": [1, 2]})})
        assert run.target("out").num_rows == 2

    def test_sealed_block_post_transform_applied(self):
        """Figure 3 B2: the UDF deriving a downstream join key runs as a
        post-step of the sealed block."""
        cat = Catalog()
        cat.add_relation("A", {"x": 5, "a": 9})
        cat.add_relation("B", {"x": 5, "b": 9})
        cat.add_relation("Cc", {"c": 30})
        u = Transform(
            Join(Source(cat, "A"), Source(cat, "B"), "x"),
            ("a", "b"),
            UdfSpec("mk", lambda vs: vs[0] + vs[1]),
            output_attr="c",
        )
        wf = Workflow("w", cat, [Target(Join(u, Source(cat, "Cc"), "c"), "out")])
        analysis = analyze(wf)
        sources = {
            "A": Table({"x": [1, 2], "a": [3, 4]}),
            "B": Table({"x": [1, 2], "b": [5, 6]}),
            "Cc": Table({"c": [8, 10, 11]}),
        }
        run = Executor(analysis).run(sources)
        # derived c values: 3+5=8, 4+6=10 -> both match Cc
        assert run.target("out").num_rows == 2

    def test_filter_pushdown_preserves_semantics(self):
        cat = Catalog()
        cat.add_relation("A", {"k": 5, "v": 9})
        cat.add_relation("B", {"k": 5})
        flow = Filter(
            Join(Source(cat, "A"), Source(cat, "B"), "k"),
            "v",
            Predicate("big", lambda v: v >= 5),
        )
        wf = Workflow("w", cat, [Target(flow, "out")])
        sources = {
            "A": Table({"k": [1, 2, 3], "v": [4, 5, 6]}),
            "B": Table({"k": [1, 2]}),
        }
        run = Executor(analyze(wf)).run(sources)
        assert run.target("out").num_rows == 1  # k=2,v=5 only
