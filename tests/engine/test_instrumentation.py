"""Unit tests for the tap set (plan instrumentation)."""

import pytest

from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.core.statistics import Statistic
from repro.engine.instrumentation import InstrumentationError, TapSet
from repro.engine.table import Table

SE = SubExpression.of


class TestTapSet:
    def test_counter(self):
        taps = TapSet([Statistic.card(SE("T"))])
        taps.observe(SE("T"), Table({"a": [1, 2, 3]}))
        assert taps.store.get(Statistic.card(SE("T"))) == 3

    def test_histogram(self):
        stat = Statistic.hist(SE("T"), "a")
        taps = TapSet([stat])
        taps.observe(SE("T"), Table({"a": [1, 1, 2]}))
        assert taps.store.get(stat).frequency(1) == 2

    def test_distinct(self):
        stat = Statistic.distinct(SE("T"), "a")
        taps = TapSet([stat])
        taps.observe(SE("T"), Table({"a": [1, 1, 2]}))
        assert taps.store.get(stat) == 2

    def test_multiple_stats_one_point(self):
        stats = [
            Statistic.card(SE("T")),
            Statistic.hist(SE("T"), "a"),
            Statistic.distinct(SE("T"), "a"),
        ]
        taps = TapSet(stats)
        taps.observe(SE("T"), Table({"a": [1, 2]}))
        assert taps.missing() == []

    def test_unobserved_points_ignored(self):
        taps = TapSet([Statistic.card(SE("T"))])
        taps.observe(SE("Other"), Table({"a": [1]}))
        assert taps.missing() == [Statistic.card(SE("T"))]
        assert not taps.wants(SE("Other"))

    def test_reject_requests(self):
        rej = RejectSE(SE("T"), "k", SE("R"))
        taps = TapSet([Statistic.card(rej), Statistic.card(SE("T"))])
        assert taps.reject_requests() == {rej}

    def test_reject_join_rejected(self):
        rej = RejectSE(SE("T"), "k", SE("R"))
        rj = RejectJoinSE(rej, "m", SE("S"))
        with pytest.raises(InstrumentationError, match="never observable"):
            TapSet([Statistic.hist(rj, "m")])

    def test_histogram_missing_attr_fails(self):
        stat = Statistic.hist(SE("T"), "z")
        taps = TapSet([stat])
        with pytest.raises(InstrumentationError, match="not live"):
            taps.observe(SE("T"), Table({"a": [1]}))

    def test_requested_lists_everything(self):
        stats = [Statistic.card(SE("T")), Statistic.card(SE("R"))]
        taps = TapSet(stats)
        assert sorted(map(repr, taps.requested)) == sorted(map(repr, stats))
