"""Plan compilation: lowering, fused execution, and the signature cache.

The compiled path's contract is *interpreter equivalence*: same targets,
same SE sizes, same tapped statistics, same reject rows -- on every
backend, chunked or whole-column.  On top of that this file pins the
cache behaviour: warm runs hit, plan changes miss, schema drift and
contract changes invalidate instead of silently reusing stale programs.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.engine.compile import (
    ChainIR,
    CompiledProfile,
    JoinIR,
    PlanCache,
    block_source_deps,
    compile_blocks,
    lower_block,
)
from repro.engine.instrumentation import TapSet
from repro.engine.streaming import StreamingBackend, StreamingTaps
from repro.engine.table import Table
from repro.workloads import case

SCALE, SEED = 0.06, 23


def _setup(number):
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_greedy(build_problem(catalog, CostModel(workflow.catalog)))
    sources = wfcase.tables(scale=SCALE, seed=SEED)
    return analysis, selection, sources


def _floating_workflow():
    """Join + cross-input transform + pinned join: keeps a FloatingOp."""
    from repro.algebra.operators import (
        Join,
        Source,
        Target,
        Transform,
        UdfSpec,
        Workflow,
    )
    from repro.algebra.schema import Catalog

    cat = Catalog()
    cat.add_relation("O", {"pid": 5, "cid": 5, "amt": 100})
    cat.add_relation("P", {"pid": 5, "weight": 10})
    cat.add_relation("C", {"cid": 5, "cname": 10})
    o, p, c = Source(cat, "O"), Source(cat, "P"), Source(cat, "C")
    spanning = Transform(
        Join(o, p, "pid"),
        ("amt", "weight"),
        UdfSpec("scale", lambda vals: vals[0] * vals[1]),
        output_attr="scaled",
    )
    pinned = Join(spanning, c, "cid", reject_left=True)
    workflow = Workflow("float_wf", cat, [Target(pinned, "out")])
    sources = {
        "O": Table(
            {"pid": [1, 1, 2, 3], "cid": [1, 2, 2, 9], "amt": [10, 20, 30, 40]}
        ),
        "P": Table({"pid": [1, 2, 2, 3], "weight": [7, 8, 9, 1]}),
        "C": Table({"cid": [1, 2, 4], "cname": [5, 6, 7]}),
    }
    return analyze(workflow), sources


def _assert_equal_runs(run, ref, selection, label=""):
    assert set(run.targets) == set(ref.targets), label
    for name, table in ref.targets.items():
        other = run.targets[name]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (label, name)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            label,
            name,
        )
    assert run.se_sizes == ref.se_sizes, label
    for stat in selection.observed:
        assert run.observations.maybe(stat) == ref.observations.get(stat), (
            label,
            stat,
        )
    assert set(run.rejects) == set(ref.rejects), label
    for rej, table in ref.rejects.items():
        other = run.rejects[rej]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (label, rej)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            label,
            rej,
        )


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------
class TestLowering:
    def test_chain_mirrors_stage_names(self):
        analysis, _, _ = _setup(21)
        for block in analysis.blocks:
            program = lower_block(block, block.initial_tree)
            chains = {}

            def collect(node):
                if isinstance(node, ChainIR):
                    chains[node.input_name] = node
                else:
                    collect(node.left)
                    collect(node.right)

            collect(program.root)
            assert set(chains) == set(block.inputs)
            for name, inp in block.inputs.items():
                chain = chains[name]
                stages = inp.stage_names()
                assert chain.base_name == inp.base_name
                assert chain.raw_se == SubExpression.of(stages[0])
                assert [s.se for s in chain.steps] == [
                    SubExpression.of(n) for n in stages[1:]
                ]
                # operator callables are pre-resolved at compile time
                for fused, step in zip(chain.steps, inp.steps):
                    assert fused.kind == step.kind
                    if step.kind != "project":
                        assert callable(fused.fn)

    def test_floating_ops_are_placed_and_execute_identically(self):
        # floating ops only survive into a Block when a cross-input
        # transform feeds a pinned (materialized-reject) join; build one
        analysis, sources = _floating_workflow()
        block = next(b for b in analysis.blocks if b.floating)
        program = lower_block(block, block.initial_tree)
        placed = 0

        def count(node):
            nonlocal placed
            if isinstance(node, JoinIR):
                placed += len(node.floating)
                count(node.left)
                count(node.right)

        count(program.root)
        assert placed == len(block.floating) > 0

        for backend in ("columnar", "streaming", "vectorized"):
            ref = BackendExecutor(analysis, backend, compile_plans=False).run(
                sources
            )
            run = BackendExecutor(analysis, backend, compile_plans=True).run(
                sources
            )
            t, u = ref.target("out"), run.target("out")
            attrs = sorted(t.attrs)
            assert sorted(u.rows(attrs)) == sorted(t.rows(attrs)), backend
            assert run.se_sizes == ref.se_sizes, backend
            assert set(run.rejects) == set(ref.rejects), backend
            for rej, table in ref.rejects.items():
                assert table.num_rows > 0  # the reject path actually fires
                rattrs = sorted(table.attrs)
                assert sorted(run.rejects[rej].rows(rattrs)) == sorted(
                    table.rows(rattrs)
                ), backend

    def test_post_steps_carry_their_stage_ses(self):
        analysis, _, _ = _setup(21)
        for block in analysis.blocks:
            program = lower_block(block, block.initial_tree)
            assert [s.se for s in program.post] == block.post_stage_ses()

    def test_source_deps_walk_through_upstream_blocks(self):
        analysis, _, _ = _setup(21)
        sources = set(analysis.workflow.source_names())
        union = set()
        for block in analysis.blocks:
            deps = block_source_deps(analysis, block)
            assert deps, block.name
            assert deps <= sources, block.name
            union |= deps
        assert union == sources


# ---------------------------------------------------------------------------
# compiled-vs-interpreted equivalence (incl. reject links and taps)
# ---------------------------------------------------------------------------
class TestCompiledEquivalence:
    @pytest.mark.parametrize("backend_name", ["columnar", "streaming", "vectorized"])
    def test_matches_interpreter_with_taps_and_rejects(self, backend_name):
        analysis, selection, sources = _setup(21)
        rb = get_backend(backend_name)
        ref = BackendExecutor(analysis, rb, compile_plans=False).run(
            sources, taps=rb.make_taps(selection.observed)
        )
        b = get_backend(backend_name)
        run = BackendExecutor(analysis, b, compile_plans=True).run(
            sources, taps=b.make_taps(selection.observed)
        )
        _assert_equal_runs(run, ref, selection, backend_name)

    def test_chunked_equals_whole_column(self):
        analysis, selection, sources = _setup(9)

        class TinyChunks(StreamingBackend):
            def compiled_profile(self):
                return CompiledProfile(
                    chunk_rows=5, gather="auto", canonical_output=True
                )

        rb = get_backend("streaming")
        ref = BackendExecutor(analysis, rb, compile_plans=True).run(
            sources, taps=rb.make_taps(selection.observed)
        )
        b = TinyChunks()
        run = BackendExecutor(analysis, b, workers=4, compile_plans=True).run(
            sources, taps=b.make_taps(selection.observed)
        )
        _assert_equal_runs(run, ref, selection, "chunked")

    def test_pure_python_rung_matches_auto(self):
        analysis, selection, sources = _setup(9)

        class PinnedPython(StreamingBackend):
            def compiled_profile(self):
                return CompiledProfile(
                    chunk_rows=64, gather="python", canonical_output=True
                )

        rb = get_backend("streaming")
        ref = BackendExecutor(analysis, rb, compile_plans=False).run(
            sources, taps=rb.make_taps(selection.observed)
        )
        b = PinnedPython()
        run = BackendExecutor(analysis, b, compile_plans=True).run(
            sources, taps=b.make_taps(selection.observed)
        )
        _assert_equal_runs(run, ref, selection, "python-rung")

    def test_repro_compile_env_disables_compilation(self, monkeypatch):
        analysis, _, sources = _setup(1)
        monkeypatch.setenv("REPRO_COMPILE", "0")
        ex = BackendExecutor(analysis, "vectorized")
        ex.run(sources)
        assert ex.plan_cache is None  # compiled path never engaged
        monkeypatch.setenv("REPRO_COMPILE", "1")
        ex.run(sources)
        assert ex.plan_cache is not None and len(ex.plan_cache) > 0


# ---------------------------------------------------------------------------
# the plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_warm_compile_is_all_hits(self):
        analysis, _, _ = _setup(21)
        cache = PlanCache()
        cold = compile_blocks(analysis, backend="columnar", cache=cache)
        assert cold.cache_misses == len(analysis.blocks)
        assert cold.cache_hits == 0
        warm = compile_blocks(analysis, backend="columnar", cache=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == len(analysis.blocks)

    def test_plan_change_is_a_miss_not_a_stale_hit(self):
        analysis, _, _ = _setup(9)
        block = next(b for b in analysis.blocks if len(b.inputs) >= 3)
        trees = [
            t
            for t in block.graph.enumerate_trees(limit=8)
            if repr(t) != repr(block.initial_tree)
        ]
        assert trees
        cache = PlanCache()
        compile_blocks(analysis, backend="columnar", cache=cache)
        replan = compile_blocks(
            analysis, {block.name: trees[0]}, backend="columnar", cache=cache
        )
        assert replan.cache_misses == 1
        assert replan.cache_hits == len(analysis.blocks) - 1

    def test_backend_and_chunking_key_separately(self):
        analysis, _, _ = _setup(1)
        cache = PlanCache()
        compile_blocks(analysis, backend="columnar", cache=cache)
        other = compile_blocks(
            analysis,
            backend="streaming",
            profile=CompiledProfile(chunk_rows=2048, canonical_output=True),
            cache=cache,
        )
        assert other.cache_hits == 0

    def test_invalidate_source_drops_downstream_programs(self):
        analysis, _, _ = _setup(25)  # chained blocks: deps are transitive
        cache = PlanCache()
        compile_blocks(analysis, backend="columnar", cache=cache)
        size = len(cache)
        source = sorted(analysis.workflow.source_names())[0]
        fed = sum(
            1
            for b in analysis.blocks
            if source in block_source_deps(analysis, b)
        )
        assert fed > 0
        dropped = cache.invalidate_source(source)
        assert dropped == fed
        assert len(cache) == size - dropped
        assert cache.invalidations == dropped

    def test_lru_eviction_is_bounded(self):
        analysis, _, _ = _setup(25)  # three blocks
        cache = PlanCache(capacity=2)
        compile_blocks(analysis, backend="columnar", cache=cache)
        assert len(cache) == 2
        again = compile_blocks(analysis, backend="columnar", cache=cache)
        # with capacity below the block count a full recompile cannot be
        # all hits, but the cache never grows past its bound
        assert len(cache) == 2
        assert again.cache_misses > 0


# ---------------------------------------------------------------------------
# stale-cache regression: schema drift and contract changes
# ---------------------------------------------------------------------------
class TestStaleCacheInvalidation:
    def test_schema_drift_evicts_instead_of_reusing(self):
        analysis, selection, sources = _setup(25)
        from repro.engine.faults import FaultPlan, FaultSpec
        from repro.quality import ContractSet, QualityGate

        contracts = ContractSet.infer(sources)
        ex = BackendExecutor(analysis, "vectorized", compile_plans=True)
        ex.run(sources, quality=QualityGate(contracts=contracts))
        warm = len(ex.plan_cache)
        assert warm > 0
        assert ex.plan_cache.invalidations == 0

        # tonight's extract renames a column: the gate coerces it back
        # and reports drift -- the cached programs for every block fed by
        # that source must be evicted, not silently reused
        drifty = FaultPlan(
            (
                FaultSpec(
                    target="DimDate",
                    kind="column-rename",
                    column="month_id",
                    rename_to="month",
                ),
            ),
            seed=11,
        )
        rb = get_backend("vectorized")
        ref = BackendExecutor(analysis, rb, compile_plans=False).run(
            sources,
            taps=rb.make_taps(selection.observed),
            faults=drifty.injector(),
            quality=QualityGate(contracts=ContractSet.infer(sources)),
        )
        b = get_backend("vectorized")
        run = ex.run(
            sources,
            taps=b.make_taps(selection.observed),
            faults=drifty.injector(),
            quality=QualityGate(contracts=ContractSet.infer(sources)),
        )
        assert run.schema_drift  # the drift actually happened
        fed = sum(
            1
            for blk in analysis.blocks
            if "DimDate" in block_source_deps(analysis, blk)
        )
        assert ex.plan_cache.invalidations >= fed > 0
        # and the recompiled programs are correct on the drifted extract
        _assert_equal_runs(run, ref, selection, "post-drift")

    def test_contract_change_is_a_cache_miss(self):
        analysis, _, sources = _setup(25)
        from repro.quality import ContractSet, QualityGate

        contracts = ContractSet.infer(sources)
        cache = PlanCache()
        ex = BackendExecutor(
            analysis, "vectorized", compile_plans=True, plan_cache=cache
        )
        ex.run(sources, quality=QualityGate(contracts=contracts))
        misses_cold = cache.misses
        ex.run(sources, quality=QualityGate(contracts=contracts))
        assert cache.misses == misses_cold  # identical contracts: warm

        from dataclasses import replace as d_replace

        relaxed = ContractSet.from_dict(contracts.to_dict())
        target = relaxed.get("DimDate")
        assert target is not None
        flipped = d_replace(
            target.columns[0], nullable=not target.columns[0].nullable
        )
        relaxed.add(
            d_replace(target, columns=(flipped,) + target.columns[1:])
        )
        ex.run(sources, quality=QualityGate(contracts=relaxed))
        assert cache.misses > misses_cold  # revised contract: recompile


# ---------------------------------------------------------------------------
# column-batch tap protocol
# ---------------------------------------------------------------------------
class TestObserveColumns:
    def _stats(self):
        analysis, selection, sources = _setup(1)
        return selection.observed, analysis, sources

    def test_tapset_columns_equal_table_observation(self):
        stats, analysis, sources = self._stats()
        table = next(iter(sources.values()))
        by_table = TapSet(stats)
        by_columns = TapSet(stats)
        for stat in stats:
            se = stat.se
            by_table.observe(se, table)
            cols = {
                a: table.columns[a] for a in table.attrs
            }
            by_columns.observe_columns(se, table.num_rows, cols)
        for stat in stats:
            assert by_columns.store.get(stat) == by_table.store.get(stat)

    def test_streaming_columns_equal_row_observation(self):
        stats, analysis, sources = self._stats()
        table = next(iter(sources.values()))
        by_rows = StreamingTaps(stats)
        by_columns = StreamingTaps(stats)
        for stat in stats:
            se = stat.se
            for row in table.row_dicts():
                by_rows.observe_row(se, row)
            by_rows.mark_streamed(se)
            # two half batches: additive accumulators must add up
            half = table.num_rows // 2
            cols = dict(table.columns)
            by_columns.observe_columns(
                se, half, {a: c[:half] for a, c in cols.items()}
            )
            by_columns.observe_columns(
                se,
                table.num_rows - half,
                {a: c[half:] for a, c in cols.items()},
            )
            by_columns.mark_streamed(se)
        got = by_columns.collect()
        want = by_rows.collect()
        for stat in stats:
            assert got.get(stat) == want.get(stat)

    def test_missing_attr_raises_like_interpreter(self):
        from repro.core.statistics import StatKind, Statistic
        from repro.engine.instrumentation import InstrumentationError

        se = SubExpression.of("T")
        stat = Statistic(StatKind.HISTOGRAM, se, ("missing",))
        taps = TapSet([stat])
        with pytest.raises(InstrumentationError):
            taps.observe_columns(se, 3, {"present": [1, 2, 3]})
        staps = StreamingTaps([stat])
        with pytest.raises(InstrumentationError):
            staps.observe_columns(se, 3, {"present": [1, 2, 3]})


# ---------------------------------------------------------------------------
# compile phase in the trace
# ---------------------------------------------------------------------------
class TestCompileTrace:
    def test_compile_span_records_cache_traffic(self):
        from repro.obs import Tracer
        from repro.obs.render import render_trace

        analysis, _, sources = _setup(1)
        ex = BackendExecutor(analysis, "vectorized", compile_plans=True)
        tracer = Tracer()
        ex.run(sources, tracer=tracer)
        spans = tracer.root.find(name="compile")
        assert spans
        cold = spans[0]
        assert cold.attrs["cache_misses"] == len(analysis.blocks)
        assert cold.attrs["cache_hits"] == 0
        assert cold.attrs["fused_ops"] > 0

        warm_tracer = Tracer()
        ex.run(sources, tracer=warm_tracer)
        warm = warm_tracer.root.find(name="compile")[0]
        assert warm.attrs["cache_hits"] == len(analysis.blocks)
        assert warm.attrs["cache_misses"] == 0
        # trace show renders hit/miss even when one of them is zero
        text = render_trace(warm_tracer.root)
        assert "cache_hits=" in text and "cache_misses=0" in text

    def test_pipeline_surfaces_compile_span_under_execution(self):
        from repro.framework.pipeline import StatisticsPipeline
        from repro.obs import Tracer

        wfcase = case(1)
        pipeline = StatisticsPipeline(
            wfcase.build(), solver="greedy", backend="vectorized"
        )
        tracer = Tracer()
        pipeline.run_once(wfcase.tables(scale=SCALE, seed=SEED), tracer=tracer)
        spans = tracer.root.find(name="compile")
        assert spans and spans[0].duration is not None


# ---------------------------------------------------------------------------
# fused-operator cost factors
# ---------------------------------------------------------------------------
class TestCompiledCostFactors:
    def test_compiled_factors_are_cheaper_and_converge(self):
        from repro.estimation.physical import (
            BACKEND_COST_FACTORS,
            COMPILED_COST_FACTORS,
            PhysicalCostModel,
        )

        for backend, factors in COMPILED_COST_FACTORS.items():
            interp = BACKEND_COST_FACTORS[backend]
            for name, value in factors.items():
                assert value < interp[name], (backend, name)
        se = SubExpression.of("T")
        cards = {se: 1000.0}
        fast = PhysicalCostModel.for_backend("streaming", cards, compiled=True)
        slow = PhysicalCostModel.for_backend("streaming", cards)
        assert fast.hash_cost(100, 1000, 500) < slow.hash_cost(100, 1000, 500)

    def test_physical_plans_accept_compiled_flag(self):
        from repro.estimation.physical import physical_plans

        analysis, _, sources = _setup(9)  # a 3-way join block
        ex = BackendExecutor(analysis, "columnar", compile_plans=False)
        run = ex.run(sources)
        cards = {se: float(n) for se, n in run.se_sizes.items()}
        interp = physical_plans(analysis, cards, backend="streaming")
        fused = physical_plans(
            analysis, cards, backend="streaming", compiled=True
        )
        assert set(interp) == set(fused)
        for name in interp:
            assert fused[name].total_cost < interp[name].total_cost
