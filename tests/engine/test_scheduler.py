"""Unit tests for the block scheduler (waves, serial and parallel modes)."""

import threading

import pytest

from repro.engine.scheduler import (
    ParallelScheduler,
    SchedulerError,
    Task,
    topological_waves,
)


def make_task(name, requires, provides, log, lock):
    def fn():
        with lock:
            log.append(name)

    return Task(name=name, provides=provides, requires=tuple(requires), fn=fn)


def diamond(log, lock):
    """a -> (b, c) -> d over environment names s, a, b, c, d."""
    return [
        make_task("a", ["s"], "a", log, lock),
        make_task("b", ["a"], "b", log, lock),
        make_task("c", ["a"], "c", log, lock),
        make_task("d", ["b", "c"], "d", log, lock),
    ]


class TestTopologicalWaves:
    def test_diamond_waves(self):
        log, lock = [], threading.Lock()
        waves = topological_waves(diamond(log, lock), available=["s"])
        assert [[t.name for t in wave] for wave in waves] == [
            ["a"], ["b", "c"], ["d"]
        ]

    def test_independent_tasks_share_a_wave(self):
        log, lock = [], threading.Lock()
        tasks = [
            make_task("x", ["s"], "x", log, lock),
            make_task("y", ["s"], "y", log, lock),
        ]
        assert len(topological_waves(tasks, available=["s"])) == 1

    def test_missing_requirement_raises(self):
        log, lock = [], threading.Lock()
        tasks = [make_task("a", ["ghost"], "a", log, lock)]
        with pytest.raises(SchedulerError, match="ghost"):
            topological_waves(tasks)

    def test_cycle_raises(self):
        log, lock = [], threading.Lock()
        tasks = [
            make_task("a", ["b"], "a", log, lock),
            make_task("b", ["a"], "b", log, lock),
        ]
        with pytest.raises(SchedulerError):
            topological_waves(tasks)


class TestParallelScheduler:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_runs_every_task_once_in_dependency_order(self, workers):
        log, lock = [], threading.Lock()
        ParallelScheduler(workers).execute(diamond(log, lock), available=["s"])
        assert sorted(log) == ["a", "b", "c", "d"]
        assert log[0] == "a" and log[-1] == "d"

    @pytest.mark.parametrize("workers", [1, 3])
    def test_deadlock_raises(self, workers):
        log, lock = [], threading.Lock()
        tasks = [make_task("a", ["ghost"], "a", log, lock)]
        with pytest.raises(SchedulerError):
            ParallelScheduler(workers).execute(tasks)

    def test_worker_exceptions_propagate(self):
        def boom():
            raise ValueError("kernel failed")

        tasks = [Task("a", "a", ("s",), boom)]
        with pytest.raises(ValueError, match="kernel failed"):
            ParallelScheduler(2).execute(tasks, available=["s"])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelScheduler(0)

    def test_independent_tasks_overlap_with_two_workers(self):
        """Each task blocks until the *other* one has started: only a
        scheduler that truly runs independent tasks concurrently finishes."""
        started_x, started_y = threading.Event(), threading.Event()

        def run_x():
            started_x.set()
            assert started_y.wait(timeout=10.0)

        def run_y():
            started_y.set()
            assert started_x.wait(timeout=10.0)

        tasks = [
            Task("x", "x", ("s",), run_x),
            Task("y", "y", ("s",), run_y),
        ]
        ParallelScheduler(2).execute(tasks, available=["s"])
        assert started_x.is_set() and started_y.is_set()


class TestPoolExhaustion:
    """A shut-down worker pool surfaces as a structured RunFailure."""

    def _exhausted_pool(self, monkeypatch, reject_name):
        """Patch the scheduler's pool so submitting one task fails."""
        import repro.engine.scheduler as scheduler_module
        from concurrent.futures import ThreadPoolExecutor

        class FlakyPool(ThreadPoolExecutor):
            def submit(self, fn, task, *args, **kwargs):
                if getattr(task, "name", None) == reject_name:
                    raise RuntimeError(
                        "cannot schedule new futures after shutdown"
                    )
                return super().submit(fn, task, *args, **kwargs)

        monkeypatch.setattr(
            scheduler_module, "ThreadPoolExecutor", FlakyPool
        )

    def test_structured_failure_with_policy(self, monkeypatch):
        from repro.engine.scheduler import RetryPolicy

        self._exhausted_pool(monkeypatch, "b")
        log, lock = [], threading.Lock()
        result = ParallelScheduler(2).execute(
            diamond(log, lock),
            available=["s"],
            policy=RetryPolicy(),
        )
        failure = result.failures["b"]
        assert failure.kind == "pool-exhausted"
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 0
        # b's dependent is skipped, the healthy branch still ran
        assert result.failures["d"].kind == "skipped"
        assert "b" in result.failures["d"].missing
        assert sorted(log) == ["a", "c"]

    def test_raises_without_policy(self, monkeypatch):
        self._exhausted_pool(monkeypatch, "b")
        log, lock = [], threading.Lock()
        with pytest.raises(SchedulerError, match="rejected task 'b'"):
            ParallelScheduler(2).execute(diamond(log, lock), available=["s"])
