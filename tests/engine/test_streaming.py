"""Tests for the streaming (per-tuple) executor."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.executor import Executor
from repro.engine.instrumentation import InstrumentationError, TapSet
from repro.engine.streaming import StreamExecutor, StreamingTaps
from repro.estimation.estimator import CardinalityEstimator
from repro.workloads import case

SE = SubExpression.of

#: the structural variety of the suite in a few members
SAMPLE = [1, 5, 9, 13, 17, 22, 23, 25, 28]


@pytest.mark.parametrize("number", SAMPLE)
def test_streaming_matches_columnar(number):
    """Targets, SE sizes and every observed statistic agree exactly."""
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_greedy(build_problem(catalog, CostModel(workflow.catalog)))
    tables = wfcase.tables(scale=0.12, seed=7)

    columnar = Executor(analysis).run(tables, taps=TapSet(selection.observed))
    streaming = StreamExecutor(analysis).run(
        tables, taps=StreamingTaps(selection.observed)
    )

    assert set(columnar.targets) == set(streaming.targets)
    for name, table in columnar.targets.items():
        attrs = sorted(table.attrs)
        assert sorted(table.rows(attrs)) == sorted(
            streaming.targets[name].rows(attrs)
        )
    for se, size in columnar.se_sizes.items():
        assert streaming.se_sizes.get(se) == size, se
    for stat in selection.observed:
        assert streaming.observations.maybe(stat) == columnar.observations.get(
            stat
        ), stat


def test_streaming_estimates_are_exact():
    wfcase = case(13)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_greedy(build_problem(catalog, CostModel(workflow.catalog)))
    tables = wfcase.tables(scale=0.12, seed=9)
    run = StreamExecutor(analysis).run(
        tables, taps=StreamingTaps(selection.observed)
    )
    estimator = CardinalityEstimator(catalog, run.observations)
    from repro.engine.ground_truth import ground_truth_cardinalities

    truth = ground_truth_cardinalities(analysis, tables)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual)


def test_reordered_plan_supported():
    wfcase = case(9)
    analysis = analyze(wfcase.build())
    block = analysis.blocks[0]
    tables = wfcase.tables(scale=0.2, seed=3)
    alternative = block.graph.enumerate_trees()[1]
    base = StreamExecutor(analysis).run(tables)
    alt = StreamExecutor(analysis).run(tables, trees={block.name: alternative})
    t = next(iter(base.targets))
    attrs = sorted(base.targets[t].attrs)
    assert sorted(base.targets[t].rows(attrs)) == sorted(alt.targets[t].rows(attrs))


class TestStreamingTaps:
    def test_per_row_accumulation(self):
        stats = [
            Statistic.card(SE("T")),
            Statistic.hist(SE("T"), "a"),
            Statistic.distinct(SE("T"), "a"),
        ]
        taps = StreamingTaps(stats)
        for v in (1, 1, 2):
            taps.observe_row(SE("T"), {"a": v})
        # until the stream is marked complete the accumulators are
        # provisional: a block that died mid-stream reports nothing
        assert len(taps.collect()) == 0
        taps.mark_streamed(SE("T"))
        store = taps.collect()
        assert store.get(stats[0]) == 3
        assert store.get(stats[1]).frequency(1) == 2
        assert store.get(stats[2]) == 2

    def test_missing_attribute_fails_loudly(self):
        taps = StreamingTaps([Statistic.hist(SE("T"), "z")])
        with pytest.raises(InstrumentationError, match="not"):
            taps.observe_row(SE("T"), {"a": 1})

    def test_reject_join_rejected(self):
        rej = RejectSE(SE("T"), "k", SE("R"))
        rj = RejectJoinSE(rej, "m", SE("S"))
        with pytest.raises(InstrumentationError):
            StreamingTaps([Statistic.card(rj)])

    def test_reject_requests(self):
        rej = RejectSE(SE("T"), "k", SE("R"))
        taps = StreamingTaps([Statistic.hist(rej, "k")])
        assert taps.reject_requests() == {rej}
