"""Suite-wide cross-backend equivalence.

The :class:`~repro.engine.backend.ExecutionBackend` contract is that every
backend computes the *same workflow semantics* and surfaces the *same
observation points* (the paper's Section 3.2.5 premise that statistics
identification is engine-independent).  This pins it across all 30 suite
workflows: the columnar reference, the vectorized kernels, the streaming
executor, and the parallel block scheduler must produce identical targets,
identical SE sizes, and identical observed statistics for the
greedy-selected set.

Target rows are compared under a canonical (sorted) attribute order: the
streaming backend materializes targets from row dicts, so its column
*order* may differ while the content is identical.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.workloads import suite

#: (backend, scheduler width) variants checked against the serial columnar
#: reference -- covering the vectorized kernels, the per-tuple streaming
#: engine, the parallel scheduler on both materializing backends, and the
#: sharded multiprocess backend (where the second element is the shard
#: count; ``inline`` keeps this suite fork-free, the pool path is pinned
#: by tests/dist)
VARIANTS = [
    ("vectorized", 1),
    ("vectorized", 4),
    ("streaming", 2),
    ("columnar", 4),
    ("multiprocess", 2),
    ("multiprocess", 4),
]

SCALE, SEED = 0.06, 23


def _variant_backend(backend_name: str, workers: int):
    """``(backend instance, scheduler width)`` for one variant row."""
    if backend_name == "multiprocess":
        from repro.engine.dist import MultiprocessBackend

        backend = MultiprocessBackend(
            shards=workers,
            inline=True,
            factors={"min_shard_rows": 0},  # tiny test tables still shard
        )
        return backend, 1
    return get_backend(backend_name), workers


@pytest.fixture(scope="module")
def reference():
    """Per-workflow (analysis, selection, sources, columnar run), cached."""
    cache = {}

    def get(case):
        if case.number not in cache:
            workflow = case.build()
            analysis = analyze(workflow)
            catalog = generate_css(analysis)
            selection = solve_greedy(
                build_problem(catalog, CostModel(workflow.catalog))
            )
            sources = case.tables(scale=SCALE, seed=SEED)
            backend = get_backend("columnar")
            run = BackendExecutor(analysis, backend).run(
                sources, taps=backend.make_taps(selection.observed)
            )
            cache[case.number] = (analysis, selection, sources, run)
        return cache[case.number]

    return get


@pytest.mark.parametrize(
    "backend_name,workers", VARIANTS, ids=lambda v: str(v)
)
@pytest.mark.parametrize("case", suite(), ids=lambda c: f"wf{c.number:02d}")
def test_backend_matches_columnar(case, backend_name, workers, reference):
    analysis, selection, sources, ref = reference(case)
    backend, workers = _variant_backend(backend_name, workers)
    run = BackendExecutor(analysis, backend, workers=workers).run(
        sources, taps=backend.make_taps(selection.observed)
    )

    # identical targets (canonical attribute order)
    assert set(run.targets) == set(ref.targets)
    for name, table in ref.targets.items():
        other = run.targets[name]
        attrs = sorted(table.attrs)
        assert sorted(other.attrs) == attrs, (case.number, name)
        assert sorted(other.rows(attrs)) == sorted(table.rows(attrs)), (
            case.number,
            name,
        )

    # identical observation-point sizes
    assert run.se_sizes == ref.se_sizes, case.number

    # identical observed statistics for the selected set
    for stat in selection.observed:
        assert run.observations.maybe(stat) == ref.observations.get(stat), (
            case.number,
            stat,
        )
