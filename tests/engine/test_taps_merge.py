"""Merge round-trips for every tap observation type (sharded execution).

The mergeable-observation protocol promises that observing k disjoint row
shards and folding the shard tap sets together is *exactly* equivalent to
observing the whole table once.  These tests split random tables into
random shards, merge, and assert bit-for-bit equality of the collected
statistics -- the property the multiprocess backend's correctness rests on.
"""

import random

import pytest

from repro.algebra.expressions import SubExpression
from repro.core.statistics import Statistic
from repro.engine.instrumentation import (
    DistinctAccumulator,
    InstrumentationError,
    TapSet,
    make_distinct_accumulator,
)
from repro.engine.streaming import StreamingTaps
from repro.engine.table import Table

SE = SubExpression.of


def _random_table(rng: random.Random, rows: int) -> Table:
    return Table(
        {
            "a": [rng.randrange(8) for _ in range(rows)],
            "b": [rng.choice("xyz") for _ in range(rows)],
            "c": [float(rng.randrange(4)) for _ in range(rows)],
        }
    )


def _random_shards(rng: random.Random, table: Table, k: int) -> list[Table]:
    """Split ``table`` into k contiguous shards at random cut points."""
    cuts = sorted(rng.randrange(table.num_rows + 1) for _ in range(k - 1))
    bounds = [0, *cuts, table.num_rows]
    return [
        table.take(range(lo, hi))
        for lo, hi in zip(bounds, bounds[1:])
    ]


def _stats() -> list[Statistic]:
    return [
        Statistic.card(SE("T")),
        Statistic.hist(SE("T"), "a"),
        Statistic.hist(SE("T"), "a", "b"),
        Statistic.distinct(SE("T"), "b"),
        Statistic.distinct(SE("T"), "a", "c"),
    ]


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("k", [2, 3, 7])
class TestTapSetMergeRoundTrip:
    def test_sharded_merge_equals_unsharded(self, seed, k):
        rng = random.Random(seed)
        table = _random_table(rng, rows=rng.randrange(1, 120))
        stats = _stats()

        whole = TapSet(stats, mergeable=True)
        whole.observe(SE("T"), table)

        shards = [TapSet(stats, mergeable=True) for _ in range(k)]
        for taps, piece in zip(shards, _random_shards(rng, table, k)):
            taps.observe(SE("T"), piece)
        merged, *rest = shards
        for taps in rest:
            merged.merge(taps)

        for stat in stats:
            assert merged.store.get(stat) == whole.store.get(stat), stat
        assert merged.missing() == []

    def test_column_batch_observation_merges_identically(self, seed, k):
        rng = random.Random(seed * 31 + 1)
        table = _random_table(rng, rows=rng.randrange(1, 80))
        stats = _stats()

        whole = TapSet(stats, mergeable=True)
        whole.observe(SE("T"), table)

        shards = [TapSet(stats, mergeable=True) for _ in range(k)]
        for taps, piece in zip(shards, _random_shards(rng, table, k)):
            taps.observe_columns(
                SE("T"),
                piece.num_rows,
                {a: list(piece.column(a)) for a in piece.attrs},
            )
        merged, *rest = shards
        for taps in rest:
            merged.merge(taps)

        for stat in stats:
            assert merged.store.get(stat) == whole.store.get(stat), stat


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("k", [2, 3, 7])
class TestStreamingTapsMergeRoundTrip:
    def test_sharded_merge_equals_unsharded(self, seed, k):
        rng = random.Random(seed * 17 + 3)
        table = _random_table(rng, rows=rng.randrange(1, 120))
        stats = _stats()

        whole = StreamingTaps(stats)
        whole.mark_streamed(SE("T"))
        for row in table.rows():
            whole.observe_row(SE("T"), dict(zip(table.attrs, row)))

        shards = [StreamingTaps(stats) for _ in range(k)]
        for taps, piece in zip(shards, _random_shards(rng, table, k)):
            taps.mark_streamed(SE("T"))
            for row in piece.rows():
                taps.observe_row(SE("T"), dict(zip(piece.attrs, row)))
        merged, *rest = shards
        for taps in rest:
            merged.merge(taps)

        reference, folded = whole.collect(), merged.collect()
        for stat in stats:
            assert folded.get(stat) == reference.get(stat), stat

    def test_streamed_flag_survives_merge(self, seed, k):
        # "streamed but empty" must merge to zero, never to missing
        stats = [Statistic.card(SE("T"))]
        shards = [StreamingTaps(stats) for _ in range(k)]
        shards[seed % k].mark_streamed(SE("T"))
        merged, *rest = shards
        for taps in rest:
            merged.merge(taps)
        assert merged.collect().get(stats[0]) == 0


class TestDistinctAccumulator:
    def test_merge_is_set_union(self):
        left = make_distinct_accumulator([(1,), (2,)])
        right = make_distinct_accumulator([(2,), (3,)])
        left.merge(right)
        assert left.result() == 3
        assert left == DistinctAccumulator([(1,), (2,), (3,)])

    def test_random_partition_round_trip(self):
        rng = random.Random(99)
        values = [(rng.randrange(20), rng.choice("pq")) for _ in range(200)]
        whole = make_distinct_accumulator(values)
        parts = [make_distinct_accumulator() for _ in range(4)]
        for value in values:
            parts[rng.randrange(4)].add(value)
        base, *rest = parts
        for part in rest:
            base.merge(part)
        assert base.result() == whole.result()
        assert base == whole


class TestMergeProtocolEdges:
    def test_non_mergeable_operand_rejected(self):
        mergeable = TapSet([Statistic.card(SE("T"))], mergeable=True)
        plain = TapSet([Statistic.card(SE("T"))])
        with pytest.raises(InstrumentationError, match="mergeable=True"):
            mergeable.merge(plain)
        with pytest.raises(InstrumentationError, match="mergeable=True"):
            plain.merge(mergeable)

    def test_mergeable_distinct_counts_stay_exact_across_observes(self):
        # the accumulator (not the last batch) backs the stored count
        stat = Statistic.distinct(SE("T"), "a")
        taps = TapSet([stat], mergeable=True)
        taps.observe(SE("T"), Table({"a": [1, 2]}))
        taps.observe(SE("T"), Table({"a": [2, 3]}))
        assert taps.store.get(stat) == 3

    def test_discard_points_drops_observations_and_requests(self):
        card_t = Statistic.card(SE("T"))
        dist_t = Statistic.distinct(SE("T"), "a")
        card_r = Statistic.card(SE("R"))
        taps = TapSet([card_t, dist_t, card_r], mergeable=True)
        taps.observe(SE("T"), Table({"a": [1, 2]}))
        taps.observe(SE("R"), Table({"a": [5]}))
        taps.discard_points([SE("T")])
        assert not taps.wants(SE("T"))
        assert card_t not in taps.store and dist_t not in taps.store
        assert taps.store.get(card_r) == 1
        # a discarded point no longer counts as missing either
        assert taps.missing() == []

    def test_merge_after_discard_is_purely_additive(self):
        stat = Statistic.card(SE("T"))
        other_stat = Statistic.card(SE("R"))
        base = TapSet([stat, other_stat], mergeable=True)
        base.observe(SE("T"), Table({"a": [1, 2]}))
        base.observe(SE("R"), Table({"a": [7]}))
        shard = TapSet([stat, other_stat], mergeable=True)
        shard.observe(SE("T"), Table({"a": [3]}))
        shard.observe(SE("R"), Table({"a": [7]}))  # replicated input
        shard.discard_points([SE("R")])  # shard>0 drops replicated points
        base.merge(shard)
        assert base.store.get(stat) == 3
        assert base.store.get(other_stat) == 1

    def test_distinct_merge_without_accumulator_rejected(self):
        stat = Statistic.distinct(SE("T"), "a")
        left = TapSet([stat], mergeable=True)
        right = TapSet([stat], mergeable=True)
        # forge a distinct observation with no accumulator behind it
        right.store.put(stat, 2)
        with pytest.raises(InstrumentationError, match="accumulator"):
            left.merge(right)

    def test_histograms_merge_by_bucket_addition(self):
        stat = Statistic.hist(SE("T"), "a")
        left = TapSet([stat], mergeable=True)
        right = TapSet([stat], mergeable=True)
        left.observe(SE("T"), Table({"a": [1, 1, 2]}))
        right.observe(SE("T"), Table({"a": [2, 3]}))
        left.merge(right)
        merged = left.store.get(stat)
        assert merged.frequency(1) == 2
        assert merged.frequency(2) == 2
        assert merged.frequency(3) == 1
        assert merged.total() == 5


class TestSketchModeFactorySeam:
    """Regression: every tap type builds accumulators via the factory.

    StreamingTaps once constructed ``DistinctAccumulator`` directly,
    which under ``mode="hll"`` would have mixed implementations inside
    one run -- the exact accumulator on the merge side, sketches on the
    observe side -- and ``merge`` now refuses that instead of silently
    unioning a sketch into a set.
    """

    HLL = {"mode": "hll", "precision": 10, "exact_threshold": 4}

    def test_streaming_merge_builds_factory_accumulators(self):
        from repro.estimation.sketches import HllSketch, sketch_scope

        stat = Statistic.distinct(SE("T"), "a")
        with sketch_scope(self.HLL):
            shards = [StreamingTaps([stat]) for _ in range(2)]
            for taps, lo in zip(shards, (0, 40)):
                taps.mark_streamed(SE("T"))
                for i in range(lo, lo + 40):
                    taps.observe_row(SE("T"), {"a": i})
            merged, other = shards
            merged.merge(other)
            assert isinstance(merged._distinct[stat], HllSketch)

            whole = StreamingTaps([stat])
            whole.mark_streamed(SE("T"))
            for i in range(80):
                whole.observe_row(SE("T"), {"a": i})
            assert merged.collect().get(stat) == whole.collect().get(stat)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_tapset_sharded_sketch_merge_equals_unsharded(self, seed, k):
        from repro.estimation.sketches import sketch_scope

        rng = random.Random(seed * 23 + k)
        table = _random_table(rng, rows=rng.randrange(1, 120))
        stats = _stats()
        with sketch_scope(self.HLL):
            whole = TapSet(stats, mergeable=True)
            whole.observe(SE("T"), table)

            shards = [TapSet(stats, mergeable=True) for _ in range(k)]
            for taps, piece in zip(shards, _random_shards(rng, table, k)):
                taps.observe(SE("T"), piece)
            merged, *rest = shards
            for taps in rest:
                merged.merge(taps)

            for stat in stats:
                assert merged.store.get(stat) == whole.store.get(stat), stat

    def test_mixed_implementation_merge_raises(self):
        from repro.estimation.sketches import sketch_scope

        stat = Statistic.distinct(SE("T"), "a")
        exact_taps = TapSet([stat], mergeable=True)
        exact_taps.observe(SE("T"), Table({"a": [1, 2]}))
        with sketch_scope(self.HLL):
            hll_taps = TapSet([stat], mergeable=True)
            hll_taps.observe(SE("T"), Table({"a": [2, 3]}))
            with pytest.raises(InstrumentationError, match="mixed"):
                hll_taps.merge(exact_taps)
        with pytest.raises(InstrumentationError, match="mixed"):
            exact_taps.merge(hll_taps)

    def test_distinct_bytes_reports_sketch_state(self):
        from repro.estimation.sketches import sketch_scope

        stat = Statistic.distinct(SE("T"), "a")
        with sketch_scope(self.HLL):
            taps = TapSet([stat], mergeable=True)
            taps.observe(SE("T"), Table({"a": list(range(100))}))
            # past the threshold the accumulator densified: exactly 2^p
            assert taps.distinct_bytes() == 1 << self.HLL["precision"]
        plain = TapSet([stat], mergeable=True)
        plain.observe(SE("T"), Table({"a": list(range(100))}))
        assert plain.distinct_bytes() > 1 << self.HLL["precision"]
