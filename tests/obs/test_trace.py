"""Unit tests for the span-tree tracer (repro.obs.trace)."""

import threading

import pytest

from repro.core.persistence import PersistenceError
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT_VERSION,
    Tracer,
    as_tracer,
)


class FakeClock:
    """A deterministic monotonic clock: every call advances by ``step``."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpan:
    def test_duration_zero_while_open(self):
        span = Span("x", start=5.0)
        assert span.duration == 0.0
        span.end = 7.5
        assert span.duration == 2.5

    def test_annotate_returns_self_and_merges(self):
        span = Span("x")
        assert span.annotate(rows=3) is span
        span.annotate(tapped=True)
        assert span.attrs == {"rows": 3, "tapped": True}

    def test_walk_and_find(self):
        root = Span("run", kind="run")
        phase = Span("execution", kind="phase")
        block = Span("B1", kind="block")
        phase.children.append(block)
        root.children.append(phase)
        assert [s.name for s in root.walk()] == ["run", "execution", "B1"]
        assert root.find(kind="block") == [block]
        assert root.first(name="execution") is phase
        assert root.first(kind="operator") is None

    def test_dict_round_trip(self):
        root = Span("run", kind="run", start=1.0, attrs={"workflow": "wf"})
        child = Span("B1", kind="block", start=2.0)
        child.end = 3.0
        root.children.append(child)
        root.end = 4.0
        again = Span.from_dict(root.to_dict())
        assert again.name == "run" and again.kind == "run"
        assert again.attrs == {"workflow": "wf"}
        assert again.children[0].duration == 1.0
        assert again.to_dict() == root.to_dict()

    @pytest.mark.parametrize("doc", [None, 3, [], {"kind": "block"}])
    def test_from_dict_rejects_corrupt_spans(self, doc):
        with pytest.raises(PersistenceError):
            Span.from_dict(doc)


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("selection"):
            pass
        with tracer.span("execution") as exec_span:
            with tracer.span("B1", kind="block"):
                tracer.point("SE(R1)", rows=10)
        root = tracer.finish()
        assert [c.name for c in root.children] == ["selection", "execution"]
        assert exec_span.children[0].name == "B1"
        op = exec_span.children[0].children[0]
        assert op.kind == "operator" and op.attrs == {"rows": 10}
        assert op.start == op.end  # a point is instant

    def test_fake_clock_gives_exact_durations(self):
        clock = FakeClock(start=100.0, step=1.0)
        tracer = Tracer(clock=clock, wall_clock=lambda: 1234.5)
        # calls: root start=100; span start=101, end=102; finish=103
        with tracer.span("phase1"):
            pass
        root = tracer.finish()
        assert tracer.started_at == 1234.5
        assert root.children[0].start == 101.0
        assert root.children[0].duration == 1.0
        assert root.duration == 3.0

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("execution") as exec_span:
            with tracer.span("B1", kind="block"):
                tracer.point("skipped-task", kind="skipped", parent=exec_span)
        assert [c.name for c in exec_span.children] == ["B1", "skipped-task"]

    def test_thread_local_parenting_with_activate(self):
        tracer = Tracer(clock=FakeClock())
        block = tracer.start("B1", kind="block")

        def worker():
            # a fresh thread has an empty stack; activate() re-parents it
            with tracer.activate(block):
                tracer.point("SE(R1)", rows=1)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end(block)
        assert [c.name for c in block.children] == ["SE(R1)"]

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer(clock=FakeClock())
        seen = {}

        def worker():
            seen["current"] = tracer.current()

        with tracer.span("phase"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker thread never saw the main thread's open span
        assert seen["current"] is tracer.root

    def test_finish_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        first = tracer.finish().end
        assert tracer.finish().end == first

    def test_to_dict_is_versioned(self):
        tracer = Tracer(workflow="wf", clock=FakeClock(), wall_clock=lambda: 7.0)
        doc = tracer.to_dict()
        assert doc["format_version"] == TRACE_FORMAT_VERSION
        assert doc["kind"] == "trace"
        assert doc["started_at"] == 7.0
        assert doc["root"]["attrs"] == {"workflow": "wf"}


class TestNullTracer:
    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.start("x")
        assert span is NULL_SPAN
        assert tracer.end(span) is NULL_SPAN
        assert tracer.point("y") is NULL_SPAN
        with tracer.span("z") as inner:
            assert inner is NULL_SPAN
        with tracer.activate(span):
            pass
        assert tracer.finish() is NULL_SPAN
        assert tracer.find() == []
        assert tracer.current() is NULL_SPAN
        assert tracer.root is NULL_SPAN
        assert NULL_SPAN.annotate(rows=1) is NULL_SPAN
        assert NULL_SPAN.attrs == {}  # annotation recorded nothing

    def test_to_dict_refuses(self):
        with pytest.raises(ValueError):
            NULL_TRACER.to_dict()

    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer(clock=FakeClock())
        assert as_tracer(real) is real
