"""Integration: the pipeline, scheduler and session emit the span tree.

These tests pin the observability *contract* of a traced cycle -- which
phases appear, which annotations they carry, how failures and retries
surface, and that the whole feature is inert when off -- against real
suite workflows, with injected clocks so every duration is exact.
"""

import pytest

from repro.catalog.store import StatisticsCatalog
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.scheduler import RetryPolicy
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.session import EtlSession
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer
from repro.workloads import case


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


FAST = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0, seed=7,
                   sleep=lambda s: None)


def _pipeline(number=12, **kwargs):
    return StatisticsPipeline(case(number).build(), **kwargs)


def _sources(number=12, scale=0.1):
    return case(number).tables(scale=scale, seed=5)


class TestTracedRun:
    def test_span_tree_covers_every_phase(self):
        pipeline = _pipeline()
        tracer = Tracer()
        report = pipeline.run_once(_sources(), run_id="run0", tracer=tracer)

        assert report.trace is tracer
        root = tracer.root
        assert root.end is not None  # finished
        phases = [c.name for c in root.children]
        assert phases == ["enumerate", "selection", "execution", "optimization"]

        enum = root.first(name="enumerate")
        assert enum.attrs["blocks"] == len(report.analysis.blocks)
        assert enum.attrs["statistics"] > 0
        assert enum.attrs["css"] > 0
        assert enum.attrs["required"] > 0

        sel = root.first(name="selection")
        assert sel.attrs["method"] == report.selection.method
        assert sel.attrs["observed"] == len(report.selection.observed_indexes)
        assert sel.attrs["cost"] == report.selection.total_cost
        assert sel.attrs["tapped"] == len(report.tapped)
        assert sel.attrs["catalog_hits"] == 0

        execution = root.first(name="execution")
        assert execution.attrs["backend"] == "columnar"
        assert execution.attrs["workers"] == 1
        assert execution.attrs["failures"] == 0

        opt = root.first(name="optimization")
        assert opt.attrs["improved"] == sum(
            1 for p in report.plans.values() if p.improved
        )

        # run metadata on the root
        assert root.attrs["workflow"] == report.analysis.workflow.name
        assert root.attrs["run_id"] == "run0"
        assert root.attrs["ok"] is True

    def test_blocks_carry_operator_points_with_rows(self):
        pipeline = _pipeline()
        tracer = Tracer()
        report = pipeline.run_once(_sources(), tracer=tracer)

        blocks = tracer.find(kind="block")
        assert {s.name for s in blocks} == {
            b.name for b in report.analysis.blocks
        }
        sizes_by_repr = {repr(se): n for se, n in report.run.se_sizes.items()}
        for block in blocks:
            assert block.attrs["outcome"] == "ok"
            points = [c for c in block.children if c.kind == "operator"]
            assert points, block.name
            for point in points:
                # a point's name is the SE it materialized; its rows match
                # the run's recorded size for that SE
                assert point.attrs["rows"] == sizes_by_repr[point.name]
        # at least one tap fired somewhere in the tree
        assert any(
            s.attrs.get("tapped") for s in tracer.root.walk()
        )

    def test_second_cycle_annotates_estimated_rows(self):
        pipeline = _pipeline()
        sources = _sources()
        pipeline.run_once(sources)  # untraced warm-up fills _se_sizes
        tracer = Tracer()
        pipeline.run_once(sources, tracer=tracer)  # same plan, same data

        estimated = [
            s for s in tracer.root.walk()
            if s.kind == "operator" and "estimated_rows" in s.attrs
        ]
        assert estimated
        # same data, so the previous cycle's sizes predict perfectly
        for span in estimated:
            assert span.attrs["rows"] == pytest.approx(
                span.attrs["estimated_rows"]
            )

    def test_reconcile_phase_with_shared_catalog(self):
        pipeline = _pipeline()
        catalog = StatisticsCatalog()
        tracer = Tracer()
        report = pipeline.run_once(
            _sources(), stats_catalog=catalog, run_id="run0", tracer=tracer
        )
        rec = tracer.root.first(name="reconcile")
        assert rec is not None
        assert rec.attrs["added"] == len(report.drift.added)
        assert rec.attrs["added"] > 0  # a cold catalog learns everything
        assert rec.attrs["drifted"] == 0
        assert "reconcile" in report.timings

    def test_untraced_run_has_no_trace(self):
        report = _pipeline().run_once(_sources())
        assert report.trace is None

    def test_null_tracer_is_normalized_away(self):
        report = _pipeline().run_once(_sources(), tracer=NullTracer())
        assert report.trace is None


class TestFailureTracing:
    def test_retries_annotate_the_block_span(self):
        faults = FaultPlan(
            (FaultSpec(target="B2", kind="transient", times=1),), seed=7
        )
        pipeline = _pipeline(25)
        tracer = Tracer()
        report = pipeline.run_once(
            _sources(25, scale=0.05), faults=faults, retry=FAST, tracer=tracer
        )
        assert report.ok  # transient + retry converges

        block = tracer.root.first(kind="block", name="B2")
        assert block.attrs["outcome"] == "ok"
        assert block.attrs["attempts"] == 2
        assert block.attrs["retried"] is True
        retries = block.find(kind="retry")
        assert len(retries) == 1
        assert retries[0].attrs["attempt"] == 1
        assert retries[0].attrs["failure_kind"] == "transient"
        assert retries[0].attrs["error"]

    def test_permanent_failure_and_skips_are_visible(self):
        faults = FaultPlan(
            (FaultSpec(target="B2", kind="permanent"),), seed=7
        )
        pipeline = _pipeline(25)
        tracer = Tracer()
        report = pipeline.run_once(
            _sources(25, scale=0.05), faults=faults, retry=FAST, tracer=tracer
        )
        assert not report.ok

        block = tracer.root.first(kind="block", name="B2")
        assert block.attrs["outcome"] == "permanent"
        assert block.attrs["error"]

        skipped = tracer.find(kind="skipped")
        assert skipped  # B2's downstream target task was skipped
        for point in skipped:
            assert point.attrs["missing"]
        assert tracer.root.attrs["ok"] is False


class TestInjectedClock:
    def test_timings_use_the_pipeline_clock(self):
        pipeline = _pipeline(clock=FakeClock())
        report = pipeline.run_once(_sources())
        # each phase is one t0/end clock pair; the fake clock steps by 1.0
        assert set(report.timings.values()) == {1.0}

    def test_session_tracer_shares_the_pipeline_clock(self):
        clock = FakeClock()
        pipeline = _pipeline(clock=clock)
        session = EtlSession(pipeline, tracing=True)
        record = session.run(_sources())
        root = record.report.trace.root
        # every span was timed by the injected clock: integral ticks only
        for span in root.walk():
            assert span.start == int(span.start)
            assert span.end is None or span.end == int(span.end)
        assert root.duration > 0


class TestSessionMetrics:
    def test_registry_aggregates_across_runs(self):
        registry = MetricsRegistry()
        session = EtlSession(
            _pipeline(), metrics=registry, tracing=True
        )
        sources = _sources()
        session.run(sources)
        session.run(sources)

        workflow = session.history[0].report.analysis.workflow.name
        runs = registry.get("etl_runs_total")
        assert runs.value(workflow=workflow, backend="columnar") == 2.0

        tapped = registry.get("etl_statistics_tapped_total")
        assert tapped.total == sum(
            len(r.report.tapped) for r in session.history
        )

        phases = registry.get("etl_phase_seconds")
        assert phases.count(
            phase="execution", workflow=workflow, backend="columnar"
        ) == 2

        cost = registry.get("etl_plan_cost")
        assert cost.value(workflow=workflow, backend="columnar") == (
            session.history[-1].report.total_estimated_cost
        )

        # the traced second run carried estimates, so error samples exist
        errors = registry.get("etl_estimation_rel_error")
        assert errors is not None and errors.count(
            workflow=workflow, backend="columnar"
        ) > 0

        # each run carries its own fresh trace
        traces = [r.report.trace for r in session.history]
        assert all(t is not None for t in traces)
        assert traces[0] is not traces[1]

    def test_failures_counted_by_kind(self):
        registry = MetricsRegistry()
        faults = FaultPlan(
            (FaultSpec(target="B2", kind="permanent"),), seed=7
        )
        pipeline = _pipeline(25)
        report = pipeline.run_once(
            _sources(25, scale=0.05), faults=faults, retry=FAST,
            metrics=registry,
        )
        labels = {
            "workflow": report.analysis.workflow.name,
            "backend": "columnar",
        }
        failures = registry.get("etl_run_failures_total")
        assert failures.value(kind="permanent", **labels) == 1.0
        assert failures.value(kind="skipped", **labels) >= 1.0
