"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_FORMAT_VERSION,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("etl_runs_total")
        counter.inc()
        counter.inc(2.0)
        counter.inc(workflow="wf03")
        assert counter.value() == 3.0
        assert counter.value(workflow="wf03") == 1.0
        assert counter.total == 4.0

    def test_rejects_negative_increments(self):
        counter = Counter("x")
        with pytest.raises(MetricError):
            counter.inc(-1.0)

    def test_unseen_label_set_reads_zero(self):
        assert Counter("x").value(workflow="nope") == 0.0

    def test_sample_lines_are_sorted_and_labelled(self):
        counter = Counter("x")
        counter.inc(workflow="b")
        counter.inc(2, workflow="a")
        assert counter.sample_lines() == [
            'x{workflow="a"} 2',
            'x{workflow="b"} 1',
        ]


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("etl_plan_cost")
        gauge.set(10.5, workflow="wf")
        gauge.set(7.0, workflow="wf")
        assert gauge.value(workflow="wf") == 7.0

    def test_to_dict_shape(self):
        gauge = Gauge("g", help="h")
        gauge.set(3.0)
        assert gauge.to_dict() == {
            "type": "gauge",
            "help": "h",
            "samples": [{"labels": {}, "value": 3.0}],
        }


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(56.05)
        lines = hist.sample_lines()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 3' in lines
        assert 'lat_bucket{le="10"} 4' in lines
        assert 'lat_bucket{le="+Inf"} 5' in lines
        assert lines[-1] == "lat_count 5"

    def test_boundary_value_lands_in_its_bucket(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1" is inclusive
        assert 'lat_bucket{le="1"} 1' in hist.sample_lines()

    def test_labelled_distributions_are_independent(self):
        hist = Histogram("lat", buckets=(1.0,))
        hist.observe(0.5, phase="selection")
        hist.observe(0.5, phase="execution")
        hist.observe(0.5, phase="execution")
        assert hist.count(phase="selection") == 1
        assert hist.count(phase="execution") == 2

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(MetricError):
            Histogram("lat", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("runs")
        assert registry.counter("runs") is first
        assert "runs" in registry
        assert registry.get("runs") is first
        assert registry.get("absent") is None
        assert len(registry) == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_to_dict_is_versioned(self):
        registry = MetricsRegistry()
        registry.counter("runs", help="runs started").inc()
        doc = registry.to_dict()
        assert doc["format_version"] == METRICS_FORMAT_VERSION
        assert doc["kind"] == "metrics"
        assert doc["metrics"]["runs"]["type"] == "counter"

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("b_total", help="b things").inc(workflow="wf")
        registry.gauge("a_cost").set(2.5)
        text = registry.render_prometheus()
        # metrics sorted by name; HELP only when given; trailing newline
        assert text == (
            "# TYPE a_cost gauge\n"
            "a_cost 2.5\n"
            "# HELP b_total b things\n"
            "# TYPE b_total counter\n"
            'b_total{workflow="wf"} 1\n'
        )

    def test_render_prometheus_empty_registry(self):
        assert MetricsRegistry().render_prometheus() == ""
