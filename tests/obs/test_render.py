"""Rendering tests: tree layout, elision, hotspots, estimation errors."""

from repro.obs.render import (
    MAX_OPERATORS_SHOWN,
    estimation_errors,
    render_trace,
    render_tree,
    slowest,
)
from repro.obs.trace import Span


def _closed(name, kind, start, end, **attrs):
    span = Span(name, kind=kind, start=start, attrs=attrs)
    span.end = end
    return span


def _block_with_operators(n_ops):
    root = _closed("run", "run", 0.0, 10.0)
    block = _closed("B1", "block", 0.0, 1.0)
    for i in range(n_ops):
        block.children.append(_closed(f"SE(R{i})", "operator", 0.5, 0.5, rows=i))
    root.children.append(block)
    return root, block


class TestRenderTree:
    def test_indentation_durations_and_suffixes(self):
        root = _closed("run", "run", 0.0, 2.0, workflow="wf")
        block = _closed("B1", "block", 0.0, 0.5, attempts=3, outcome="ok")
        block.children.append(
            _closed("SE(R1)", "operator", 0.1, 0.1, rows=7, estimated_rows=5.0,
                    tapped=True)
        )
        root.children.append(block)
        text = render_tree(root)
        lines = text.splitlines()
        assert lines[0] == "run:run 2000.0ms"
        assert lines[1] == "  block:B1 500.0ms  [attempts=3]"
        # operator points carry no duration; outcome=ok is elided
        assert lines[2] == "    operator:SE(R1)  [rows=7, est=5, tapped]"

    def test_open_span_has_no_duration(self):
        root = Span("run", kind="run")
        assert render_tree(root) == "run:run"

    def test_failure_annotations_rendered(self):
        span = _closed("B2", "block", 0.0, 0.1, outcome="transient",
                       error="boom", attempts=2)
        text = render_tree(span)
        assert "attempts=2" in text
        assert "outcome=transient" in text
        assert "error=boom" in text

    def test_operator_elision_beyond_cap(self):
        root, block = _block_with_operators(MAX_OPERATORS_SHOWN + 4)
        text = render_tree(root)
        shown = [l for l in text.splitlines() if "operator:" in l]
        assert len(shown) == MAX_OPERATORS_SHOWN
        assert "... 4 more operator point(s)" in text

    def test_verbose_disables_elision(self):
        root, block = _block_with_operators(MAX_OPERATORS_SHOWN + 4)
        text = render_tree(root, verbose=True)
        shown = [l for l in text.splitlines() if "operator:" in l]
        assert len(shown) == MAX_OPERATORS_SHOWN + 4
        assert "more operator point(s)" not in text

    def test_at_cap_nothing_is_elided(self):
        root, _ = _block_with_operators(MAX_OPERATORS_SHOWN)
        assert "more operator point(s)" not in render_tree(root)


class TestHotspots:
    def test_slowest_orders_by_duration_then_name(self):
        root = _closed("run", "run", 0.0, 10.0)
        root.children.append(_closed("B-fast", "block", 0.0, 1.0))
        root.children.append(_closed("B-slow", "block", 0.0, 5.0))
        root.children.append(_closed("A-slow", "block", 0.0, 5.0))
        root.children.append(_closed("boundary", "boundary", 0.0, 9.0))
        names = [s.name for s in slowest(root, kind="block", top=2)]
        assert names == ["A-slow", "B-slow"]

    def test_estimation_errors_sorted_worst_first(self):
        root = _closed("run", "run", 0.0, 1.0)
        root.children.append(
            _closed("mild", "operator", 0, 0, rows=11, estimated_rows=10.0)
        )
        root.children.append(
            _closed("wild", "operator", 0, 0, rows=100, estimated_rows=10.0)
        )
        root.children.append(_closed("no-est", "operator", 0, 0, rows=5))
        errors = estimation_errors(root)
        assert [s.name for _, s in errors] == ["wild", "mild"]
        assert errors[0][0] == 9.0  # |100 - 10| / 10

    def test_error_uses_floor_of_one_for_tiny_estimates(self):
        root = _closed("run", "run", 0.0, 1.0)
        root.children.append(
            _closed("p", "operator", 0, 0, rows=3, estimated_rows=0.5)
        )
        assert estimation_errors(root)[0][0] == 2.5  # |3 - 0.5| / max(0.5, 1)


class TestRenderTrace:
    def test_full_document_sections(self):
        root = _closed("run", "run", 0.0, 2.0)
        block = _closed("B1", "block", 0.0, 0.5)
        block.children.append(
            _closed("SE(R1)", "operator", 0, 0, rows=20, estimated_rows=10.0)
        )
        root.children.append(block)
        text = render_trace(root, top=3)
        assert text.endswith("\n")
        assert "slowest blocks (top 1):" in text
        assert "  B1: 500.0ms" in text
        assert "worst estimation errors (top 1):" in text
        assert "SE(R1): estimated 10 rows, saw 20 (rel. error 1.00)" in text

    def test_exact_estimates_omit_error_section(self):
        root = _closed("run", "run", 0.0, 2.0)
        root.children.append(
            _closed("SE(R1)", "operator", 0, 0, rows=10, estimated_rows=10.0)
        )
        assert "estimation errors" not in render_trace(root)
