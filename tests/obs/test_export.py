"""Exporter/loader tests: round trips and one-line failure modes."""

import json

import pytest

from repro.core.persistence import PersistenceError
from repro.obs.export import (
    TraceDocument,
    load_trace,
    trace_to_dict,
    write_metrics,
    write_metrics_json,
    write_metrics_prometheus,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_FORMAT_VERSION, Span, Tracer


def _ticker():
    state = {"now": 0.0}

    def clock():
        state["now"] += 1.0
        return state["now"]

    return clock


class TestTraceRoundTrip:
    def test_tracer_round_trip(self, tmp_path):
        tracer = Tracer(workflow="wf", clock=_ticker(), wall_clock=lambda: 9.0)
        with tracer.span("execution"):
            tracer.point("SE(R1)", rows=4)
        tracer.finish(run_id="run0")
        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        doc = load_trace(path)
        assert isinstance(doc, TraceDocument)
        assert doc.workflow == "wf"
        assert doc.run_id == "run0"
        assert doc.started_at == 9.0
        assert doc.root.to_dict() == tracer.root.to_dict()

    def test_bare_span_round_trip(self, tmp_path):
        root = Span("run", kind="run", start=0.0)
        root.end = 1.0
        path = tmp_path / "trace.json"
        write_trace(root, path)
        loaded = load_trace(path)
        assert loaded.root.to_dict() == root.to_dict()
        assert trace_to_dict(root)["format_version"] == TRACE_FORMAT_VERSION

    def test_output_is_deterministic(self, tmp_path):
        root = Span("run", kind="run", attrs={"b": 1, "a": 2})
        write_trace(root, tmp_path / "one.json")
        write_trace(root, tmp_path / "two.json")
        assert (tmp_path / "one.json").read_text() == (
            tmp_path / "two.json"
        ).read_text()


class TestTraceLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_trace(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="invalid trace file"):
            load_trace(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(PersistenceError, match="expected a JSON object"):
            load_trace(path)

    def test_future_format_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "trace"}))
        with pytest.raises(PersistenceError, match="format_version"):
            load_trace(path)

    def test_wrong_document_kind(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(MetricsRegistry(), path)
        with pytest.raises(PersistenceError, match="not a trace"):
            load_trace(path)

    def test_missing_root_span(self, tmp_path):
        path = tmp_path / "rootless.json"
        path.write_text(json.dumps({"format_version": 1, "kind": "trace"}))
        with pytest.raises(PersistenceError, match="no root span"):
            load_trace(path)


class TestMetricsWriters:
    @pytest.fixture
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("etl_runs_total").inc(workflow="wf")
        return registry

    def test_json_writer(self, registry, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(registry, path)
        assert json.loads(path.read_text()) == registry.to_dict()

    def test_prometheus_writer(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics_prometheus(registry, path)
        assert path.read_text() == registry.render_prometheus()

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("m.json", "json"),
            ("m", "json"),
            ("m.prom", "prometheus"),
            ("m.txt", "prometheus"),
            ("m.metrics", "prometheus"),
        ],
    )
    def test_write_metrics_picks_format_by_suffix(
        self, registry, tmp_path, name, expected
    ):
        path = tmp_path / name
        assert write_metrics(registry, path) == expected
        text = path.read_text()
        if expected == "json":
            assert json.loads(text)["kind"] == "metrics"
        else:
            assert text.startswith("# TYPE etl_runs_total counter")
