"""CLI surface for the quality layer, plus corrupt-file hardening.

Operational errors -- truncated checkpoints, binary-garbage catalogs,
corrupt traces and fault plans -- must exit 1 with one line on stderr,
never a traceback.
"""

import json

import pytest

from repro.cli import main


def _run(argv):
    return main(argv)


@pytest.fixture
def run_args(tmp_path):
    def build(*extra):
        return ["run", "--number", "3", "--scale", "0.05", *extra]

    return build


class TestRunContracts:
    def test_bootstrap_then_enforce(self, run_args, tmp_path, capsys):
        contracts = tmp_path / "contracts.json"
        assert _run(run_args("--contracts", str(contracts))) == 0
        out = capsys.readouterr().out
        assert "contracts inferred" in out
        assert contracts.exists()
        # second run loads the saved file instead of re-inferring
        assert _run(run_args("--contracts", str(contracts))) == 0
        out = capsys.readouterr().out
        assert "contracts inferred" not in out
        assert "quality gate: 0 row(s) quarantined" in out

    def test_quarantine_dir_requires_contracts(self, run_args, tmp_path, capsys):
        assert _run(run_args("--quarantine-dir", str(tmp_path / "dead"))) == 1
        assert "needs --contracts" in capsys.readouterr().err

    def test_dirty_run_writes_dead_letter(self, run_args, tmp_path, capsys):
        contracts = tmp_path / "contracts.json"
        dead = tmp_path / "dead"
        faults = tmp_path / "faults.json"
        assert _run(run_args("--contracts", str(contracts))) == 0
        capsys.readouterr()
        faults.write_text(json.dumps({
            "seed": 1337,
            "faults": [
                {"target": "TaxRate", "kind": "null-burst", "rows": 2}
            ],
        }))
        assert _run(run_args(
            "--contracts", str(contracts),
            "--quarantine-dir", str(dead),
            "--faults", str(faults),
        )) == 0
        out = capsys.readouterr().out
        assert "quality gate: 2 row(s) quarantined" in out
        assert "1 artifact(s) written" in out

        assert _run(["quality", "report", str(dead)]) == 0
        report = capsys.readouterr().out
        assert "TaxRate: 2 row(s) quarantined" in report
        assert "[null]" in report

    def test_on_drift_strict_is_an_operational_error(
        self, run_args, tmp_path, capsys
    ):
        contracts = tmp_path / "contracts.json"
        faults = tmp_path / "faults.json"
        assert _run(run_args("--contracts", str(contracts))) == 0
        capsys.readouterr()
        faults.write_text(json.dumps({
            "seed": 1,
            "faults": [{
                "target": "TaxRate", "kind": "column-rename",
                "column": "tax_id",
            }],
        }))
        assert _run(run_args(
            "--contracts", str(contracts),
            "--faults", str(faults),
            "--on-drift", "strict",
        )) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "missing" in err


class TestQualityCommands:
    def test_infer_writes_contracts(self, tmp_path, capsys):
        out_file = tmp_path / "contracts.json"
        assert _run([
            "quality", "infer", "--number", "3", "--out", str(out_file)
        ]) == 0
        out = capsys.readouterr().out
        assert "inferred and saved" in out and "tax_id:int" in out
        assert json.loads(out_file.read_text())["kind"] == "source-contracts"

    def test_report_missing_directory_exits_one(self, tmp_path, capsys):
        assert _run(["quality", "report", str(tmp_path / "nope")]) == 1
        assert "not found" in capsys.readouterr().err


class TestCorruptFileHardening:
    """Satellite: every versioned JSON loader fails operationally."""

    def test_truncated_checkpoint(self, run_args, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        checkpoint.write_text('{"format_version": 1, "blocks"')
        assert _run(run_args("--resume", str(checkpoint))) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_binary_garbage_checkpoint(self, run_args, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        checkpoint.write_bytes(b"\x80\x81\xfe\xff garbage")
        assert _run(run_args("--resume", str(checkpoint))) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_binary_garbage_catalog(self, tmp_path, capsys):
        catalog = tmp_path / "catalog.json"
        catalog.write_bytes(b"\x80\x81\xfe\xff")
        assert _run(["catalog", "show", str(catalog)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_truncated_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text('{"format_version": 1, "root": ')
        assert _run(["trace", "show", str(trace)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_binary_garbage_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_bytes(b"\xff\xfe\x80")
        assert _run(["trace", "show", str(trace)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_binary_garbage_faults(self, run_args, tmp_path, capsys):
        faults = tmp_path / "faults.json"
        faults.write_bytes(b"\x80\xff not json")
        assert _run(run_args("--faults", str(faults))) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_binary_garbage_workflow(self, tmp_path, capsys):
        workflow = tmp_path / "wf.json"
        workflow.write_bytes(b"\x80\xff\x00")
        assert _run(["analyze", str(workflow)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_corrupt_contracts_file(self, run_args, tmp_path, capsys):
        contracts = tmp_path / "contracts.json"
        contracts.write_text('{"format_version": 1, "sources": "nope"}')
        assert _run(run_args("--contracts", str(contracts))) == 1
        assert "error:" in capsys.readouterr().err
