"""Randomized end-to-end fuzzing of the whole framework.

For dozens of seeded-random workflows (random join graphs, filters,
transforms, reject links, aggregations), the pipeline must uphold its core
guarantees:

1. block analysis produces a valid decomposition;
2. statistics identification is feasible and both solvers return valid
   selections;
3. after one instrumented run of the initial plan, the estimator recovers
   the exact cardinality of EVERY sub-expression (brute-force checked);
4. the optimizer's chosen plan never costs more than the initial plan
   under the learned (exact) cardinalities.
"""

import random

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.operators import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table
from repro.estimation.estimator import CardinalityEstimator
from repro.estimation.optimizer import PlanOptimizer

ATTR_POOL = {f"a{i}": 6 + 3 * i for i in range(6)}  # domains 6..21


def random_workflow(seed: int) -> tuple[Workflow, dict[str, Table]]:
    """A random but valid workflow plus matching random tables."""
    rng = random.Random(seed)
    n_rels = rng.randint(2, 5)
    catalog = Catalog()
    attrs_of: dict[str, list[str]] = {}
    attr_names = list(ATTR_POOL)

    # chain-ish attribute sharing guarantees joinability
    for i in range(n_rels):
        name = f"R{i}"
        shared_prev = attr_names[i % len(attr_names)]
        shared_next = attr_names[(i + 1) % len(attr_names)]
        extra = rng.sample(attr_names, rng.randint(0, 2))
        attrs = sorted({shared_prev, shared_next, *extra})
        catalog.add_relation(name, {a: ATTR_POOL[a] for a in attrs})
        attrs_of[name] = attrs

    nodes = {}
    for name in attrs_of:
        node = Source(catalog, name)
        # random pre-join filter / transform
        if rng.random() < 0.4:
            attr = rng.choice(attrs_of[name])
            threshold = rng.randint(2, ATTR_POOL[attr])
            node = Filter(
                node,
                attr,
                Predicate(f"lt{threshold}", lambda v, t=threshold: v <= t),
            )
        if rng.random() < 0.25:
            attr = rng.choice(attrs_of[name])
            node = Transform(
                node, attr, UdfSpec("wrap", lambda v: (v * 3) % 23 + 1)
            )
        if rng.random() < 0.2 and len(node.output_attrs()) > 2:
            keep = rng.sample(node.output_attrs(), len(node.output_attrs()) - 1)
            node = Project(node, tuple(sorted(keep)))
        nodes[name] = node

    # join everything up, respecting shared attributes
    order = list(attrs_of)
    rng.shuffle(order)
    current = nodes[order[0]]
    current_attrs = set(current.output_attrs())
    joined = [order[0]]
    remaining = order[1:]
    while remaining:
        progressed = False
        for name in list(remaining):
            shared = sorted(current_attrs & set(nodes[name].output_attrs()))
            if not shared:
                continue
            attr = rng.choice(shared)
            reject = rng.random() < 0.15
            current = Join(current, nodes[name], attr, reject_left=reject)
            current_attrs |= set(nodes[name].output_attrs())
            joined.append(name)
            remaining.remove(name)
            progressed = True
            break
        if not progressed:
            # no shared attribute: drop the unjoinable relations
            break

    if rng.random() < 0.2 and len(current.output_attrs()) >= 2:
        group = tuple(sorted(rng.sample(current.output_attrs(), 1)))
        current = Aggregate(current, group, {"n": ("count", group[0])})
    workflow = Workflow(f"fuzz{seed}", catalog, [Target(current, "out")])

    tables = {}
    for name in joined:
        n_rows = rng.randint(5, 60)
        tables[name] = Table(
            {
                a: [rng.randint(1, ATTR_POOL[a]) for _ in range(n_rows)]
                for a in attrs_of[name]
            }
        )
    # unjoined relations may still be workflow sources if they were dropped
    for name in attrs_of:
        tables.setdefault(
            name,
            Table(
                {
                    a: [rng.randint(1, ATTR_POOL[a]) for _ in range(5)]
                    for a in attrs_of[name]
                }
            ),
        )
    return workflow, tables


SEEDS = list(range(36))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_end_to_end(seed):
    workflow, tables = random_workflow(seed)
    analysis = analyze(workflow)

    # 1. analysis invariants
    for block in analysis.blocks:
        universe = block.universe()
        assert len(universe) == len(set(universe))
        for se in block.join_ses():
            assert block.graph.is_connected(se.relations)

    # 2. identification feasible; both solvers valid
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))
    solver = solve_ilp if seed % 2 == 0 else solve_greedy
    result = solver(problem)
    assert result.is_valid

    # 3. instrumented run -> exact estimates everywhere
    taps = TapSet(result.observed)
    run = Executor(analysis).run(tables, taps=taps)
    assert taps.missing() == []
    estimator = CardinalityEstimator(catalog, run.observations)
    have, total = estimator.coverage()
    assert have == total, estimator.missing()
    truth = ground_truth_cardinalities(analysis, tables)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual), (
            seed,
            se,
        )

    # 4. the optimizer only ever improves on the initial plan
    optimizer = PlanOptimizer(analysis, estimator.all_cardinalities())
    for name, plan in optimizer.optimize().items():
        assert plan.cost <= plan.initial_cost + 1e-9
