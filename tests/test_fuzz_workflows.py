"""Randomized end-to-end fuzzing of the whole framework.

For dozens of seeded-random workflows (random join graphs, filters,
transforms, reject links, aggregations), the pipeline must uphold its core
guarantees:

1. block analysis produces a valid decomposition;
2. statistics identification is feasible and both solvers return valid
   selections;
3. after one instrumented run of the initial plan, the estimator recovers
   the exact cardinality of EVERY sub-expression (brute-force checked);
4. the optimizer's chosen plan never costs more than the initial plan
   under the learned (exact) cardinalities.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.estimation.optimizer import PlanOptimizer
from repro.workloads.randomgen import random_workflow

SEEDS = list(range(36))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_end_to_end(seed):
    workflow, tables = random_workflow(seed)
    analysis = analyze(workflow)

    # 1. analysis invariants
    for block in analysis.blocks:
        universe = block.universe()
        assert len(universe) == len(set(universe))
        for se in block.join_ses():
            assert block.graph.is_connected(se.relations)

    # 2. identification feasible; both solvers valid
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))
    solver = solve_ilp if seed % 2 == 0 else solve_greedy
    result = solver(problem)
    assert result.is_valid

    # 3. instrumented run -> exact estimates everywhere
    taps = TapSet(result.observed)
    run = Executor(analysis).run(tables, taps=taps)
    assert taps.missing() == []
    estimator = CardinalityEstimator(catalog, run.observations)
    have, total = estimator.coverage()
    assert have == total, estimator.missing()
    truth = ground_truth_cardinalities(analysis, tables)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual), (
            seed,
            se,
        )

    # 4. the optimizer only ever improves on the initial plan
    optimizer = PlanOptimizer(analysis, estimator.all_cardinalities())
    for name, plan in optimizer.optimize().items():
        assert plan.cost <= plan.initial_cost + 1e-9
