"""Resilience end-to-end: the ISSUE's three acceptance criteria.

1. a permanent failure in one block of a multi-block workflow still yields
   a complete :class:`PipelineReport` -- the failure is recorded, the
   failed block's cardinalities fall back to prior-run statistics or the
   independence baseline, and every *healthy* block gets exactly the plan
   a fault-free run would choose;
2. a transient failure plus a retry policy converges to a report
   identical to the fault-free run;
3. a run killed partway and resumed from its checkpoint re-executes only
   the unfinished blocks and ends in the fault-free state.

Backend coverage is parametrized (restrict with ``REPRO_CHAOS_BACKEND``
for the CI matrix); every injection is seeded via ``REPRO_CHAOS_SEED``.
"""

import math
import os

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.core.histogram import Histogram
from repro.core.persistence import PersistenceError
from repro.core.statistics import Statistic, StatisticsStore
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.scheduler import RetryPolicy
from repro.engine.table import Table
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.recovery import RunCheckpoint
from repro.framework.session import EtlSession
from repro.workloads import case

pytestmark = pytest.mark.chaos

SE = SubExpression.of

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
_only = os.environ.get("REPRO_CHAOS_BACKEND", "")
BACKENDS = [_only] if _only else ["columnar", "streaming", "vectorized"]

#: wf25 is the multi-target workflow: B1 feeds B2 and B3, which are
#: mutually independent -- failing B2 leaves B1 and B3 healthy.
WORKFLOW = 25
FAST = RetryPolicy(max_retries=2, base_delay=0.001, jitter=0.0,
                   seed=CHAOS_SEED, sleep=lambda s: None)


def _sources():
    return case(WORKFLOW).tables(scale=0.05, seed=7)


def _run_once(backend, **kwargs):
    pipeline = StatisticsPipeline(case(WORKFLOW).build(), backend=backend)
    return pipeline.run_once(_sources(), **kwargs)


def _plan_key(report):
    return {name: (repr(p.tree), p.cost) for name, p in report.plans.items()}


def _failed_blocks(report):
    """Failure records for blocks only (target/boundary tasks downstream
    of a failed block are recorded as skipped too)."""
    blocks = {b.name for b in report.analysis.blocks}
    return {k for k in report.failures if k in blocks}


def _permanent(target):
    return FaultPlan((FaultSpec(target=target, kind="permanent"),),
                     seed=CHAOS_SEED)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDegradedRun:
    def test_permanent_failure_keeps_healthy_plans(self, backend):
        baseline = _run_once(backend)
        report = _run_once(backend, faults=_permanent("B2"), retry=FAST)

        assert not report.ok
        assert _failed_blocks(report) == {"B2"}
        assert report.failures["B2"].kind == "permanent"
        assert report.failures["B2"].attempts == 1  # permanent: no retries
        # the dead block's target task is skipped, not silently dropped
        assert all(f.kind == "skipped" for k, f in report.failures.items()
                   if k != "B2")

        # every block still gets a plan; the healthy ones exactly match
        assert set(report.plans) == set(baseline.plans)
        for name in ("B1", "B3"):
            assert report.plans[name].confidence == "observed"
            assert _plan_key(report)[name] == _plan_key(baseline)[name]

        # the failed block was costed from the independence baseline
        # (no prior run offered) over tonight's loaded inputs
        assert report.degraded["B2"] == "independence"
        assert report.plans["B2"].confidence == "independence"
        assert not math.isnan(report.plans["B2"].cost)
        assert "[independence]" in report.describe()
        assert "B2" in report.describe()

    def test_prior_statistics_reproduce_the_baseline_plan(self, backend):
        baseline = _run_once(backend)
        report = _run_once(
            backend,
            faults=_permanent("B2"),
            retry=FAST,
            prior_statistics=baseline.run.observations,
        )
        # last night's statistics cover everything, so even the failed
        # block's plan matches what tonight would have chosen
        assert report.degraded["B2"] == "prior"
        assert report.plans["B2"].confidence == "prior"
        assert _plan_key(report) == _plan_key(baseline)

    def test_root_failure_degrades_dependents_to_none(self, backend):
        report = _run_once(backend, faults=_permanent("B1"), retry=FAST)
        assert _failed_blocks(report) == {"B1", "B2", "B3"}
        assert report.failures["B2"].kind == "skipped"
        assert report.failures["B3"].kind == "skipped"
        # B1's own sources loaded -> independence; B2/B3 have no input at
        # all tonight -> unoptimizable, pinned to their current plans
        assert report.degraded["B1"] == "independence"
        assert report.degraded["B2"] == "none"
        assert report.plans["B2"].confidence == "none"
        assert math.isnan(report.plans["B2"].cost)
        # NaN plans are excluded from the totals instead of poisoning them
        assert math.isfinite(report.total_estimated_cost)

    def test_transient_failure_converges_to_fault_free_report(self, backend):
        baseline = _run_once(backend)
        faults = FaultPlan(
            (FaultSpec(target="B1", kind="transient", times=2),),
            seed=CHAOS_SEED,
        )
        report = _run_once(backend, faults=faults, retry=FAST)
        assert report.ok
        assert report.degraded == {}
        assert all(p.confidence == "observed" for p in report.plans.values())
        assert _plan_key(report) == _plan_key(baseline)
        assert report.estimator.coverage() == baseline.estimator.coverage()

    def test_transient_failure_without_retries_degrades(self, backend):
        faults = FaultPlan(
            (FaultSpec(target="B1", kind="transient"),), seed=CHAOS_SEED
        )
        report = _run_once(
            backend, faults=faults,
            retry=RetryPolicy(max_retries=0, sleep=lambda s: None),
        )
        assert report.failures["B1"].kind == "transient"


def test_hung_block_times_out_and_degrades():
    """A block that never answers becomes a structured timeout failure."""
    faults = FaultPlan(
        # the delay outlives the whole test: the abandoned attempt
        # threads are daemons and never publish anything
        (FaultSpec(target="B2", kind="delay", delay=30.0),),
        seed=CHAOS_SEED,
    )
    report = _run_once(
        "columnar",
        faults=faults,
        retry=RetryPolicy(max_retries=1, block_timeout=0.1, base_delay=0.001,
                          jitter=0.0, sleep=lambda s: None),
    )
    failure = report.failures["B2"]
    assert failure.kind == "timeout" and failure.attempts == 2
    assert report.plans["B1"].confidence == "observed"


def test_truncated_source_still_optimizes():
    """A short source load is a data fault, not an execution failure."""
    faults = FaultPlan(
        (FaultSpec(target="Trade", kind="truncate", keep=0.5),),
        seed=CHAOS_SEED,
    )
    report = _run_once("columnar", faults=faults)
    assert report.ok  # the run completes; statistics describe the short load
    baseline = _run_once("columnar")
    assert (report.run.se_sizes[SE("Trade")]
            < baseline.run.se_sizes[SE("Trade")])


@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointResume:
    def test_resume_re_executes_only_unfinished_blocks(self, backend, tmp_path):
        path = tmp_path / "ckpt.json"
        name = case(WORKFLOW).build().name
        baseline = _run_once(backend)

        # night 1: B2 dies permanently; B1 and B3 complete and are journaled
        ckpt = RunCheckpoint.open(path, workflow=name, backend=backend)
        first = _run_once(backend, faults=_permanent("B2"), retry=FAST,
                          checkpoint=ckpt)
        assert _failed_blocks(first) == {"B2"}
        assert ckpt.completed == {"B1", "B3"}
        assert path.exists()

        # night 2, "new process": reopen the journal and run fault-free
        resumed = RunCheckpoint.open(path, workflow=name, backend=backend)
        assert resumed.completed == {"B1", "B3"}
        second = _run_once(backend, checkpoint=resumed)
        assert second.ok
        assert second.run.resumed == ("B1", "B3")
        assert "resumed from checkpoint" in second.describe()
        assert resumed.completed == {"B1", "B2", "B3"}

        # the resumed run is indistinguishable from a fault-free night
        assert _plan_key(second) == _plan_key(baseline)
        assert second.estimator.coverage() == baseline.estimator.coverage()

    def test_wrong_workflow_identity_rejected(self, backend, tmp_path):
        path = tmp_path / "ckpt.json"
        name = case(WORKFLOW).build().name
        ckpt = RunCheckpoint.open(path, workflow=name, backend=backend)
        _run_once(backend, faults=_permanent("B2"), retry=FAST,
                  checkpoint=ckpt)
        with pytest.raises(PersistenceError, match="workflow"):
            RunCheckpoint.open(path, workflow="other_wf", backend=backend)
        with pytest.raises(PersistenceError, match="backend"):
            RunCheckpoint.open(path, workflow=name, backend="other-engine")


def test_checkpoint_survives_process_loss_midway(tmp_path):
    """Simulated crash: journal some blocks, forget everything in memory,
    reload from disk alone and finish the run."""
    path = tmp_path / "ckpt.json"
    name = case(WORKFLOW).build().name
    ckpt = RunCheckpoint.open(path, workflow=name, backend="columnar")
    _run_once("columnar", faults=_permanent("B3"), retry=FAST,
              checkpoint=ckpt)
    del ckpt  # the "crash"

    reloaded = RunCheckpoint.load(path)
    assert reloaded.completed == {"B1", "B2"}
    report = _run_once("columnar", checkpoint=reloaded)
    assert report.ok and report.run.resumed == ("B1", "B2")


def test_corrupt_checkpoint_rejected(tmp_path):
    path = tmp_path / "ckpt.json"
    path.write_text("{nope")
    with pytest.raises(PersistenceError):
        RunCheckpoint.load(path)
    path.write_text('{"format_version": 2, "blocks": {"B1": {}}}')
    with pytest.raises(PersistenceError, match="table"):
        RunCheckpoint.load(path)


def test_checkpoint_for_another_workflow_fails_restore(tmp_path):
    """A checkpoint whose blocks the analysis does not know is refused."""
    path = tmp_path / "ckpt.json"
    ckpt = RunCheckpoint.open(path)  # no identity recorded
    _run_once("columnar", faults=_permanent("B3"), retry=FAST,
              checkpoint=ckpt)
    other = StatisticsPipeline(case(9).build())
    with pytest.raises(PersistenceError, match="unknown block"):
        other.run_once(case(9).tables(scale=0.05, seed=7),
                       checkpoint=RunCheckpoint.load(path))


def test_checkpoint_round_trip_with_tuple_keyed_histograms(tmp_path):
    """The journal persists full observed stores -- including histograms
    whose buckets are keyed by attribute-value tuples."""
    hist_stat = Statistic.hist(SE("A"), "x", "y")
    store = StatisticsStore()
    store.put(Statistic.card(SE("A", "B")), 42)
    store.put(hist_stat, Histogram(("x", "y"), {(1, 2): 3, (4, "five"): 6}))

    block = analyze(case(9).build()).blocks[0]
    output = Table({"a": [1, 2, 3], "b": ["x", "y", "z"]})
    path = tmp_path / "ckpt.json"
    ckpt = RunCheckpoint(path, workflow="w", backend="columnar")
    ckpt.record_block(block, output, {SE("A"): 10, SE("A", "B"): 42}, store)

    loaded = RunCheckpoint.load(path)
    assert loaded.completed == {block.name}
    assert loaded.se_sizes == {SE("A"): 10, SE("A", "B"): 42}
    assert loaded.statistics.get(Statistic.card(SE("A", "B"))) == 42
    assert loaded.statistics.get(hist_stat) == store.get(hist_stat)
    record = loaded.blocks[block.name]
    assert record["rows"] == 3

    # journalling more merges; it never erases what is already recorded
    more = StatisticsStore()
    more.put(Statistic.card(SE("A")), 10)
    ckpt.record_block(block, output, {SE("B"): 5}, more)
    merged = RunCheckpoint.load(path)
    assert merged.statistics.get(hist_stat) == store.get(hist_stat)
    assert merged.statistics.get(Statistic.card(SE("A"))) == 10
    assert merged.se_sizes[SE("B")] == 5


class TestSessionResilience:
    """Drift detection and plan adoption across degraded nights."""

    def test_degraded_night_falls_back_to_prior_and_recovers(self):
        sources = _sources()
        session = EtlSession(
            StatisticsPipeline(case(WORKFLOW).build()),
            drift_threshold=0.05,
            retry=FAST,
        )
        first = session.run(sources)  # healthy night: adopt plans
        assert not first.report.failures
        adopted = {k: repr(v) for k, v in session.current_trees.items()}

        # night 2: B2 permanently fails; the session hands the pipeline
        # night 1's statistics, so the failed block is optimized from them
        session.faults = _permanent("B2")
        second = session.run(sources)
        assert second.degraded
        assert second.report.degraded["B2"] == "prior"
        assert second.report.plans["B2"].confidence == "prior"
        # same data + prior fallback: nothing drifted, plans stand still
        assert not second.reoptimized
        assert {k: repr(v) for k, v in session.current_trees.items()} == adopted

        # night 3: the fault clears; real observations return, still stable
        session.faults = None
        third = session.run(sources)
        assert not third.degraded
        assert third.drift == pytest.approx(0.0, abs=1e-9)
        assert {k: repr(v) for k, v in session.current_trees.items()} == adopted

    def test_partial_statistics_still_trigger_drift_on_real_change(self):
        """Re-optimization fires when the *observed* blocks drift, even
        while a failed block's statistics are frozen at the prior run."""
        session = EtlSession(
            StatisticsPipeline(case(WORKFLOW).build()),
            drift_threshold=0.05,
            retry=FAST,
        )
        session.run(_sources())
        session.faults = _permanent("B2")
        grown = case(WORKFLOW).tables(scale=0.15, seed=7)  # 3x the data
        record = session.run(grown)
        assert record.degraded
        assert record.drift > 0.05
        assert record.reoptimized


class TestConfidenceLadder:
    """The degraded-fallback ladder with the statistics catalog on it."""

    def test_weakest_confidence_orders_the_ladder(self):
        from repro.framework.recovery import (
            CONFIDENCE_ORDER,
            weakest_confidence,
        )

        assert CONFIDENCE_ORDER == (
            "observed", "catalog", "prior", "independence", "none",
        )
        assert weakest_confidence([]) == "observed"
        assert weakest_confidence(["observed", "catalog"]) == "catalog"
        assert weakest_confidence(["catalog", "prior"]) == "prior"
        assert weakest_confidence(["prior", "none"]) == "none"

    def test_sources_record_which_rung_satisfied_each_se(self):
        from repro.catalog import StatisticsCatalog

        catalog = StatisticsCatalog()
        pipeline = StatisticsPipeline(case(WORKFLOW).build())
        pipeline.run_once(_sources(), stats_catalog=catalog)
        report = pipeline.run_once(
            _sources(),
            stats_catalog=catalog,
            faults=_permanent("B2"),
            retry=FAST,
        )
        assert report.degraded["B2"] == "catalog"
        assert report.plans["B2"].confidence == "catalog"
        # per-SE provenance: every gap of B2 was filled from the catalog
        assert "B2" in report.degraded_sources
        per_se = report.degraded_sources["B2"]
        assert per_se and set(per_se.values()) == {"catalog"}
        # the warm run tapped nothing, so on a failure night *every*
        # block's estimates trace back to the catalog -- the provenance
        # map says so explicitly
        for block_sources in report.degraded_sources.values():
            assert set(block_sources.values()) == {"catalog"}
        assert "[catalog]" in report.describe()

    def test_catalog_outranks_prior_by_default(self):
        from repro.catalog import StatisticsCatalog

        catalog = StatisticsCatalog()
        pipeline = StatisticsPipeline(case(WORKFLOW).build())
        healthy = pipeline.run_once(_sources(), stats_catalog=catalog)
        report = pipeline.run_once(
            _sources(),
            stats_catalog=catalog,
            prior_statistics=healthy.run.observations,
            faults=_permanent("B2"),
            retry=FAST,
        )
        assert report.degraded["B2"] == "catalog"

    def test_fresher_prior_outranks_the_catalog(self):
        import time

        from repro.catalog import StatisticsCatalog

        catalog = StatisticsCatalog()
        pipeline = StatisticsPipeline(case(WORKFLOW).build())
        healthy = pipeline.run_once(_sources(), stats_catalog=catalog)
        report = pipeline.run_once(
            _sources(),
            stats_catalog=catalog,
            prior_statistics=healthy.run.observations,
            prior_observed_at=time.time() + 3600,  # prior file is newer
            faults=_permanent("B2"),
            retry=FAST,
        )
        assert report.degraded["B2"] == "prior"

    def test_degraded_cardinalities_returns_per_se_sources(self):
        """Direct unit coverage of the three-tuple contract."""
        from repro.framework.recovery import degraded_cardinalities

        pipeline = StatisticsPipeline(case(WORKFLOW).build())
        report = pipeline.run_once(
            _sources(), faults=_permanent("B2"), retry=FAST
        )
        cards, confidence, sources = degraded_cardinalities(
            report.analysis,
            report.run,
            report.catalog,
            report.estimator,
        )
        assert set(confidence) == set(sources)
        for block, per_se in sources.items():
            labels = set(per_se.values())
            from repro.framework.recovery import weakest_confidence

            assert confidence[block] == weakest_confidence(labels)
