"""Tests for the repeated-execution session."""

import random

import pytest

from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.engine.table import Table
from repro.framework.pipeline import StatisticsPipeline
from repro.framework.session import EtlSession


def drift_workflow():
    catalog = Catalog()
    catalog.add_relation("F", {"a": 50, "b": 40, "id": 1000})
    catalog.add_relation("A", {"a": 50, "x": 10})
    catalog.add_relation("B", {"b": 40, "y": 10})
    f, a, b = Source(catalog, "F"), Source(catalog, "A"), Source(catalog, "B")
    flow = Join(Join(f, a, "a"), b, "b")
    return Workflow("drift", catalog, [Target(flow, "out")])


def night(a_cov: float, b_cov: float, seed: int, n: int = 800):
    rng = random.Random(seed)
    f = Table(
        {
            "a": [rng.randint(1, 50) for _ in range(n)],
            "b": [rng.randint(1, 40) for _ in range(n)],
            "id": list(range(n)),
        }
    )
    ak = rng.sample(range(1, 51), max(int(50 * a_cov), 1))
    bk = rng.sample(range(1, 41), max(int(40 * b_cov), 1))
    return {
        "F": f,
        "A": Table({"a": ak, "x": [v % 10 + 1 for v in ak]}),
        "B": Table({"b": bk, "y": [v % 10 + 1 for v in bk]}),
    }


class TestEtlSession:
    def test_history_accumulates(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        for i in range(3):
            session.run(night(0.5, 0.5, seed=i))
        assert [r.index for r in session.history] == [0, 1, 2]
        assert len(session.cost_history()) == 3

    def test_first_run_executes_initial_plan(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        record = session.run(night(0.5, 0.5, seed=1))
        assert record.executed_trees == {}
        assert record.reoptimized

    def test_later_runs_execute_chosen_plans(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        first = session.run(night(0.1, 0.9, seed=1))
        second = session.run(night(0.1, 0.9, seed=2))
        assert second.executed_trees == first.report.chosen_trees

    def test_adaptation_flips_join_order(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        session.run(night(0.08, 0.95, seed=1))  # A is tiny -> join A first
        plan_early = str(session.current_trees["B1"])
        session.run(night(0.95, 0.08, seed=2))  # B is tiny now
        session.run(night(0.95, 0.08, seed=3))
        plan_late = str(session.current_trees["B1"])
        assert plan_early != plan_late

    def test_reoptimize_every_n(self):
        session = EtlSession(
            StatisticsPipeline(drift_workflow()), reoptimize_every=2
        )
        r0 = session.run(night(0.5, 0.5, seed=0))
        r1 = session.run(night(0.5, 0.5, seed=1))
        r2 = session.run(night(0.5, 0.5, seed=2))
        assert r0.reoptimized and not r1.reoptimized and r2.reoptimized

    def test_actual_cost_positive_and_finite(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        record = session.run(night(0.5, 0.5, seed=4))
        assert record.actual_plan_cost > 0


class TestPipelineOptions:
    def test_greedy_solver_option(self):
        pipeline = StatisticsPipeline(drift_workflow(), solver="greedy")
        report = pipeline.run_once(night(0.5, 0.5, seed=1))
        assert report.selection.method == "greedy"
        assert report.selection.is_valid

    def test_cpu_weighted_cost_model(self):
        pipeline = StatisticsPipeline(
            drift_workflow(), memory_weight=0.0, cpu_weight=1.0
        )
        # first run: CPU costs come from the coarse default; still solvable
        report = pipeline.run_once(night(0.5, 0.5, seed=1))
        assert report.selection.is_valid
        # second run: CPU costs now use the observed SE sizes
        report2 = pipeline.run_once(night(0.5, 0.5, seed=2))
        assert report2.selection.is_valid

    def test_hash_metric_optimizer(self):
        pipeline = StatisticsPipeline(drift_workflow(), cost_metric="hash")
        report = pipeline.run_once(night(0.5, 0.5, seed=1))
        assert report.total_estimated_cost <= report.total_initial_cost

    def test_plan_override_reanalyzes_observability(self):
        """Running a re-ordered plan must re-derive observability: the
        selection for the new plan observes different SEs."""
        pipeline = StatisticsPipeline(drift_workflow())
        report1 = pipeline.run_once(night(0.1, 0.9, seed=1))
        trees = report1.chosen_trees
        report2 = pipeline.run_once(night(0.1, 0.9, seed=2), trees=trees)
        assert report2.selection.is_valid
        # the report's analysis reflects the executed plan
        block = report2.analysis.blocks[0]
        assert str(block.initial_tree) == str(trees["B1"])


class TestDriftPolicy:
    def test_quiet_data_keeps_plan(self):
        session = EtlSession(
            StatisticsPipeline(drift_workflow()), drift_threshold=0.5
        )
        session.run(night(0.5, 0.5, seed=9))
        # same data again: zero drift, no re-adoption
        record = session.run(night(0.5, 0.5, seed=9))
        assert record.drift == pytest.approx(0.0)
        assert not record.reoptimized

    def test_big_shift_triggers_reoptimization(self):
        session = EtlSession(
            StatisticsPipeline(drift_workflow()), drift_threshold=0.5
        )
        session.run(night(0.1, 0.9, seed=1))
        record = session.run(night(0.95, 0.1, seed=2))
        assert record.drift > 0.5
        assert record.reoptimized

    def test_drift_recorded_even_with_periodic_policy(self):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        session.run(night(0.5, 0.5, seed=3))
        record = session.run(night(0.8, 0.5, seed=4))
        assert record.drift >= 0.0


class TestSessionPersistence:
    def test_save_and_resume(self, tmp_path):
        session = EtlSession(StatisticsPipeline(drift_workflow()))
        session.run(night(0.3, 0.7, seed=11))
        path = tmp_path / "state.json"
        session.save_state(path)

        resumed = EtlSession.resume(
            StatisticsPipeline(drift_workflow()), path, drift_threshold=0.5
        )
        assert resumed.current_trees.keys() == session.current_trees.keys()
        record = resumed.run(night(0.3, 0.7, seed=11))
        # the resumed session executes the previously adopted plan and,
        # with identical data, measures no drift
        assert str(record.executed_trees["B1"]) == str(
            session.current_trees["B1"]
        )


class TestStreamingPipeline:
    def test_streaming_executor_option(self):
        pipeline = StatisticsPipeline(drift_workflow(), executor="streaming")
        report = pipeline.run_once(night(0.5, 0.5, seed=6))
        assert report.selection.is_valid
        have, total = report.estimator.coverage()
        assert have == total

    def test_streaming_matches_columnar_pipeline(self):
        data = night(0.4, 0.6, seed=8)
        columnar = StatisticsPipeline(drift_workflow()).run_once(data)
        streaming = StatisticsPipeline(
            drift_workflow(), executor="streaming"
        ).run_once(data)
        assert columnar.estimator.all_cardinalities() == pytest.approx(
            streaming.estimator.all_cardinalities()
        )
        assert {n: str(p.tree) for n, p in columnar.plans.items()} == {
            n: str(p.tree) for n, p in streaming.plans.items()
        }
