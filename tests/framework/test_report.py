"""Tests for the markdown run report."""

import pytest

from repro.framework.pipeline import StatisticsPipeline
from repro.framework.report import render_report, write_report
from repro.workloads import case


@pytest.fixture(scope="module")
def report():
    wfcase = case(11)
    pipeline = StatisticsPipeline(wfcase.build())
    return pipeline.run_once(wfcase.tables(scale=0.15, seed=2))


class TestRenderReport:
    def test_sections_present(self, report):
        text = render_report(report)
        for heading in (
            "# Statistics run report",
            "## Optimizable blocks",
            "## Observed statistics",
            "## Learned cardinalities",
            "## Plan decisions",
            "## Physical operator choices",
            "## Timings",
        ):
            assert heading in text

    def test_every_observed_statistic_listed(self, report):
        text = render_report(report)
        for stat in report.selection.observed:
            assert repr(stat) in text

    def test_every_block_listed(self, report):
        text = render_report(report)
        for block in report.analysis.blocks:
            assert block.name in text

    def test_estimates_optional(self, report):
        text = render_report(report, include_estimates=False)
        assert "## Learned cardinalities" not in text

    def test_physical_optional(self, report):
        text = render_report(report, include_physical=False)
        assert "## Physical operator choices" not in text

    def test_write_report(self, report, tmp_path):
        path = tmp_path / "run.md"
        text = write_report(report, path)
        assert path.read_text() == text

    def test_linear_flow_notes_no_joins(self):
        wfcase = case(2)
        pipeline = StatisticsPipeline(wfcase.build())
        rep = pipeline.run_once(wfcase.tables(scale=0.2, seed=1))
        text = render_report(rep)
        assert "no joins (linear flow)" in text
