"""End-to-end correctness: the paper's core guarantee.

After selecting a minimal statistics set, instrumenting the initial plan and
running it once, the estimator must produce the cardinality of EVERY SE in
ℰ *exactly* (exact histograms admit no estimation error, Section 3.1).
Verified against brute-force ground truth on a spread of suite workflows.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.framework.pipeline import StatisticsPipeline
from repro.workloads import case

# a spread: linear, pinned-reject, star, chain, aggregation, boundary-UDF,
# cyclic, multi-target
SAMPLE = [1, 5, 7, 9, 11, 12, 17, 18, 20, 21, 22, 23, 25, 27, 29, 30]


@pytest.mark.parametrize("number", SAMPLE)
@pytest.mark.parametrize("solver", ["ilp", "greedy"])
def test_estimates_equal_ground_truth(number, solver):
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    problem = build_problem(catalog, CostModel(workflow.catalog))
    result = solve_ilp(problem) if solver == "ilp" else solve_greedy(problem)
    assert result.is_valid

    sources = wfcase.tables(scale=0.12 if number in (21, 29) else 0.2, seed=11)
    taps = TapSet(result.observed)
    run = Executor(analysis).run(sources, taps=taps)
    assert taps.missing() == []

    estimator = CardinalityEstimator(catalog, run.observations)
    have, total = estimator.coverage()
    assert have == total, f"uncovered: {estimator.missing()}"

    truth = ground_truth_cardinalities(analysis, sources)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual), (
            f"wf{number}: estimate for {se!r} diverged"
        )


@pytest.mark.parametrize("number", [9, 11, 20])
def test_without_union_division_still_exact(number):
    wfcase = case(number)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis, GeneratorOptions(union_division=False))
    problem = build_problem(catalog, CostModel(workflow.catalog))
    result = solve_ilp(problem)
    sources = wfcase.tables(scale=0.2, seed=3)
    taps = TapSet(result.observed)
    run = Executor(analysis).run(sources, taps=taps)
    estimator = CardinalityEstimator(catalog, run.observations)
    truth = ground_truth_cardinalities(analysis, sources)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual)


def test_pipeline_report_improves_or_matches_initial_plan():
    wfcase = case(12)  # chain: fact -> accounts -> customers
    pipeline = StatisticsPipeline(wfcase.build())
    report = pipeline.run_once(wfcase.tables(scale=0.3, seed=5))
    assert report.total_estimated_cost <= report.total_initial_cost
    assert report.selection.is_valid
    # the report exposes per-step timings
    assert set(report.timings) == {
        "enumerate",
        "selection",
        "execution",
        "optimization",
    }


def test_optimized_plan_cost_verified_by_execution():
    """The optimizer's chosen tree, when actually executed, produces
    intermediate sizes matching its own estimates."""
    wfcase = case(11)
    workflow = wfcase.build()
    pipeline = StatisticsPipeline(workflow)
    sources = wfcase.tables(scale=0.3, seed=5)
    report = pipeline.run_once(sources)
    rerun = Executor(report.analysis).run(sources, trees=report.chosen_trees)
    for block in report.analysis.blocks:
        plan = report.plans[block.name]
        from repro.algebra.plans import internal_ses

        for se in internal_ses(plan.tree):
            assert rerun.se_sizes[se] == pytest.approx(
                report.estimator.cardinality(se)
            )
