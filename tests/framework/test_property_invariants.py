"""Property-based tests (hypothesis) on the selection machinery.

These check algebraic invariants of the optimization framework over
randomly generated hitting-set instances -- independent of any workflow:

- the ILP optimum is never above the greedy's cost;
- adding CSS alternatives never increases the optimum (more options);
- making statistics free never increases the optimum;
- the closure is monotone and idempotent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import SubExpression
from repro.core.costs import INFINITE, CostModel
from repro.core.css import CSS, CssCatalog
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.algebra.schema import Catalog

SE = SubExpression.of


class _Costs(CostModel):
    def __init__(self, table):
        super().__init__(Catalog())
        self.table = table

    def cost(self, stat, observable=True):
        if not observable:
            return INFINITE
        return float(self.table.get(stat, 5.0))


@st.composite
def instances(draw):
    """A random feasible selection instance.

    Statistics s0..s(n-1); the first k are observable with random costs;
    required statistics each get at least one CSS whose inputs are
    observable (feasibility by construction) plus random extra CSSs.
    """
    n = draw(st.integers(4, 12))
    stats = [Statistic.card(SE(f"s{i}")) for i in range(n)]
    n_obs = draw(st.integers(2, n))
    observable = stats[:n_obs]
    costs = {
        s: draw(st.integers(1, 50)) for s in observable
    }
    catalog = CssCatalog()
    for s in observable:
        catalog.mark_observable(s)

    n_req = draw(st.integers(1, max(1, n // 2)))
    required = draw(
        st.lists(st.sampled_from(stats), min_size=n_req, max_size=n_req)
    )
    for r in required:
        catalog.require(r)
        if r not in set(observable):
            inputs = draw(
                st.lists(
                    st.sampled_from(observable), min_size=1, max_size=3
                )
            )
            catalog.add(CSS(r, tuple(dict.fromkeys(inputs)), "J1"))
    n_extra = draw(st.integers(0, 6))
    for _ in range(n_extra):
        target = draw(st.sampled_from(stats))
        inputs = draw(
            st.lists(st.sampled_from(stats), min_size=1, max_size=3)
        )
        inputs = tuple(s for s in dict.fromkeys(inputs) if s != target)
        if inputs:
            catalog.add(CSS(target, inputs, "X"))
    return catalog, _Costs(costs)


@given(instances())
@settings(max_examples=40, deadline=None)
def test_ilp_beats_or_matches_greedy(instance):
    catalog, costs = instance
    problem = build_problem(catalog, costs)
    ilp = solve_ilp(problem)
    greedy = solve_greedy(problem)
    assert ilp.is_valid and greedy.is_valid
    assert ilp.total_cost <= greedy.total_cost + 1e-9


@given(instances())
@settings(max_examples=30, deadline=None)
def test_more_alternatives_never_hurt(instance):
    catalog, costs = instance
    problem = build_problem(catalog, costs)
    base = solve_ilp(problem).total_cost
    # add an extra CSS for each required stat over observable inputs
    observable = sorted(catalog.observable, key=lambda s: s.sort_key())
    for r in sorted(catalog.required, key=lambda s: s.sort_key()):
        catalog.add(CSS(r, (observable[0],), "EXTRA"))
    richer = solve_ilp(build_problem(catalog, costs)).total_cost
    assert richer <= base + 1e-9


@given(instances())
@settings(max_examples=30, deadline=None)
def test_free_statistics_never_hurt(instance):
    catalog, costs = instance
    problem = build_problem(catalog, costs)
    base = solve_ilp(problem).total_cost
    free = set(list(sorted(catalog.observable, key=lambda s: s.sort_key()))[:1])
    cheaper = solve_ilp(
        build_problem(catalog, costs, free_statistics=free)
    ).total_cost
    assert cheaper <= base + 1e-9


@given(instances(), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_closure_monotone_idempotent(instance, k):
    catalog, costs = instance
    problem = build_problem(catalog, costs)
    observable = sorted(problem.observable)
    smaller = set(observable[:k])
    bigger = set(observable)
    c_small = problem.closure(smaller)
    c_big = problem.closure(bigger)
    assert c_small <= c_big
    # idempotent: closing an already-closed observable set adds nothing new
    assert problem.closure(c_small & set(problem.observable)) >= c_small & set(
        problem.observable
    )
