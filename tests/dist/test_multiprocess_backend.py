"""End-to-end pins for the multiprocess backend's forked worker pool.

Everything here runs real worker processes (fork + shared memory), which
is exactly what the inline-mode equivalence suites deliberately avoid --
so this file carries the ``dist`` marker and CI runs it as its own job.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.selection import build_problem
from repro.engine.backend import BackendExecutor, get_backend
from repro.engine.dist import MultiprocessBackend, ShardExecutionError
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.scheduler import RetryPolicy, classify_error
from repro.quality import ContractSet, QualityGate
from repro.workloads import case

pytestmark = pytest.mark.dist

WORKFLOW = 21
NO_FLOOR = {"min_shard_rows": 0}


def _prepared(number=WORKFLOW, scale=0.05, seed=7):
    wfcase = case(number)
    analysis = analyze(wfcase.build())
    catalog = generate_css(analysis)
    selection = solve_greedy(
        build_problem(catalog, CostModel(wfcase.build().catalog))
    )
    sources = wfcase.tables(scale=scale, seed=seed)
    return analysis, selection, sources


def _pool_backend(shards, **kwargs):
    kwargs.setdefault("factors", NO_FLOOR)
    return MultiprocessBackend(shards=shards, inline=False, **kwargs)


def _run(analysis, selection, sources, backend, **kwargs):
    return BackendExecutor(analysis, backend).run(
        sources, taps=backend.make_taps(selection.observed), **kwargs
    )


def _assert_equivalent(run, ref, selection):
    assert set(run.targets) == set(ref.targets)
    for name, table in ref.targets.items():
        attrs = sorted(table.attrs)
        assert sorted(run.targets[name].rows(attrs)) == sorted(
            table.rows(attrs)
        ), name
    assert run.se_sizes == ref.se_sizes
    for stat in selection.observed:
        assert run.observations.maybe(stat) == ref.observations.get(stat), stat


class TestPoolEquivalence:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_pool_run_matches_columnar(self, shards):
        analysis, selection, sources = _prepared()
        columnar = get_backend("columnar")
        ref = _run(analysis, selection, sources, columnar)
        backend = _pool_backend(shards)
        try:
            run = _run(analysis, selection, sources, backend)
        finally:
            backend.close()
        _assert_equivalent(run, ref, selection)
        assert run.shard_stats["shards"] == shards
        assert run.shard_stats["tasks"] >= shards

    def test_warm_pool_reuse_across_runs(self):
        analysis, selection, sources = _prepared()
        backend = _pool_backend(2)
        try:
            first = _run(analysis, selection, sources, backend)
            pool = backend._pool
            second = _run(analysis, selection, sources, backend)
            assert backend._pool is pool  # same analysis: the pool stayed warm
        finally:
            backend.close()
        assert first.se_sizes == second.se_sizes


class TestQuarantineFingerprint:
    DIRTY = FaultPlan(
        (
            FaultSpec(target="Trade", kind="corrupt-row", fraction=0.02),
            FaultSpec(target="DimAccount", kind="null-burst", rows=3),
            FaultSpec(target="DimSecurity", kind="type-flip", fraction=0.01),
        ),
        seed=1337,
    )

    def _dirty_run(self, backend):
        wfcase = case(25)
        sources = wfcase.tables(scale=0.05, seed=7)
        gate = QualityGate(contracts=ContractSet.infer(sources))
        return BackendExecutor(analyze(wfcase.build()), backend).run(
            sources, faults=self.DIRTY.injector(), quality=gate
        )

    @staticmethod
    def _fingerprint(run):
        return {
            "quarantined": {
                name: list(table.rows())
                for name, table in run.quarantined.items()
            },
            "violations": [
                (v.source, v.row, v.column, v.code) for v in run.violations
            ],
            "targets": {
                name: sorted(table.rows(sorted(table.attrs)), key=repr)
                for name, table in run.targets.items()
            },
            "se_sizes": {repr(se): n for se, n in run.se_sizes.items()},
        }

    def test_dirty_extract_fingerprints_match_at_four_shards(self):
        reference = self._fingerprint(self._dirty_run(get_backend("columnar")))
        assert reference["quarantined"]  # the injection actually bit
        backend = _pool_backend(4)
        try:
            sharded = self._fingerprint(self._dirty_run(backend))
        finally:
            backend.close()
        assert sharded == reference


class TestWorkerFaults:
    def test_worker_kill_is_retried_to_the_clean_result(self):
        analysis, selection, sources = _prepared()
        ref = _run(analysis, selection, sources, get_backend("columnar"))
        plan = FaultPlan(
            (FaultSpec(target="B1", kind="worker-kill"),), seed=5
        )
        backend = _pool_backend(2)
        try:
            run = _run(
                analysis, selection, sources, backend,
                faults=plan.injector(),
            )
        finally:
            backend.close()
        _assert_equivalent(run, ref, selection)
        assert run.shard_stats["retries"] >= 1

    def test_worker_hang_times_out_and_retries(self):
        analysis, selection, sources = _prepared()
        ref = _run(analysis, selection, sources, get_backend("columnar"))
        plan = FaultPlan(
            (FaultSpec(target="B1", kind="worker-hang", delay=30.0),),
            seed=5,
        )
        backend = _pool_backend(2, shard_timeout=1.5)
        try:
            run = _run(
                analysis, selection, sources, backend,
                faults=plan.injector(),
            )
        finally:
            backend.close()
        _assert_equivalent(run, ref, selection)
        assert run.shard_stats["retries"] >= 1

    def test_exhausted_retries_surface_as_transient(self):
        # a fault-armed run is failure-capturing: the exhausted shard
        # budget lands in run.failures as a *transient* structured failure
        analysis, selection, sources = _prepared()
        plan = FaultPlan(
            (FaultSpec(target="B1", kind="worker-kill", times=10),),
            seed=5,
        )
        backend = _pool_backend(2, shard_retries=0)
        try:
            run = _run(
                analysis, selection, sources, backend,
                faults=plan.injector(),
            )
        finally:
            backend.close()
        failure = run.failures["B1"]
        assert failure.kind == "transient"
        assert failure.error_type == "ShardExecutionError"

    def test_pool_broken_at_submit_time_is_retried(self):
        # a killed worker can break the pool *between* submits, making
        # pool.submit itself raise BrokenProcessPool; the dispatcher must
        # fail those shards into the retry round, not let the broken
        # pool escape as a permanent scheduler failure
        from concurrent.futures.process import BrokenProcessPool

        class _BrokenAtSubmit:
            def __init__(self, inner):
                self.inner = inner

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died between submits")

            def shutdown(self, **kwargs):
                self.inner.shutdown(**kwargs)

        analysis, selection, sources = _prepared()
        ref = _run(analysis, selection, sources, get_backend("columnar"))
        backend = _pool_backend(2)
        try:
            _run(analysis, selection, sources, backend)  # warm the pool
            backend._pool = _BrokenAtSubmit(backend._pool)
            run = _run(analysis, selection, sources, backend)
        finally:
            backend.close()
        _assert_equivalent(run, ref, selection)
        assert run.shard_stats["retries"] >= 2  # both shards re-dispatched

    def test_shard_execution_error_classifies_as_transient(self):
        assert ShardExecutionError.transient is True
        assert classify_error(ShardExecutionError("pool died")) == "transient"

    def test_scheduler_retry_heals_an_exhausted_block(self):
        analysis, selection, sources = _prepared()
        # fires once: the backend's first (and only) attempt dies, the
        # scheduler-level retry re-runs the block against a fresh pool
        plan = FaultPlan(
            (FaultSpec(target="B1", kind="worker-kill"),), seed=5
        )
        ref = _run(analysis, selection, sources, get_backend("columnar"))
        backend = _pool_backend(2, shard_retries=0)
        try:
            run = _run(
                analysis, selection, sources, backend,
                faults=plan.injector(),
                retry=RetryPolicy(max_retries=1, base_delay=0.01),
            )
        finally:
            backend.close()
        assert not run.failures
        _assert_equivalent(run, ref, selection)


class TestPipelineWiring:
    def test_shards_imply_the_multiprocess_backend(self):
        from repro.framework.pipeline import StatisticsPipeline

        wfcase = case(WORKFLOW)
        pipeline = StatisticsPipeline(wfcase.build(), shards=2)
        assert pipeline.backend == "multiprocess"
        try:
            report = pipeline.run_once(wfcase.tables(scale=0.05, seed=7))
            assert report.shard_stats
            assert report.shard_stats["shards"] >= 1
        finally:
            pipeline.close()

    def test_shard_metrics_are_exported(self):
        from repro.framework.pipeline import StatisticsPipeline
        from repro.obs import MetricsRegistry

        wfcase = case(WORKFLOW)
        pipeline = StatisticsPipeline(wfcase.build(), shards=2)
        registry = MetricsRegistry()
        try:
            pipeline.run_once(
                wfcase.tables(scale=0.05, seed=7), metrics=registry
            )
        finally:
            pipeline.close()
        text = registry.render_prometheus()
        assert "etl_shard_count" in text
        assert "etl_shard_tasks_total" in text
