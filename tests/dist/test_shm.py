"""Round-trips for the shared-memory columnar table codec."""

import pytest

from repro.engine.dist.shm import ShmRef, attach_table, encode_table
from repro.engine.table import Table


def _round_trip(table: Table) -> Table:
    ref, segment = encode_table(table)
    try:
        return attach_table(ref)
    finally:
        segment.close()
        segment.unlink()


CASES = {
    "ints": {"a": [1, -2, 3, 0]},
    "floats": {"x": [1.5, -0.25, 0.0]},
    "strings": {"s": ["alpha", "", "étl"]},
    "none_bearing": {"n": [1, None, 3]},
    "mixed": {"m": [1, "two", 3.0, None]},
    "bools": {"b": [True, False, True]},
    "huge_ints": {"h": [2**70, -(2**70), 0]},  # overflow the i8 rung
    "multi_column": {
        "id": [1, 2, 3],
        "price": [9.5, 8.25, 7.0],
        "name": ["a", "b", "c"],
    },
    "zero_rows": {"a": [], "b": []},
}


@pytest.mark.parametrize("name", CASES)
def test_round_trip_preserves_rows_and_types(name):
    table = Table(CASES[name])
    out = _round_trip(table)
    assert out.attrs == table.attrs
    assert out.num_rows == table.num_rows
    for attr in table.attrs:
        original = list(table.column(attr))
        decoded = list(out.column(attr))
        assert decoded == original
        assert [type(v) for v in decoded] == [type(v) for v in original]


def test_ref_is_tiny_and_picklable():
    import pickle

    table = Table({"a": list(range(1000))})
    ref, segment = encode_table(table)
    try:
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert isinstance(clone, ShmRef)
        assert len(pickle.dumps(ref)) < 200  # a handle, not the data
    finally:
        segment.close()
        segment.unlink()


def test_attach_leaves_parent_as_sole_owner():
    from multiprocessing import shared_memory

    table = Table({"a": [1, 2, 3]})
    ref, segment = encode_table(table)
    attach_table(ref)  # decodes and closes its own handle
    # the segment is still alive for further attaches ...
    again = attach_table(ref)
    assert list(again.column("a")) == [1, 2, 3]
    # ... until the parent unlinks it exactly once
    segment.close()
    segment.unlink()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ref.name)
