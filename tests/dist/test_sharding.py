"""Unit tests for the shard planner (row ranges, routing, strategies)."""

import pytest

from repro.algebra.blocks import analyze
from repro.engine.dist.sharding import (
    ShardPlan,
    concat_tables,
    hash_partition_indexes,
    plan_block_shards,
    reject_is_sharded,
    shard_range,
    stable_shard_of,
)
from repro.engine.table import Table
from repro.workloads import case, suite

NO_FLOOR = {"min_shard_rows": 0}


class TestShardRange:
    @pytest.mark.parametrize("rows", [0, 1, 2, 5, 7, 100, 101])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_ranges_tile_the_table(self, rows, shards):
        ranges = [shard_range(rows, shards, i) for i in range(shards)]
        # contiguous, in order, exactly covering [0, rows)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == rows
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        # balanced within one row
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_trailing_shards_may_be_empty(self):
        lo, hi = shard_range(2, 4, 3)
        assert lo == hi


class TestStableHash:
    def test_deterministic_and_in_range(self):
        for shards in (2, 3, 8):
            for value in [(1,), ("x", 2), (None,), (3.5, "y")]:
                route = stable_shard_of(value, shards)
                assert 0 <= route < shards
                assert route == stable_shard_of(value, shards)

    def test_spreads_keys(self):
        routes = {stable_shard_of((i,), 4) for i in range(100)}
        assert routes == {0, 1, 2, 3}

    def test_partition_indexes_are_disjoint_and_complete(self):
        table = Table({"k": [i % 13 for i in range(60)]})
        parts = [
            hash_partition_indexes(table, ("k",), 3, i) for i in range(3)
        ]
        seen = sorted(i for part in parts for i in part)
        assert seen == list(range(60))
        # co-located keys: every occurrence of a key lands in one shard
        for part in parts:
            keys = {table.column("k")[i] for i in part}
            for other in parts:
                if other is not part:
                    assert keys.isdisjoint(
                        {table.column("k")[i] for i in other}
                    )


def _block_env(number: int):
    wfcase = case(number)
    analysis = analyze(wfcase.build())
    env = wfcase.tables(scale=0.05, seed=7)
    return analysis, env


class TestPlanStrategy:
    def test_one_shard_is_single(self):
        analysis, env = _block_env(21)
        block = analysis.blocks[0]
        plan = plan_block_shards(
            block, block.initial_tree, env, 1, NO_FLOOR
        )
        assert plan == ShardPlan(strategy="single", shards=1)

    def test_broadcast_spine_is_largest_base(self):
        analysis, env = _block_env(21)
        block = analysis.blocks[0]
        plan = plan_block_shards(
            block, block.initial_tree, env, 4, NO_FLOOR
        )
        assert plan.strategy in ("broadcast", "hash")
        if plan.strategy == "broadcast":
            sizes = {
                name: env[inp.base_name].num_rows
                for name, inp in block.inputs.items()
            }
            assert sizes[plan.spine] == max(sizes.values())

    def test_min_shard_rows_caps_the_shard_count(self):
        analysis, env = _block_env(21)
        block = analysis.blocks[0]
        spine_rows = max(
            env[inp.base_name].num_rows for inp in block.inputs.values()
        )
        plan = plan_block_shards(
            block,
            block.initial_tree,
            env,
            64,
            {"min_shard_rows": spine_rows},  # one worker's worth of rows
        )
        assert plan.strategy == "single"
        capped = plan_block_shards(
            block,
            block.initial_tree,
            env,
            64,
            {"min_shard_rows": max(spine_rows // 3, 1)},
        )
        assert capped.shards <= 3

    def test_every_suite_block_gets_a_plan(self):
        for wfcase in suite():
            analysis = analyze(wfcase.build())
            env = wfcase.tables(scale=0.02, seed=3)
            for block in analysis.blocks:
                if any(
                    inp.base_name not in env
                    for inp in block.inputs.values()
                ):
                    continue  # fed by an upstream block, not a source
                plan = plan_block_shards(
                    block, block.initial_tree, env, 3, NO_FLOOR
                )
                assert plan.strategy in ("broadcast", "hash", "single")
                assert 1 <= plan.shards <= 3
                if plan.strategy == "broadcast":
                    assert plan.spine in block.inputs
                if plan.strategy == "hash":
                    assert plan.key

    def test_duplicate_base_tables_force_single(self):
        analysis, env = _block_env(21)
        block = analysis.blocks[0]
        inputs = list(block.inputs.values())
        if len(inputs) < 2:
            pytest.skip("needs a multi-input block")
        # alias two inputs onto one base table: a self-join shape
        import dataclasses

        first, second = list(block.inputs)[:2]
        aliased = dict(block.inputs)
        aliased[second] = dataclasses.replace(
            aliased[second], base_name=aliased[first].base_name
        )
        selfjoin = dataclasses.replace(block, inputs=aliased)
        plan = plan_block_shards(
            selfjoin, block.initial_tree, env, 4, NO_FLOOR
        )
        assert plan == ShardPlan(strategy="single", shards=1)


class TestRejectRouting:
    def test_hash_rejects_are_always_sharded(self):
        from repro.algebra.expressions import RejectSE, SubExpression

        rej = RejectSE(
            SubExpression.of("A"), "k", SubExpression.of("B")
        )
        plan = ShardPlan(strategy="hash", shards=2, key=("k",))
        assert reject_is_sharded(rej, plan)

    def test_broadcast_rejects_follow_the_spine(self):
        from repro.algebra.expressions import RejectSE, SubExpression

        plan = ShardPlan(strategy="broadcast", shards=2, spine="A")
        spine_side = RejectSE(
            SubExpression.of("A"), "k", SubExpression.of("B")
        )
        other_side = RejectSE(
            SubExpression.of("B"), "k", SubExpression.of("A")
        )
        assert reject_is_sharded(spine_side, plan)
        assert not reject_is_sharded(other_side, plan)


class TestConcat:
    def test_concat_preserves_shard_order(self):
        merged = concat_tables(
            [Table({"a": [1, 2]}), Table({"a": [3]}), Table({"a": [4, 5]})]
        )
        assert list(merged.column("a")) == [1, 2, 3, 4, 5]

    def test_concat_of_nothing_fails_loudly(self):
        with pytest.raises(ValueError, match="at least one shard"):
            concat_tables([])
        with pytest.raises(ValueError, match="at least one shard"):
            concat_tables([None, None])
