"""CLI validation for ``repro-etl run --shards``."""

import os

import pytest

from repro.cli import main


class TestShardsValidation:
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_shards_exit_one_line(self, bad, capsys):
        assert main(["run", "--number", "21", "--shards", bad]) == 1
        err = capsys.readouterr().err.strip()
        assert err.splitlines() == [
            f"error: --shards must be a positive integer, got {bad}"
        ]

    def test_absurd_shards_exit_one_line(self, capsys):
        cap = (os.cpu_count() or 1) * 8
        assert main(["run", "--number", "21", "--shards", str(cap + 1)]) == 1
        err = capsys.readouterr().err.strip()
        assert len(err.splitlines()) == 1
        assert err.startswith(f"error: --shards {cap + 1} exceeds {cap}")

    def test_cap_itself_is_accepted_by_validation(self, capsys):
        # the boundary value passes validation (the run may still be slow,
        # so keep it tiny) and the banner reports the effective sharding
        assert (
            main(
                [
                    "run", "--number", "21", "--shards", "2",
                    "--scale", "0.02", "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend=multiprocess" in out
        assert "shards=2" in out


@pytest.mark.dist
class TestShardsExecution:
    def test_run_with_shards_prints_targets(self, capsys):
        assert (
            main(
                [
                    "run", "--number", "9", "--shards", "2",
                    "--scale", "0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "target" in out
