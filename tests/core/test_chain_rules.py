"""Targeted tests for the unary-chain and cross-block rules.

Covers the rule paths the big integration tests exercise only implicitly:
projection pass-through (P1/P2), multi-step chains (filter then transform),
and the group-by rules (G1/G2) across an aggregation boundary -- each
checked both at the CSS level and through the calculator on real data.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table
from repro.estimation.estimator import CardinalityEstimator

SE = SubExpression.of


def run_exact(workflow, sources):
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    selection = solve_ilp(build_problem(catalog, CostModel(workflow.catalog)))
    taps = TapSet(selection.observed)
    run = Executor(analysis).run(sources, taps=taps)
    estimator = CardinalityEstimator(catalog, run.observations)
    truth = ground_truth_cardinalities(analysis, sources)
    for se, actual in truth.items():
        assert estimator.cardinality(se) == pytest.approx(actual), se
    return analysis, catalog


class TestProjectChain:
    def _workflow(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 8, "b": 6, "junk": 50})
        cat.add_relation("R", {"b": 6, "w": 9})
        flow = Project(Source(cat, "T"), ("a", "b"))
        out = Join(flow, Source(cat, "R"), "b")
        return Workflow("w", cat, [Target(out, "out")]), cat

    def test_p1_p2_generated(self):
        workflow, _cat = self._workflow()
        catalog = generate_css(analyze(workflow))
        rules = {
            c.rule for bucket in catalog.css.values() for c in bucket
        }
        assert "P1" in rules
        # the projected stage's b-histogram derives from the raw one
        stage = [
            s for s in catalog.required
            if s.se.is_base and s.se.base_name.startswith("T@")
        ][0]
        stage_hist = Statistic.hist(SE(stage.se.base_name), "b")
        p2 = [c for c in catalog.css_for(stage_hist) if c.rule == "P2"]
        assert p2 and p2[0].inputs == (Statistic.hist(SE("T"), "b"),)

    def test_dropped_attr_not_derivable(self):
        workflow, _cat = self._workflow()
        catalog = generate_css(analyze(workflow))
        stage = [
            s for s in catalog.required
            if s.se.is_base and s.se.base_name.startswith("T@")
        ][0]
        junk_hist = Statistic.hist(SE(stage.se.base_name), "junk")
        assert not any(
            c.rule == "P2" for c in catalog.css_for(junk_hist)
        )

    def test_end_to_end_exact(self):
        workflow, _cat = self._workflow()
        sources = {
            "T": Table(
                {
                    "a": [1, 2, 3, 4, 5, 6],
                    "b": [1, 1, 2, 2, 3, 3],
                    "junk": list(range(6)),
                }
            ),
            "R": Table({"b": [1, 2, 2], "w": [7, 8, 9]}),
        }
        run_exact(workflow, sources)


class TestMultiStepChain:
    def test_filter_then_transform_then_join(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10, "b": 8})
        cat.add_relation("R", {"b": 8})
        chain = Filter(Source(cat, "T"), "a", Predicate("low", lambda v: v <= 5))
        chain = Transform(chain, "a", UdfSpec("bump", lambda v: v + 1))
        out = Join(chain, Source(cat, "R"), "b")
        workflow = Workflow("w", cat, [Target(out, "out")])
        sources = {
            "T": Table({"a": [1, 4, 6, 9, 2], "b": [1, 2, 3, 1, 2]}),
            "R": Table({"b": [1, 2, 2, 8]}),
        }
        analysis, catalog = run_exact(workflow, sources)
        # three stages on T's chain: raw, filtered, transformed
        block = analysis.blocks[0]
        chain_input = [
            inp for inp in block.inputs.values() if inp.base_name == "T"
        ][0]
        assert len(chain_input.stage_ses()) == 3


class TestGroupByRules:
    def _workflow(self):
        cat = Catalog()
        cat.add_relation("T", {"g": 5, "h": 4, "v": 40})
        cat.add_relation("R", {"g": 5, "w": 9})
        agg = Aggregate(
            Source(cat, "T"), ("g", "h"), {"n": ("count", "v")}
        )
        out = Join(agg, Source(cat, "R"), "g")
        return Workflow("w", cat, [Target(out, "out")]), cat

    def test_g1_and_g2_generated(self):
        workflow, _cat = self._workflow()
        catalog = generate_css(analyze(workflow))
        g1 = [
            c for bucket in catalog.css.values() for c in bucket
            if c.rule == "G1"
        ]
        g2 = [
            c for bucket in catalog.css.values() for c in bucket
            if c.rule == "G2"
        ]
        assert g1, "aggregate output cardinality should chain via G1"
        assert g2, "histogram on a group attribute should chain via G2"
        # G2 derives the downstream g-histogram from the upstream (g, h)
        # joint on the block output
        (g2_css,) = [c for c in g2 if c.target.attrs == ("g",)]
        (input_stat,) = g2_css.inputs
        assert input_stat.attrs == ("g", "h")

    def test_end_to_end_exact_through_aggregation(self):
        workflow, _cat = self._workflow()
        sources = {
            "T": Table(
                {
                    "g": [1, 1, 2, 2, 2, 3],
                    "h": [1, 1, 1, 2, 2, 1],
                    "v": [5, 6, 7, 8, 9, 10],
                }
            ),
            "R": Table({"g": [1, 2, 2, 5], "w": [1, 2, 3, 4]}),
        }
        run_exact(workflow, sources)
