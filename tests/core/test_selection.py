"""Tests for the selection problem, ILP (Section 5.2) and greedy (5.3)."""


import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.core.costs import INFINITE, CostModel
from repro.core.css import CSS, CssCatalog
from repro.core.generator import generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic

SE = SubExpression.of


def tiny_catalog():
    """A hand-built catalog: |T12| <- J1{H_T1^a, H_T2^a}; everything else
    trivial."""
    catalog = CssCatalog()
    c_t1 = Statistic.card(SE("T1"))
    c_t2 = Statistic.card(SE("T2"))
    c_t12 = Statistic.card(SE("T1", "T2"))
    h1 = Statistic.hist(SE("T1"), "a")
    h2 = Statistic.hist(SE("T2"), "a")
    for stat in (c_t1, c_t2, h1, h2):
        catalog.mark_observable(stat)
    for stat in (c_t1, c_t2, c_t12):
        catalog.require(stat)
    catalog.add(CSS(c_t12, (h1, h2), "J1"))
    catalog.add(CSS(c_t1, (h1,), "I1"))
    catalog.add(CSS(c_t2, (h2,), "I1"))
    return catalog


class FixedCost(CostModel):
    """Cost model with explicit per-statistic costs."""

    def __init__(self, table):
        super().__init__(Catalog())
        self.table = table

    def cost(self, stat, observable=True):
        if not observable:
            return INFINITE
        return self.table.get(stat, 1.0)


class TestBuildProblem:
    def test_infeasible_detected(self):
        catalog = CssCatalog()
        ghost = Statistic.card(SE("T1", "T2"))
        catalog.require(ghost)  # not observable, no CSS
        with pytest.raises(ValueError, match="infeasible"):
            build_problem(catalog, CostModel(Catalog()))

    def test_free_statistics_have_zero_cost(self):
        catalog = tiny_catalog()
        h1 = Statistic.hist(SE("T1"), "a")
        problem = build_problem(
            catalog, CostModel(Catalog()), free_statistics={h1}
        )
        assert problem.costs[problem.index[h1]] == 0.0

    def test_closure_chains_css(self):
        catalog = tiny_catalog()
        problem = build_problem(catalog, CostModel(Catalog()))
        h1 = problem.index[Statistic.hist(SE("T1"), "a")]
        h2 = problem.index[Statistic.hist(SE("T2"), "a")]
        closure = problem.closure({h1, h2})
        assert problem.index[Statistic.card(SE("T1", "T2"))] in closure
        assert problem.index[Statistic.card(SE("T1"))] in closure

    def test_partial_observation_insufficient(self):
        catalog = tiny_catalog()
        problem = build_problem(catalog, CostModel(Catalog()))
        h1 = problem.index[Statistic.hist(SE("T1"), "a")]
        assert not problem.is_sufficient({h1})


class TestSolvers:
    @pytest.mark.parametrize("solve", [solve_ilp, solve_greedy])
    def test_tiny_catalog_solution_valid(self, solve):
        problem = build_problem(tiny_catalog(), CostModel(Catalog()))
        result = solve(problem)
        assert result.is_valid
        assert result.total_cost < INFINITE

    def test_ilp_exploits_amortization(self):
        """Section 5's motivating example: a shared histogram makes the
        histogram pair cheaper than two per-statistic optima."""
        catalog = CssCatalog()
        c12 = Statistic.card(SE("T1", "T2"))
        c13 = Statistic.card(SE("T1", "T3"))
        h1 = Statistic.hist(SE("T1"), "j")  # shared join key
        h2 = Statistic.hist(SE("T2"), "j")
        h3 = Statistic.hist(SE("T3"), "j")
        for stat in (h1, h2, h3, c13):
            catalog.mark_observable(stat)
        catalog.require(c12)
        catalog.require(c13)
        catalog.add(CSS(c12, (h1, h2), "J1"))
        catalog.add(CSS(c13, (h1, h3), "J1"))
        costs = FixedCost({h1: 9.0, h2: 3.0, h3: 1.0, c13: 9.0})
        problem = build_problem(catalog, costs)
        result = solve_ilp(problem)
        # greedy-per-statistic would pick |T13| directly (9) + {h1,h2} (12)
        # = 21; sharing h1 gives 9 + 3 + 1 = 13
        assert result.total_cost == 13.0
        assert result.is_valid

    def test_cyclic_self_support_rejected(self):
        """Two statistics whose only CSSs reference each other must not be
        declared computable for free (the union-division cycle hazard)."""
        catalog = CssCatalog()
        a = Statistic.card(SE("A", "B"))
        b = Statistic.hist(SE("A", "B", "C"), "k")
        direct = Statistic.hist(SE("A"), "k")
        catalog.require(a)
        catalog.mark_observable(b)
        catalog.mark_observable(direct)
        catalog.add(CSS(a, (b,), "J4"))
        catalog.add(CSS(b, (a,), "J2"))  # artificial back edge
        catalog.add(CSS(a, (direct,), "J1"))
        costs = FixedCost({b: 1.0, direct: 100.0})
        problem = build_problem(catalog, costs)
        result = solve_ilp(problem)
        assert result.is_valid
        # the cheap cyclic pair is unusable without observing b directly
        observed = set(result.observed)
        assert observed == {b} or direct in observed

    def test_greedy_close_to_ilp_on_simple_case(self):
        problem = build_problem(tiny_catalog(), CostModel(Catalog()))
        ilp = solve_ilp(problem)
        greedy = solve_greedy(problem)
        # both valid; greedy may pay a couple of extra counters (it covers
        # cheap cardinalities directly before committing to histograms)
        assert ilp.is_valid and greedy.is_valid
        assert ilp.total_cost <= greedy.total_cost <= ilp.total_cost + 2

    def test_ilp_never_worse_than_greedy(self):
        cat = Catalog()
        cat.add_relation("O", {"pid": 30, "cid": 40})
        cat.add_relation("P", {"pid": 30})
        cat.add_relation("C", {"cid": 40})
        o, p, c = Source(cat, "O"), Source(cat, "P"), Source(cat, "C")
        wf = Workflow("w", cat, [Target(Join(Join(o, p, "pid"), c, "cid"), "t")])
        catalog = generate_css(analyze(wf))
        problem = build_problem(catalog, CostModel(cat))
        ilp = solve_ilp(problem)
        greedy = solve_greedy(problem)
        assert ilp.is_valid and greedy.is_valid
        assert ilp.total_cost <= greedy.total_cost

    def test_time_limit_still_returns_valid_result(self):
        problem = build_problem(tiny_catalog(), CostModel(Catalog()))
        result = solve_ilp(problem, time_limit=0.001)
        assert result.is_valid


class TestFig8Formulation:
    """The paper's Figure 5/7/8 example, end to end through the ILP."""

    def build(self):
        """Figure 5: T1 joins T3 (J13) then T2 (J12), same attribute a on
        T1 for both joins is *not* assumed -- use separate keys."""
        catalog = CssCatalog()
        t1, t2, t3 = SE("T1"), SE("T2"), SE("T3")
        t12, t13, t23, t123 = (
            SE("T1", "T2"), SE("T1", "T3"), SE("T2", "T3"), SE("T1", "T2", "T3"),
        )
        from repro.algebra.expressions import RejectJoinSE, RejectSE

        rej = RejectSE(t1, "j13", t3)
        stats = {
            "c1": Statistic.card(t1),
            "c2": Statistic.card(t2),
            "c3": Statistic.card(t3),
            "c12": Statistic.card(t12),
            "c13": Statistic.card(t13),
            "c123": Statistic.card(t123),
            "h1_12": Statistic.hist(t1, "j12"),
            "h2_12": Statistic.hist(t2, "j12"),
            "h3_13": Statistic.hist(t3, "j13"),
            "h123_13": Statistic.hist(t123, "j13"),
            "hrej_12": Statistic.hist(rej, "j12"),
        }
        observable = [
            "c1", "c2", "c3", "c13", "c123",
            "h1_12", "h2_12", "h3_13", "h123_13", "hrej_12",
        ]
        for key in observable:
            catalog.mark_observable(stats[key])
        for key in ("c1", "c2", "c3", "c12", "c13", "c123"):
            catalog.require(stats[key])
        rj = RejectJoinSE(rej, "j12", t2)
        c_rj = Statistic.card(rj)
        h1_13 = Statistic.hist(t1, "j13")
        catalog.mark_observable(h1_13)
        catalog.add(CSS(stats["c13"], (h1_13, stats["h3_13"]), "J1"))
        catalog.add(CSS(stats["c12"], (stats["h1_12"], stats["h2_12"]), "J1"))
        catalog.add(
            CSS(
                stats["c12"],
                (stats["h123_13"], stats["h3_13"], c_rj),
                "J4",
            )
        )
        catalog.add(CSS(c_rj, (stats["hrej_12"], stats["h2_12"]), "J1"))
        catalog.add(CSS(stats["c123"], (stats["h123_13"],), "I1"))
        # c23: only observable via... give it a plain J1 for completeness
        h2_23 = Statistic.hist(t2, "j23")
        h3_23 = Statistic.hist(t3, "j23")
        catalog.mark_observable(h2_23)
        catalog.mark_observable(h3_23)
        c23 = Statistic.card(t23)
        catalog.require(c23)
        catalog.add(CSS(c23, (h2_23, h3_23), "J1"))
        costs = FixedCost(
            {
                stats["c1"]: 1, stats["c2"]: 1, stats["c3"]: 1,
                stats["c13"]: 1, stats["c123"]: 1,
                stats["h1_12"]: 100, stats["h2_12"]: 100,
                h1_13: 100, stats["h3_13"]: 1,
                stats["h123_13"]: 10, stats["hrej_12"]: 30,
                h2_23: 40, h3_23: 40,
            }
        )
        return catalog, costs, stats

    def test_union_division_chosen_when_cheaper(self):
        """With Figure 7-style costs (H_T3^J13 cheap), covering |T12| via
        J4 costs 10+1+30 plus the shared H_T2^J12, beating H_T1^J12."""
        catalog, costs, stats = self.build()
        problem = build_problem(catalog, costs)
        result = solve_ilp(problem)
        assert result.is_valid
        observed = set(result.observed)
        # H_T123^J13 (10) + H_rej^J12 (30) + shared H_T2^J12 beats H_T1^J12
        assert stats["h123_13"] in observed
        assert stats["hrej_12"] in observed
        assert stats["h1_12"] not in observed


def test_ilp_falls_back_to_greedy_without_scipy(monkeypatch):
    """The library stays functional when scipy is unavailable."""
    import repro.core.ilp as ilp_module

    problem = build_problem(tiny_catalog(), CostModel(Catalog()))
    monkeypatch.setattr(ilp_module, "HAVE_SCIPY", False)
    result = ilp_module.solve_ilp(problem)
    assert result.method == "greedy"
    assert result.is_valid
