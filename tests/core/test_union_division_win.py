"""Reproducing the paper's workflow-3-magnitude union-division win.

Figure 11's headline: for workflow 3, union-division cut the observation
memory from 1,811,197 to 29,922 units (~60x).  The mechanism: a required
join cardinality whose J1 CSS needs a histogram on a *huge-domain* key of a
big relation, while the initial plan first joins that relation to a
tiny-key dimension that almost every row matches.  Union-division then
derives the same cardinality from

- the tiny-key histogram on the (observable) three-way result,
- the tiny-key histogram on the dimension, and
- statistics on a nearly-empty reject link,

none of which is large.  This test constructs exactly that shape and
asserts an order-of-magnitude reduction -- plus end-to-end exactness of the
estimates the cheap plan produces.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table
from repro.estimation.bootstrap import bootstrap_se_sizes
from repro.estimation.estimator import CardinalityEstimator

WIDE = 200_000  # the serial-number-like key domain
TINY = 4        # the status-like key domain


def build_workflow() -> Workflow:
    catalog = Catalog()
    catalog.add_relation("Events", {"serial": WIDE, "status": TINY})
    catalog.add_relation("Devices", {"serial": WIDE, "model": 50})
    catalog.add_relation("Statuses", {"status": TINY, "label": TINY})
    events = Source(catalog, "Events")
    devices = Source(catalog, "Devices")
    statuses = Source(catalog, "Statuses")
    # initial plan: the tiny status lookup first, then the wide-key join
    flow = Join(Join(events, statuses, "status"), devices, "serial")
    return Workflow("ud_win", catalog, [Target(flow, "out")])


@pytest.fixture(scope="module")
def selections():
    workflow = build_workflow()
    analysis = analyze(workflow)
    # Events is the big feed with the wide key; Devices is a modest
    # dimension (its serial histogram is size-capped and cheap).  The only
    # expensive statistic is anything serial-shaped on Events -- exactly
    # what union-division lets the optimizer avoid.
    cards = {"Events": 50_000.0, "Devices": 500.0, "Statuses": float(TINY)}
    distinct = {
        "Events": {"serial": 50_000.0, "status": TINY},
        "Devices": {"serial": 500.0, "model": 50},
        "Statuses": {"status": TINY, "label": TINY},
    }
    sizes = bootstrap_se_sizes(analysis, cards, distinct)
    cost_model = CostModel(workflow.catalog, se_sizes=sizes)
    results = {}
    for label, options in (
        ("noud", GeneratorOptions(union_division=False, fk_rules=False)),
        ("ud", GeneratorOptions(fk_rules=False)),
    ):
        catalog = generate_css(analysis, options)
        results[label] = solve_ilp(
            build_problem(catalog, cost_model), time_limit=30
        )
    return workflow, analysis, results


class TestUnionDivisionMagnitude:
    def test_order_of_magnitude_memory_win(self, selections):
        _wf, _analysis, results = selections
        noud = results["noud"].total_cost
        ud = results["ud"].total_cost
        assert ud < noud / 10, (noud, ud)

    def test_without_ud_pays_for_the_wide_key(self, selections):
        """The no-UD optimum is dominated by wide-key histograms."""
        _wf, _analysis, results = selections
        assert results["noud"].total_cost > 10_000

    def test_ud_choice_uses_reject_statistics(self, selections):
        from repro.algebra.expressions import RejectSE

        _wf, _analysis, results = selections
        observed = results["ud"].observed
        assert any(isinstance(s.se, RejectSE) for s in observed)

    def test_estimates_still_exact(self, selections):
        """The cheap UD selection loses no accuracy."""
        import random

        workflow, analysis, results = selections
        rng = random.Random(5)
        n_events, n_devices = 2_000, 300
        # statuses cover the domain, so the reject link is almost empty
        sources = {
            "Events": Table(
                {
                    "serial": [rng.randint(1, WIDE) for _ in range(n_events)],
                    "status": [rng.randint(1, TINY) for _ in range(n_events)],
                }
            ),
            "Devices": Table(
                {
                    "serial": [rng.randint(1, WIDE) for _ in range(n_devices)],
                    "model": [rng.randint(1, 50) for _ in range(n_devices)],
                }
            ),
            "Statuses": Table(
                {"status": list(range(1, TINY + 1)), "label": [1] * TINY}
            ),
        }
        catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
        taps = TapSet(results["ud"].observed)
        run = Executor(analysis).run(sources, taps=taps)
        estimator = CardinalityEstimator(catalog, run.observations)
        truth = ground_truth_cardinalities(analysis, sources)
        for se, actual in truth.items():
            assert estimator.cardinality(se) == pytest.approx(actual)
