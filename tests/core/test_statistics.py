"""Unit tests for statistic keys and the statistics store."""

import pytest

from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.core.histogram import Histogram
from repro.core.statistics import StatKind, Statistic, StatisticsStore


SE1 = SubExpression.of("T1")
SE12 = SubExpression.of("T1", "T2")


class TestStatisticKeys:
    def test_cardinality_carries_no_attrs(self):
        stat = Statistic.card(SE12)
        assert stat.kind is StatKind.CARDINALITY
        assert stat.attrs == ()
        with pytest.raises(ValueError):
            Statistic(StatKind.CARDINALITY, SE1, ("a",))

    def test_histogram_attrs_canonicalized(self):
        assert Statistic.hist(SE1, "b", "a") == Statistic.hist(SE1, "a", "b")
        assert Statistic.hist(SE1, "a", "a") == Statistic.hist(SE1, "a")

    def test_histogram_requires_attrs(self):
        with pytest.raises(ValueError):
            Statistic(StatKind.HISTOGRAM, SE1)

    def test_distinct_requires_attrs(self):
        with pytest.raises(ValueError):
            Statistic(StatKind.DISTINCT, SE1)

    def test_se_identity_is_order_insensitive(self):
        assert Statistic.card(SubExpression.of("T2", "T1")) == Statistic.card(SE12)

    def test_same_attr_different_se_differs(self):
        assert Statistic.hist(SE1, "a") != Statistic.hist(SE12, "a")

    def test_reject_statistics_are_distinct_keys(self):
        rej = RejectSE(SE1, "a", SubExpression.of("T3"))
        assert Statistic.card(rej) != Statistic.card(SE1)
        rj = RejectJoinSE(rej, "b", SubExpression.of("T2"))
        assert Statistic.card(rj) != Statistic.card(rej)

    def test_sort_key_total_order(self):
        stats = [
            Statistic.card(SE12),
            Statistic.hist(SE1, "a"),
            Statistic.card(SE1),
            Statistic.distinct(SE1, "a"),
        ]
        ordered = sorted(stats, key=lambda s: s.sort_key())
        assert len(ordered) == 4
        # deterministic: sorting twice gives the same order
        assert ordered == sorted(reversed(stats), key=lambda s: s.sort_key())


class TestStatisticsStore:
    def test_put_get_roundtrip(self):
        store = StatisticsStore()
        store.put(Statistic.card(SE1), 42)
        assert store.get(Statistic.card(SE1)) == 42
        assert store.cardinality(SE1) == 42.0

    def test_histogram_type_enforced(self):
        store = StatisticsStore()
        with pytest.raises(TypeError):
            store.put(Statistic.hist(SE1, "a"), 5)
        with pytest.raises(TypeError):
            store.put(Statistic.card(SE1), Histogram.single("a", {1: 1}))

    def test_histogram_attrs_enforced(self):
        store = StatisticsStore()
        with pytest.raises(ValueError):
            store.put(Statistic.hist(SE1, "a"), Histogram.single("b", {1: 1}))

    def test_contains_and_maybe(self):
        store = StatisticsStore()
        stat = Statistic.card(SE1)
        assert stat not in store
        assert store.maybe(stat) is None
        store.put(stat, 7)
        assert stat in store
        assert store.maybe(stat) == 7

    def test_merge_and_copy_are_independent(self):
        a, b = StatisticsStore(), StatisticsStore()
        a.put(Statistic.card(SE1), 1)
        b.put(Statistic.card(SE12), 2)
        a.merge(b)
        assert len(a) == 2
        clone = a.copy()
        clone.put(Statistic.card(SE1), 99)
        assert a.get(Statistic.card(SE1)) == 1
