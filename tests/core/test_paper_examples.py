"""The paper's worked examples, checked end to end.

These tests pin the library to specific sentences of the paper:

- the introduction's Figure 1 discussion (which statistics suffice for the
  Orders/Product/Customer flow, and how plan 1(a) changes the answer);
- the Section 5 amortization example (Figure 7);
- Equation 1-3 (the union-division derivation) on real data.
"""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.core.costs import CostModel
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.executor import Executor
from repro.engine.instrumentation import TapSet
from repro.engine.table import Table
from repro.estimation.estimator import CardinalityEstimator

SE = SubExpression.of


def figure1_workflow(plan: str) -> Workflow:
    """The three plans of Figure 1 over Orders/Product/Customer."""
    cat = Catalog()
    cat.add_relation("Orders", {"pid": 40, "cid": 60, "oid": 500})
    cat.add_relation("Product", {"pid": 40, "pname": 30})
    cat.add_relation("Customer", {"cid": 60, "cname": 50})
    o, p, c = Source(cat, "Orders"), Source(cat, "Product"), Source(cat, "Customer")
    if plan == "a":  # (Orders |x| Product) |x| Customer
        flow = Join(Join(o, p, "pid"), c, "cid")
    elif plan == "b":  # (Orders |x| Customer) |x| Product
        flow = Join(Join(o, c, "cid"), p, "pid")
    else:
        raise ValueError(plan)
    return Workflow(f"fig1{plan}", cat, [Target(flow, "W")])


class TestIntroExample:
    """Section 1: 'the set of statistics needed are the distribution of
    (Product_id, Customer_id) on Orders, (Product_id) on Product and
    (Customer_id) on Customer' -- before exploiting the executed plan."""

    def test_sufficient_statistic_set_exists(self):
        workflow = figure1_workflow("a")
        catalog = generate_css(analyze(workflow))
        problem = build_problem(catalog, CostModel(workflow.catalog))
        # force the intro's plan-agnostic set: observe the joint Orders
        # distribution plus the two dimension distributions
        joint = {
            problem.index[Statistic.hist(SE("Orders"), "cid", "pid")],
            problem.index[Statistic.hist(SE("Product"), "pid")],
            problem.index[Statistic.hist(SE("Customer"), "cid")],
        }
        assert problem.is_sufficient(joint)

    def test_plan_1a_needs_no_joint_distribution(self):
        """'If the plan 1(a) is executed, the cardinality of Order |x|
        Product can be directly observed ... likely to be much cheaper in
        terms of memory overhead since there is no multi-attribute
        distribution to be measured.'"""
        workflow = figure1_workflow("a")
        catalog = generate_css(analyze(workflow))
        result = solve_ilp(build_problem(catalog, CostModel(workflow.catalog)))
        assert all(len(s.attrs) <= 1 for s in result.observed)
        assert Statistic.card(SE("Orders", "Product")) in set(result.observed)

    def test_plan_1b_flips_the_observed_join(self):
        workflow = figure1_workflow("b")
        catalog = generate_css(analyze(workflow))
        result = solve_ilp(build_problem(catalog, CostModel(workflow.catalog)))
        observed = set(result.observed)
        assert Statistic.card(SE("Customer", "Orders")) in observed
        assert all(len(s.attrs) <= 1 for s in observed)

    @pytest.mark.parametrize("plan", ["a", "b"])
    def test_both_plans_yield_exact_estimates(self, plan):
        workflow = figure1_workflow(plan)
        analysis = analyze(workflow)
        catalog = generate_css(analysis)
        result = solve_ilp(build_problem(catalog, CostModel(workflow.catalog)))
        sources = {
            "Orders": Table(
                {
                    "pid": [(i * 7) % 40 + 1 for i in range(300)],
                    "cid": [(i * 11) % 60 + 1 for i in range(300)],
                    "oid": list(range(300)),
                }
            ),
            "Product": Table(
                {"pid": list(range(1, 31)), "pname": [i % 30 + 1 for i in range(30)]}
            ),
            "Customer": Table(
                {"cid": list(range(1, 46)), "cname": [i % 50 + 1 for i in range(45)]}
            ),
        }
        taps = TapSet(result.observed)
        run = Executor(analysis).run(sources, taps=taps)
        estimator = CardinalityEstimator(catalog, run.observations)
        from repro.engine.ground_truth import ground_truth_cardinalities

        truth = ground_truth_cardinalities(analysis, sources)
        for se, actual in truth.items():
            assert estimator.cardinality(se) == pytest.approx(actual)


class TestEquation123:
    """The union-division derivation on concrete numbers."""

    def test_union_division_identity_on_data(self):
        """|T12| = |H_T123^J13 / H_T3^J13| + |rej(T1) |x| T2| (Eq. 3)."""
        t1 = Table({"j13": [1, 1, 2, 3, 9], "j12": [5, 6, 5, 7, 8]})
        t3 = Table({"j13": [1, 2, 2]})
        t2 = Table({"j12": [5, 5, 7, 8]})

        from repro.engine.physical import hash_join

        t13, rej1, _ = hash_join(t1, t3, ("j13",), want_reject_left=True)
        t123, _, _ = hash_join(t13, t2, ("j12",))
        t12, _, _ = hash_join(t1, t2, ("j12",))
        rej_join, _, _ = hash_join(rej1, t2, ("j12",))

        h123 = t123.histogram(("j13",))
        h3 = t3.histogram(("j13",))
        survived = h123.divide(h3).total()
        assert survived + rej_join.num_rows == t12.num_rows

    def test_equation2_histogram_recovery(self):
        """H_{T'12}^J13 = H_T123^J13 / H_T3^J13 (Equation 2)."""
        t1 = Table({"j13": [1, 1, 2, 3], "j12": [5, 6, 5, 7]})
        t3 = Table({"j13": [1, 2, 2]})
        t2 = Table({"j12": [5, 5, 7]})
        from repro.engine.physical import hash_join

        t13, _, _ = hash_join(t1, t3, ("j13",))
        t123, _, _ = hash_join(t13, t2, ("j12",))
        # T'12 = rows of T1 that survive the T3 join, joined with T2
        t12_prime, _, _ = hash_join(t13, t2, ("j12",))
        # careful: T13 carries T3 multiplicity; T'12 should not. Build it
        # directly: T1 rows with j13 in T3, joined with T2.
        surviving_keys = set(t3.column("j13"))
        keep = [i for i, v in enumerate(t1.column("j13")) if v in surviving_keys]
        t1_prime = t1.take(keep)
        t12_prime, _, _ = hash_join(t1_prime, t2, ("j12",))

        recovered = t123.histogram(("j13",)).divide(t3.histogram(("j13",)))
        assert recovered == t12_prime.histogram(("j13",))
