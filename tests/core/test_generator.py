"""Tests for Algorithm 1 -- CSS generation over the rule set."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    Filter,
    Join,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.statistics import Statistic


def fig6_workflow():
    """The paper's Section 4.3 example: Orders x Product x Customer."""
    cat = Catalog()
    cat.add_relation("O", {"pid": 100, "cid": 200, "oid": 1000})
    cat.add_relation("P", {"pid": 100, "pname": 90})
    cat.add_relation("C", {"cid": 200, "cname": 180})
    o, p, c = Source(cat, "O"), Source(cat, "P"), Source(cat, "C")
    opc = Join(Join(o, p, "pid"), c, "cid")
    return Workflow("fig6", cat, [Target(opc, "W")])


SE = SubExpression.of


class TestFig6Example:
    """Assertions lifted directly from the paper's worked example."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return generate_css(analyze(fig6_workflow()))

    def test_all_se_cardinalities_required(self, catalog):
        for se in (SE("O"), SE("P"), SE("C"), SE("O", "P"), SE("C", "O"),
                   SE("C", "O", "P")):
            assert Statistic.card(se) in catalog.required

    def test_cross_product_se_not_generated(self, catalog):
        """The plan joining C with P is never generated (cross product)."""
        assert Statistic.card(SE("C", "P")) not in catalog.required

    def test_opc_j1_css_both_plans(self, catalog):
        """|OPC| gets a J1 CSS per plan: {H_OP^cid, H_C^cid} and
        {H_OC^pid, H_P^pid}."""
        css = catalog.css_for(Statistic.card(SE("C", "O", "P")))
        j1_inputs = {c.inputs for c in css if c.rule == "J1"}
        assert (
            Statistic.hist(SE("C"), "cid"),
            Statistic.hist(SE("O", "P"), "cid"),
        ) in j1_inputs
        assert (
            Statistic.hist(SE("P"), "pid"),
            Statistic.hist(SE("C", "O"), "pid"),
        ) in j1_inputs

    def test_hoc_pid_gets_j2_css(self, catalog):
        """H_OC^pid <- {H_O^{cid,pid}, H_C^cid} (rule J2)."""
        css = catalog.css_for(Statistic.hist(SE("C", "O"), "pid"))
        j2 = [c for c in css if c.rule == "J2"]
        assert any(
            set(c.inputs)
            == {
                Statistic.hist(SE("O"), "cid", "pid"),
                Statistic.hist(SE("C"), "cid"),
            }
            for c in j2
        )

    def test_hoc_pid_gets_union_division_css(self, catalog):
        """H_OC^pid also gets the J5 union-division alternative."""
        css = catalog.css_for(Statistic.hist(SE("C", "O"), "pid"))
        j5 = [c for c in css if c.rule == "J5"]
        assert len(j5) == 1
        inputs = set(j5[0].inputs)
        assert Statistic.hist(SE("C", "O", "P"), "pid") in inputs
        assert Statistic.hist(SE("P"), "pid") in inputs

    def test_union_division_j4_for_oc(self, catalog):
        css = catalog.css_for(Statistic.card(SE("C", "O")))
        j4 = [c for c in css if c.rule == "J4"]
        assert len(j4) == 1
        reject_join = [
            s for s in j4[0].inputs if isinstance(s.se, RejectJoinSE)
        ]
        assert len(reject_join) == 1
        rj = reject_join[0].se
        assert rj.reject == RejectSE(SE("O"), "pid", SE("P"))
        assert rj.other == SE("C")

    def test_reject_join_card_has_j1_css(self, catalog):
        """The side join |rej(O) x C| is not observable but has a J1 CSS
        over the reject-link and C histograms."""
        j4 = [
            c for c in catalog.css_for(Statistic.card(SE("C", "O")))
            if c.rule == "J4"
        ][0]
        rj_card = [s for s in j4.inputs if isinstance(s.se, RejectJoinSE)][0]
        assert not catalog.is_observable(rj_card)
        rules = {c.rule for c in catalog.css_for(rj_card)}
        assert "J1" in rules

    def test_identity_pass_adds_only_existing_statistics(self, catalog):
        """I2 coarsening never mints a statistic no regular rule produced."""
        regular_stats = set()
        for bucket in catalog.css.values():
            for css in bucket:
                if css.rule not in ("I1", "I2"):
                    regular_stats.add(css.target)
                    regular_stats.update(css.inputs)
        for bucket in catalog.css.values():
            for css in bucket:
                if css.rule in ("I1", "I2"):
                    assert set(css.inputs) <= regular_stats

    def test_observability_matches_initial_plan(self, catalog):
        assert catalog.is_observable(Statistic.card(SE("O", "P")))
        assert not catalog.is_observable(Statistic.card(SE("C", "O")))
        assert catalog.is_observable(Statistic.hist(SE("O"), "cid"))
        # reject link of O against P is instrumentable
        rej = RejectSE(SE("O"), "pid", SE("P"))
        assert catalog.is_observable(Statistic.hist(rej, "cid"))

    def test_union_division_disabled(self):
        catalog = generate_css(
            analyze(fig6_workflow()), GeneratorOptions(union_division=False)
        )
        rules = {
            c.rule for bucket in catalog.css.values() for c in bucket
        }
        assert "J4" not in rules and "J5" not in rules

    def test_ud_catalog_is_superset(self):
        analysis = analyze(fig6_workflow())
        with_ud = generate_css(analysis)
        without = generate_css(analysis, GeneratorOptions(union_division=False))
        assert without.counts()["css"] <= with_ud.counts()["css"]
        for target, bucket in without.css.items():
            for css in bucket:
                assert css in with_ud.css_for(target)


class TestChainRules:
    def test_filter_s1_s2(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10, "b": 20})
        cat.add_relation("R", {"b": 20})
        flow = Filter(Source(cat, "T"), "a", Predicate("p"))
        out = Join(flow, Source(cat, "R"), "b")
        catalog = generate_css(analyze(Workflow("w", cat, [Target(out, "x")])))
        # the filtered stage's cardinality <- H_raw^a (S1)
        filtered = [
            s for s in catalog.required
            if s.se.is_base and s.se.base_name.startswith("T@")
        ]
        assert filtered
        css = catalog.css_for(filtered[0])
        s1 = [c for c in css if c.rule == "S1"]
        assert s1 and s1[0].inputs == (Statistic.hist(SE("T"), "a"),)
        # H_filtered^b <- H_raw^{a,b} (S2)
        stage_name = filtered[0].se.base_name
        s2_target = Statistic.hist(SE(stage_name), "b")
        s2 = [c for c in catalog.css_for(s2_target) if c.rule == "S2"]
        assert s2 and s2[0].inputs == (Statistic.hist(SE("T"), "a", "b"),)

    def test_transform_u1_u2(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10, "b": 20})
        cat.add_relation("R", {"b": 20})
        flow = Transform(Source(cat, "T"), "a", UdfSpec("u"))
        out = Join(flow, Source(cat, "R"), "b")
        catalog = generate_css(analyze(Workflow("w", cat, [Target(out, "x")])))
        stage = [
            s for s in catalog.required
            if s.se.is_base and s.se.base_name.startswith("T@")
        ][0]
        rules = {c.rule for c in catalog.css_for(stage)}
        assert "U1" in rules
        # H^b passes through (b untouched), H^a does not (a rewritten)
        stage_name = stage.se.base_name
        assert any(
            c.rule == "U2"
            for c in catalog.css_for(Statistic.hist(SE(stage_name), "b"))
        )
        assert not any(
            c.rule == "U2"
            for c in catalog.css_for(Statistic.hist(SE(stage_name), "a"))
        )

    def test_group_by_g1(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10, "b": 20})
        cat.add_relation("R", {"a": 10})
        agg = Aggregate(Source(cat, "T"), ("a",), {"n": ("count", "b")})
        out = Join(agg, Source(cat, "R"), "a")
        catalog = generate_css(analyze(Workflow("w", cat, [Target(out, "x")])))
        g1 = [
            c for bucket in catalog.css.values() for c in bucket
            if c.rule == "G1"
        ]
        assert len(g1) == 1
        (input_stat,) = g1[0].inputs
        assert input_stat.kind.value == "distinct"
        assert input_stat.attrs == ("a",)


class TestFkRule:
    def _workflow(self, filtered_parent: bool):
        cat = Catalog()
        cat.add_relation("Fact", {"k": 10, "v": 5})
        cat.add_relation("Dim", {"k": 10, "w": 3})
        cat.add_foreign_key("Fact", "Dim", "k")
        fact = Source(cat, "Fact")
        dim = Source(cat, "Dim")
        if filtered_parent:
            dim = Filter(dim, "w", Predicate("p"))
        return Workflow("w", cat, [Target(Join(fact, dim, "k"), "x")])

    def test_fk_reduction_emitted(self):
        catalog = generate_css(analyze(self._workflow(False)))
        fk = [
            c for bucket in catalog.css.values() for c in bucket
            if c.rule == "FK"
        ]
        assert len(fk) == 1
        assert fk[0].inputs == (Statistic.card(SE("Fact")),)

    def test_filtered_parent_breaks_lookup(self):
        catalog = generate_css(analyze(self._workflow(True)))
        fk = [
            c for bucket in catalog.css.values() for c in bucket
            if c.rule == "FK"
        ]
        assert fk == []

    def test_fk_rules_can_be_disabled(self):
        catalog = generate_css(
            analyze(self._workflow(False)), GeneratorOptions(fk_rules=False)
        )
        assert not any(
            c.rule == "FK" for bucket in catalog.css.values() for c in bucket
        )
