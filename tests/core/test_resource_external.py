"""Tests for Section 6: resource-constrained schedules and source stats."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import SubExpression
from repro.core.costs import CostModel
from repro.core.external import harvest_source_statistics
from repro.core.generator import generate_css
from repro.core.ilp import solve_ilp
from repro.core.resource import ConstrainedPlanner, plan_constrained
from repro.core.selection import build_problem
from repro.core.statistics import Statistic
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.workloads import case

SE = SubExpression.of


@pytest.fixture(scope="module")
def star_setup():
    wfcase = case(11)  # 4-way star with a filtered date dimension
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis)
    cost_model = CostModel(workflow.catalog)
    return wfcase, workflow, analysis, catalog, cost_model


class TestConstrainedPlanner:
    def test_large_budget_single_execution(self, star_setup):
        _case, workflow, analysis, catalog, cost_model = star_setup
        optimal = solve_ilp(build_problem(catalog, cost_model))
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=optimal.total_cost + 1
        )
        assert schedule.executions == 1
        assert schedule.peak_memory <= schedule.budget

    def test_small_budget_multiple_executions(self, star_setup):
        _case, workflow, analysis, catalog, cost_model = star_setup
        optimal = solve_ilp(build_problem(catalog, cost_model))
        tight = max(optimal.total_cost / 8, 16)
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=tight
        )
        assert schedule.executions > 1
        assert schedule.peak_memory <= tight
        assert set(catalog.required) <= schedule.covered

    def test_budget_monotonicity(self, star_setup):
        """More memory never needs more executions."""
        _case, workflow, analysis, catalog, cost_model = star_setup
        optimal = solve_ilp(build_problem(catalog, cost_model))
        budgets = [16, optimal.total_cost / 2, optimal.total_cost + 1]
        runs = [
            plan_constrained(analysis, catalog, cost_model, b).executions
            for b in budgets
        ]
        assert runs == sorted(runs, reverse=True)

    def test_schedule_is_executable_and_sufficient(self, star_setup):
        """Actually run every step of a constrained schedule and verify the
        union of observations lets the estimator cover everything."""
        wfcase, workflow, analysis, catalog, cost_model = star_setup
        optimal = solve_ilp(build_problem(catalog, cost_model))
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=max(optimal.total_cost / 4, 16)
        )
        sources = wfcase.tables(scale=0.2, seed=9)
        from repro.core.statistics import StatisticsStore

        merged = StatisticsStore()
        for step in schedule.steps:
            taps = TapSet(step.observe)
            run = Executor(analysis).run(sources, trees=step.trees, taps=taps)
            assert taps.missing() == []
            merged.merge(run.observations)
        estimator = CardinalityEstimator(catalog, merged)
        have, total = estimator.coverage()
        assert have == total
        truth = ground_truth_cardinalities(analysis, sources)
        for se, actual in truth.items():
            assert estimator.cardinality(se) == pytest.approx(actual)

    def test_impossible_budget_rejected(self, star_setup):
        _case, workflow, analysis, catalog, cost_model = star_setup
        with pytest.raises(ValueError, match="cannot make progress"):
            plan_constrained(analysis, catalog, cost_model, budget=0.0)


class TestExternalStatistics:
    def test_free_statistics_always_picked(self, star_setup):
        wfcase, workflow, analysis, catalog, cost_model = star_setup
        sources = wfcase.tables(scale=0.2, seed=9)
        free, values = harvest_source_statistics(sources, relations=["Trade"])
        baseline = solve_ilp(build_problem(catalog, cost_model))
        with_free = solve_ilp(
            build_problem(catalog, cost_model, free_statistics=free)
        )
        assert with_free.total_cost <= baseline.total_cost

    def test_harvested_values_match_tables(self):
        wfcase = case(9)
        sources = wfcase.tables(scale=0.2, seed=1)
        free, values = harvest_source_statistics(sources)
        for name, table in sources.items():
            card = Statistic.card(SE(name))
            assert card in free
            assert values.get(card) == table.num_rows
            for attr in table.attrs:
                hist = values.get(Statistic.hist(SE(name), attr))
                assert hist.total() == table.num_rows

    def test_histograms_can_be_skipped(self):
        wfcase = case(9)
        sources = wfcase.tables(scale=0.2, seed=1)
        free, _values = harvest_source_statistics(
            sources, include_histograms=False
        )
        assert all(s.is_cardinality for s in free)

    def test_greedy_and_ilp_exploit_free_statistics_identically(
        self, star_setup
    ):
        """Zero-cost statistics shift both solvers the same way.

        The catalog's reuse guarantee rests on this: whichever solver a
        pipeline uses, handing it free statistics must yield a valid
        selection whose *paid* statistics carry the whole residual cost,
        with every free statistic always picked (paper Section 6.2)."""
        from repro.core.greedy import solve_greedy

        wfcase, workflow, analysis, catalog, cost_model = star_setup
        sources = wfcase.tables(scale=0.2, seed=9)
        free, _values = harvest_source_statistics(sources)
        problem = build_problem(catalog, cost_model, free_statistics=free)
        baseline = build_problem(catalog, cost_model)
        solvers = [solve_ilp, solve_greedy]
        for solve in solvers:
            result = solve(problem)
            assert result.is_valid
            # free statistics never make a solver worse
            assert result.total_cost <= solve(baseline).total_cost
            # a picked free statistic costs exactly zero...
            for stat in free & set(result.observed):
                assert problem.costs[problem.index[stat]] == 0.0
            # ...so the total counts only the paid remainder: a free
            # statistic never double-counts into the observation memory
            paid = [s for s in result.observed if s not in free]
            assert result.total_cost == pytest.approx(
                sum(problem.costs[problem.index[s]] for s in paid)
            )
            # the source cardinalities are free and always exploited
            assert any(s in free for s in result.observed)

    def test_all_free_makes_selection_cost_zero(self, star_setup):
        """When the free set covers an optimum, both solvers find cost 0."""
        from repro.core.greedy import solve_greedy

        _case, workflow, analysis, catalog, cost_model = star_setup
        optimal = solve_ilp(build_problem(catalog, cost_model))
        free = set(optimal.observed)
        problem = build_problem(catalog, cost_model, free_statistics=free)
        for result in (solve_ilp(problem), solve_greedy(problem)):
            assert result.is_valid
            assert result.total_cost == 0.0
            assert set(result.observed) == free

    def test_free_statistics_usable_by_estimator(self, star_setup):
        """End to end: source stats reduce observation, estimates stay exact."""
        wfcase, workflow, analysis, catalog, cost_model = star_setup
        sources = wfcase.tables(scale=0.2, seed=9)
        free, values = harvest_source_statistics(sources)
        selection = solve_ilp(
            build_problem(catalog, cost_model, free_statistics=free)
        )
        taps = TapSet([s for s in selection.observed if s not in free])
        run = Executor(analysis).run(sources, taps=taps)
        merged = run.observations
        merged.merge(values)
        estimator = CardinalityEstimator(catalog, merged)
        truth = ground_truth_cardinalities(analysis, sources)
        for se, actual in truth.items():
            assert estimator.cardinality(se) == pytest.approx(actual)
