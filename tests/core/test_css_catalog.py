"""Unit tests for the CSS catalog container."""


from repro.algebra.expressions import SubExpression
from repro.core.css import CSS, CssCatalog, trivial_css
from repro.core.statistics import Statistic

SE = SubExpression.of


def stat_card(name="T1", *more):
    return Statistic.card(SE(name, *more))


class TestCss:
    def test_context_lookup(self):
        css = CSS(
            stat_card(), (Statistic.hist(SE("T1"), "a"),), "J1",
            (("key", ("a",)),),
        )
        assert css.ctx("key") == ("a",)
        assert css.ctx("missing", 42) == 42

    def test_trivial_flag(self):
        assert trivial_css(stat_card()).is_trivial
        css = CSS(stat_card(), (Statistic.hist(SE("T1"), "a"),), "I1")
        assert not css.is_trivial

    def test_repr_mentions_rule(self):
        css = CSS(stat_card(), (Statistic.hist(SE("T1"), "a"),), "I1")
        assert "I1" in repr(css)


class TestCssCatalog:
    def test_add_dedupes(self):
        catalog = CssCatalog()
        css = CSS(stat_card(), (Statistic.hist(SE("T1"), "a"),), "I1")
        assert catalog.add(css)
        assert not catalog.add(css)
        assert len(catalog.css_for(stat_card())) == 1

    def test_all_statistics_closure(self):
        catalog = CssCatalog()
        h = Statistic.hist(SE("T1"), "a")
        catalog.add(CSS(stat_card(), (h,), "I1"))
        catalog.require(stat_card("T2"))
        catalog.mark_observable(Statistic.card(SE("T3")))
        stats = catalog.all_statistics
        assert stat_card() in stats
        assert h in stats
        assert stat_card("T2") in stats
        assert Statistic.card(SE("T3")) in stats

    def test_counts(self):
        catalog = CssCatalog()
        h = Statistic.hist(SE("T1"), "a")
        catalog.add(CSS(stat_card(), (h,), "I1"))
        catalog.require(stat_card())
        catalog.mark_observable(h)
        counts = catalog.counts()
        assert counts["css"] == 1
        assert counts["required"] == 1
        assert counts["observable"] == 1

    def test_closure_fixpoint(self):
        catalog = CssCatalog()
        a = stat_card("A")
        b = stat_card("B")
        c = stat_card("C")
        catalog.add(CSS(b, (a,), "B1"))
        catalog.add(CSS(c, (b,), "B1"))
        closure = catalog.closure({a})
        assert closure == {a, b, c}
        assert catalog.closure(set()) == set()

    def test_closure_needs_all_inputs(self):
        catalog = CssCatalog()
        a, b, c = stat_card("A"), stat_card("B"), stat_card("C")
        catalog.add(CSS(c, (a, b), "J1"))
        assert c not in catalog.closure({a})
        assert c in catalog.closure({a, b})

    def test_merge(self):
        cat1, cat2 = CssCatalog(), CssCatalog()
        a, b = stat_card("A"), stat_card("B")
        cat1.add(CSS(b, (a,), "B1"))
        cat2.require(a)
        cat2.mark_observable(a)
        cat1.merge(cat2)
        assert a in cat1.required
        assert a in cat1.observable
        assert cat1.css_for(b)

    def test_describe_lists_flags(self):
        catalog = CssCatalog()
        a = stat_card("A")
        catalog.require(a)
        catalog.mark_observable(a)
        catalog.add(CSS(a, (Statistic.hist(SE("A"), "x"),), "I1"))
        text = catalog.describe()
        assert "obs" in text and "req" in text and "I1" in text

    def test_nontrivial_filter(self):
        catalog = CssCatalog()
        a = stat_card("A")
        catalog.add(trivial_css(a))
        catalog.add(CSS(a, (Statistic.hist(SE("A"), "x"),), "I1"))
        assert len(catalog.css_for(a)) == 2
        assert len(catalog.nontrivial_css_for(a)) == 1
