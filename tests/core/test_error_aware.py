"""Tests for the Section 8 error-aware selection extension."""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.error_aware import (
    ErrorAwareSelector,
    select_with_error_budget,
)
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import StatKind
from repro.workloads import case


@pytest.fixture(scope="module")
def setup():
    wfcase = case(16)  # wide join domains -> histogram-heavy optimum
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    problem = build_problem(catalog, cost_model)
    base = solve_ilp(problem)
    return catalog, problem, base, cost_model


class TestErrorAwareSelection:
    def test_zero_budget_keeps_exact_memory(self, setup):
        catalog, problem, base, cost_model = setup
        result = select_with_error_budget(
            catalog, problem, base, cost_model, error_budget=0.0
        )
        assert result.total_memory == pytest.approx(base.total_cost)
        assert result.worst_required_error(catalog) == 0.0

    def test_budget_buys_memory(self, setup):
        catalog, problem, base, cost_model = setup
        result = select_with_error_budget(
            catalog, problem, base, cost_model, error_budget=0.3
        )
        assert result.total_memory < base.total_cost
        assert result.worst_required_error(catalog) <= 0.3 + 1e-9

    def test_memory_monotone_in_budget(self, setup):
        catalog, problem, base, cost_model = setup
        memories = []
        for budget in (0.0, 0.1, 0.3, 0.6, 1.0):
            result = select_with_error_budget(
                catalog, problem, base, cost_model, error_budget=budget
            )
            memories.append(result.total_memory)
        assert memories == sorted(memories, reverse=True)

    def test_only_histograms_are_coarsened(self, setup):
        catalog, problem, base, cost_model = setup
        result = select_with_error_budget(
            catalog, problem, base, cost_model, error_budget=1.0
        )
        for stat, choice in result.choices.items():
            if stat.kind is not StatKind.HISTOGRAM:
                assert choice.resolution == 1.0
                assert choice.error == 0.0

    def test_error_budget_respected_at_every_level(self, setup):
        catalog, problem, base, cost_model = setup
        for budget in (0.05, 0.2, 0.5):
            result = select_with_error_budget(
                catalog, problem, base, cost_model, error_budget=budget
            )
            assert result.worst_required_error(catalog) <= budget + 1e-9

    def test_skew_scales_error(self, setup):
        catalog, problem, base, cost_model = setup
        gentle = ErrorAwareSelector(
            catalog, problem, base, cost_model, skew=0.1
        ).select(0.2)
        harsh = ErrorAwareSelector(
            catalog, problem, base, cost_model, skew=2.0
        ).select(0.2)
        # lower skew -> cheaper coarsening fits the same budget
        assert gentle.total_memory <= harsh.total_memory

    def test_describe_renders(self, setup):
        catalog, problem, base, cost_model = setup
        result = select_with_error_budget(
            catalog, problem, base, cost_model, error_budget=0.4
        )
        text = result.describe()
        assert "memory" in text


def test_projected_error_per_statistic(setup):
    catalog, problem, base, cost_model = setup
    result = select_with_error_budget(
        catalog, problem, base, cost_model, error_budget=0.4
    )
    worst = result.worst_required_error(catalog)
    per_stat = [
        result.projected_error(s, catalog) for s in catalog.required
    ]
    assert max(per_stat) == pytest.approx(worst)
    assert all(e >= 0 for e in per_stat)


def test_measure_errors_on_observed_data(setup):
    """Ground-truth the error model: exact resolution -> no error; coarse
    resolutions -> measurable, bounded error."""
    from repro.core.error_aware import measure_errors
    from repro.core.histogram import Histogram
    from repro.core.statistics import StatisticsStore

    catalog, problem, base, cost_model = setup
    result = select_with_error_budget(
        catalog, problem, base, cost_model, error_budget=1.0
    )
    observed = StatisticsStore()
    import random

    rng = random.Random(3)
    for stat in result.choices:
        if stat.kind is StatKind.HISTOGRAM and len(stat.attrs) == 1:
            counts = {v: rng.randint(1, 30) for v in range(1, 200)}
            observed.put(stat, Histogram.single(stat.attrs[0], counts))
    measured = measure_errors(result, observed)
    coarsened = [
        s for s, c in result.choices.items()
        if c.resolution < 1.0 and s in observed
    ]
    if coarsened:
        assert measured
        for stat, err in measured.items():
            assert 0.0 <= err <= 2.0
