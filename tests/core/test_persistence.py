"""Tests for statistics/plan persistence across engine restarts."""

import json

import pytest

from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.plans import JoinNode, Leaf
from repro.core.histogram import Histogram
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    SessionState,
    load_statistics,
    save_statistics,
    se_from_dict,
    se_to_dict,
    statistic_from_dict,
    statistic_to_dict,
    store_from_dict,
    store_to_dict,
    table_from_dict,
    table_to_dict,
    tree_from_dict,
    tree_to_dict,
    validate_document,
)
from repro.core.statistics import Statistic, StatisticsStore
from repro.engine.table import Table

SE = SubExpression.of


class TestSeRoundTrip:
    def test_plain_se(self):
        se = SE("A", "B")
        assert se_from_dict(se_to_dict(se)) == se

    def test_reject_se(self):
        rej = RejectSE(SE("A"), "k", SE("B"))
        assert se_from_dict(se_to_dict(rej)) == rej

    def test_reject_composite_key(self):
        rej = RejectSE(SE("A"), ("k", "m"), SE("B"))
        assert se_from_dict(se_to_dict(rej)) == rej

    def test_reject_join_se(self):
        rej = RejectSE(SE("A"), "k", SE("B"))
        rj = RejectJoinSE(rej, "m", SE("C"))
        assert se_from_dict(se_to_dict(rj)) == rj

    def test_unknown_type_rejected(self):
        with pytest.raises(PersistenceError):
            se_from_dict({"type": "mystery"})


class TestStatisticRoundTrip:
    @pytest.mark.parametrize(
        "stat",
        [
            Statistic.card(SE("A", "B")),
            Statistic.hist(SE("A"), "x", "y"),
            Statistic.distinct(SE("A"), "x"),
            Statistic.hist(RejectSE(SE("A"), "k", SE("B")), "k"),
        ],
    )
    def test_round_trip(self, stat):
        assert statistic_from_dict(statistic_to_dict(stat)) == stat

    def test_bad_kind(self):
        with pytest.raises(PersistenceError):
            statistic_from_dict({"kind": "nope", "se": se_to_dict(SE("A"))})


class TestStoreRoundTrip:
    def _store(self):
        store = StatisticsStore()
        store.put(Statistic.card(SE("A")), 42)
        store.put(Statistic.distinct(SE("A"), "x"), 7)
        store.put(
            Statistic.hist(SE("A"), "x", "y"),
            Histogram(("x", "y"), {(1, 2): 3, (4, 5): 6}),
        )
        return store

    def test_dict_round_trip(self):
        store = self._store()
        clone = store_from_dict(store_to_dict(store))
        assert len(clone) == len(store)
        for stat, value in store.items():
            assert clone.get(stat) == value

    def test_file_round_trip(self, tmp_path):
        store = self._store()
        path = tmp_path / "stats.json"
        save_statistics(store, path)
        clone = load_statistics(path)
        for stat, value in store.items():
            assert clone.get(stat) == value

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "stats.json"
        save_statistics(self._store(), path)
        doc = json.loads(path.read_text())
        assert "statistics" in doc

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(PersistenceError):
            load_statistics(path)

    def test_deterministic_output(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_statistics(self._store(), p1)
        save_statistics(self._store(), p2)
        assert p1.read_text() == p2.read_text()


class TestFormatVersioning:
    def test_saved_files_carry_the_current_version(self, tmp_path):
        path = tmp_path / "stats.json"
        save_statistics(StatisticsStore(), path)
        assert json.loads(path.read_text())["format_version"] == FORMAT_VERSION

    def test_legacy_file_without_version_still_loads(self, tmp_path):
        """Files written before versioning read as version 1."""
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"statistics": []}))
        assert len(load_statistics(path)) == 0

    def test_future_version_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "new.json"
        path.write_text(json.dumps(
            {"format_version": FORMAT_VERSION + 1, "statistics": []}
        ))
        with pytest.raises(PersistenceError, match="format_version"):
            load_statistics(path)

    @pytest.mark.parametrize("version", [0, -1, "two", None, 1.5])
    def test_malformed_version_rejected(self, version):
        with pytest.raises(PersistenceError, match="format_version"):
            validate_document(
                {"format_version": version, "statistics": []}, "statistics"
            )

    def test_non_object_document_rejected(self):
        with pytest.raises(PersistenceError, match="JSON object"):
            validate_document(["not", "an", "object"], "statistics")

    def test_validate_returns_the_version(self):
        assert validate_document({}, "x") == 1
        assert validate_document({"format_version": FORMAT_VERSION}, "x") \
            == FORMAT_VERSION

    def test_corrupt_statistics_entry_is_a_persistence_error(self):
        """Bad entries surface as PersistenceError, never a raw KeyError."""
        with pytest.raises(PersistenceError):
            store_from_dict({"statistics": [{"kind": "cardinality"}]})
        with pytest.raises(PersistenceError):
            store_from_dict({"statistics": ["not an object"]})

    def test_session_state_future_version_rejected(self, tmp_path):
        path = tmp_path / "session.json"
        path.write_text(json.dumps({"format_version": FORMAT_VERSION + 1}))
        with pytest.raises(PersistenceError, match="format_version"):
            SessionState.load(path)

    def test_session_state_missing_file_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            SessionState.load(tmp_path / "nope.json")


class TestTableRoundTrip:
    def test_round_trip_preserves_order_and_types(self):
        table = Table({"b": [1, 2, 3], "a": ["x", "y", "z"]})
        clone = table_from_dict(table_to_dict(table))
        assert clone.attrs == table.attrs
        assert list(clone.rows()) == list(table.rows())

    def test_empty_table(self):
        table = Table.empty(("a", "b"))
        clone = table_from_dict(table_to_dict(table))
        assert clone.num_rows == 0 and clone.attrs == ("a", "b")

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError, match="corrupt table"):
            table_from_dict({"attrs": ["a"], "columns": {}})
        with pytest.raises(PersistenceError, match="corrupt table"):
            table_from_dict({"columns": {"a": [1]}})


class TestTreeRoundTrip:
    def test_nested_tree(self):
        tree = JoinNode(
            JoinNode(Leaf("A"), Leaf("B"), ("x",)),
            Leaf("C"),
            ("y", "z"),
        )
        assert tree_from_dict(tree_to_dict(tree)) == tree

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError):
            tree_from_dict({"key": ["x"], "left": {"leaf": "A"}})


class TestSessionState:
    def test_round_trip(self, tmp_path):
        state = SessionState(
            trees={"B1": JoinNode(Leaf("A"), Leaf("B"), ("k",))},
            adopted_cardinalities={SE("A"): 10.0, SE("A", "B"): 25.0},
            runs_completed=4,
        )
        path = tmp_path / "session.json"
        state.save(path)
        loaded = SessionState.load(path)
        assert loaded.runs_completed == 4
        assert loaded.trees["B1"] == state.trees["B1"]
        assert loaded.adopted_cardinalities == state.adopted_cardinalities

    def test_resumed_session_continues_plan(self, tmp_path):
        """End to end: a session persists, a new process resumes it and
        keeps executing the adopted plan without re-learning from scratch."""
        import random

        from repro.algebra.operators import Join, Source, Target, Workflow
        from repro.algebra.schema import Catalog
        from repro.engine.table import Table
        from repro.framework.pipeline import StatisticsPipeline
        from repro.framework.session import EtlSession

        def workflow():
            cat = Catalog()
            cat.add_relation("F", {"a": 20, "b": 20, "id": 500})
            cat.add_relation("A", {"a": 20})
            cat.add_relation("B", {"b": 20})
            f, a, b = Source(cat, "F"), Source(cat, "A"), Source(cat, "B")
            return Workflow(
                "w", cat, [Target(Join(Join(f, a, "a"), b, "b"), "out")]
            )

        rng = random.Random(1)
        sources = {
            "F": Table(
                {
                    "a": [rng.randint(1, 20) for _ in range(300)],
                    "b": [rng.randint(1, 20) for _ in range(300)],
                    "id": list(range(300)),
                }
            ),
            "A": Table({"a": [1, 2, 3]}),
            "B": Table({"b": list(range(1, 20))}),
        }
        session = EtlSession(StatisticsPipeline(workflow()))
        session.run(sources)
        state = SessionState(
            trees=session.current_trees,
            adopted_cardinalities=dict(session._adopted_cards or {}),
            runs_completed=len(session.history),
        )
        path = tmp_path / "session.json"
        state.save(path)

        # "new process": fresh session seeded from disk
        resumed = SessionState.load(path)
        session2 = EtlSession(StatisticsPipeline(workflow()))
        session2._current_trees = resumed.trees
        session2._adopted_cards = resumed.adopted_cardinalities
        record = session2.run(sources)
        assert record.executed_trees.keys() == resumed.trees.keys()
        assert all(
            str(record.executed_trees[k]) == str(resumed.trees[k])
            for k in resumed.trees
        )
