"""Tests for bucketized histograms (the Section 8.1 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketized import (
    BucketizedHistogram,
    join_estimation_error,
)
from repro.core.histogram import Histogram, HistogramError

H = Histogram.single


class TestBucketization:
    def test_total_preserved(self):
        hist = H("a", {i: i + 1 for i in range(1, 50)})
        bucketized = BucketizedHistogram.from_histogram(hist, buckets=8)
        assert bucketized.total() == hist.total()
        assert bucketized.num_buckets() <= 8

    def test_one_bucket_per_value_is_exact(self):
        hist = H("a", {1: 3, 2: 5, 3: 7})
        fine = BucketizedHistogram.from_histogram(hist, buckets=1000)
        assert fine.num_buckets() == 3
        assert fine.estimate_join(fine) == hist.dot(hist)

    def test_requires_single_attribute(self):
        joint = Histogram(("a", "b"), {(1, 2): 1})
        with pytest.raises(HistogramError):
            BucketizedHistogram.from_histogram(joint, buckets=4)

    def test_requires_numeric_values(self):
        with pytest.raises(HistogramError):
            BucketizedHistogram.from_histogram(H("a", {"x": 1}), buckets=4)

    def test_memory_units_two_per_bucket(self):
        hist = H("a", {i: 1 for i in range(1, 17)})
        b = BucketizedHistogram.from_histogram(hist, buckets=4)
        assert b.memory_units() == 2 * b.num_buckets()

    def test_empty_histogram(self):
        b = BucketizedHistogram.from_histogram(Histogram(("a",), {}), buckets=4)
        assert b.total() == 0

    def test_mismatched_attrs_rejected(self):
        b1 = BucketizedHistogram.from_histogram(H("a", {1: 1}), 4)
        b2 = BucketizedHistogram.from_histogram(H("b", {1: 1}), 4)
        with pytest.raises(HistogramError):
            b1.estimate_join(b2)


class TestEstimationError:
    def test_exact_at_full_resolution(self):
        h1 = H("a", {i: (i * 7) % 13 + 1 for i in range(1, 30)})
        h2 = H("a", {i: (i * 5) % 11 + 1 for i in range(1, 30)})
        exact, estimated, rel = join_estimation_error(h1, h2, buckets=100)
        assert estimated == pytest.approx(exact)
        assert rel == pytest.approx(0.0)

    def test_error_generally_shrinks_with_buckets(self):
        """The Section 8.2 space/error trade-off: finer histograms estimate
        better (on average; assert endpoints)."""
        import random

        rng = random.Random(5)
        c1 = {v: rng.randint(1, 50) for v in range(1, 200)}
        c2 = {v: rng.randint(1, 50) for v in rng.sample(range(1, 200), 120)}
        h1, h2 = H("a", c1), H("a", c2)
        _, _, coarse = join_estimation_error(h1, h2, buckets=2)
        _, _, fine = join_estimation_error(h1, h2, buckets=400)
        assert fine == pytest.approx(0.0)
        assert coarse >= fine

    @given(
        st.dictionaries(st.integers(0, 60), st.integers(1, 9), min_size=1, max_size=30),
        st.dictionaries(st.integers(0, 60), st.integers(1, 9), min_size=1, max_size=30),
        st.integers(1, 64),
    )
    @settings(max_examples=40)
    def test_estimate_is_finite_and_nonnegative(self, c1, c2, buckets):
        exact, estimated, _rel = join_estimation_error(
            H("a", c1), H("a", c2), buckets
        )
        assert estimated >= 0
        # bucketized totals are preserved, so the estimate is bounded by
        # the cross product
        assert estimated <= sum(c1.values()) * sum(c2.values())
