"""Unit tests for the exact-histogram algebra (the rule-set primitives)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import Histogram, HistogramError


def h(attr, counts):
    return Histogram.single(attr, counts)


class TestConstruction:
    def test_from_rows_counts_frequencies(self):
        hist = Histogram.from_rows(("a",), [(1,), (1,), (2,)])
        assert hist.frequency(1) == 2
        assert hist.frequency(2) == 1
        assert hist.total() == 3

    def test_from_rows_canonicalizes_attribute_order(self):
        hist = Histogram.from_rows(("b", "a"), [(10, 1), (20, 2)])
        assert hist.attrs == ("a", "b")
        assert hist.frequency((1, 10)) == 1
        assert hist.frequency((2, 20)) == 1

    def test_zero_buckets_dropped(self):
        hist = Histogram.single("a", {1: 0, 2: 5})
        assert len(hist) == 1
        assert hist.frequency(1) == 0

    def test_rejects_unsorted_attrs(self):
        with pytest.raises(HistogramError):
            Histogram(("b", "a"), {})

    def test_rejects_duplicate_attrs(self):
        with pytest.raises(HistogramError):
            Histogram(("a", "a"), {})

    def test_rejects_mismatched_bucket_width(self):
        with pytest.raises(HistogramError):
            Histogram(("a", "b"), {(1,): 2})

    def test_rejects_empty_attrs(self):
        with pytest.raises(HistogramError):
            Histogram((), {})

    def test_equality_and_hash(self):
        h1 = h("a", {1: 2, 2: 3})
        h2 = h("a", {2: 3, 1: 2})
        assert h1 == h2
        assert hash(h1) == hash(h2)
        assert h1 != h("a", {1: 2})


class TestDot:
    """Rule J1: |T1 join T2| = H1 . H2."""

    def test_matches_brute_force_join(self):
        left = [1, 1, 2, 3, 3, 3]
        right = [1, 3, 3, 4]
        expected = sum(1 for x in left for y in right if x == y)
        assert Histogram.from_rows(("a",), [(v,) for v in left]).dot(
            Histogram.from_rows(("a",), [(v,) for v in right])
        ) == expected

    def test_disjoint_domains_give_zero(self):
        assert h("a", {1: 5}).dot(h("a", {2: 7})) == 0

    def test_attr_mismatch_raises(self):
        with pytest.raises(HistogramError):
            h("a", {1: 1}).dot(h("b", {1: 1}))

    @given(
        st.dictionaries(st.integers(0, 20), st.integers(1, 50), max_size=15),
        st.dictionaries(st.integers(0, 20), st.integers(1, 50), max_size=15),
    )
    def test_dot_is_symmetric(self, c1, c2):
        h1, h2 = h("a", c1), h("a", c2)
        assert h1.dot(h2) == h2.dot(h1)


class TestMultiplyDivide:
    """Equations 2-3: the union-division bucket algebra."""

    def test_multiply_then_divide_roundtrips(self):
        h1 = h("a", {1: 3, 2: 5, 7: 2})
        h2 = h("a", {1: 4, 2: 1, 7: 6})
        assert h1.multiply(h2).divide(h2) == h1

    def test_multiply_drops_unmatched_buckets(self):
        prod = h("a", {1: 3, 2: 5}).multiply(h("a", {1: 2}))
        assert prod == h("a", {1: 6})

    def test_divide_by_zero_bucket_drops(self):
        quot = h("a", {1: 6, 2: 4}).divide(h("a", {1: 3}))
        assert quot == h("a", {1: 2})

    def test_multiply_broadcasts_over_extra_attrs(self):
        joint = Histogram(("a", "b"), {(1, 10): 2, (1, 20): 3, (2, 10): 5})
        single = h("a", {1: 4})
        result = joint.multiply(single)
        assert result.frequency((1, 10)) == 8
        assert result.frequency((1, 20)) == 12
        assert result.frequency((2, 10)) == 0

    def test_broadcast_requires_subset(self):
        with pytest.raises(HistogramError):
            h("a", {1: 1}).multiply(Histogram(("a", "b"), {(1, 2): 1}))

    @given(
        st.dictionaries(st.integers(0, 10), st.integers(1, 9), min_size=1, max_size=8),
        st.dictionaries(st.integers(0, 10), st.integers(1, 9), min_size=1, max_size=8),
    )
    @settings(max_examples=60)
    def test_union_division_identity(self, c1, c2):
        """|H1*H2 / H2| equals the joined mass of H1 (Equation 3)."""
        h1, h2 = h("a", c1), h("a", c2)
        surviving = h1.multiply(h2).divide(h2)
        expected_total = sum(f for k, f in h1.counts.items() if k in h2.counts)
        assert surviving.total() == pytest.approx(expected_total)


class TestJoinDistribute:
    """Rule J2: carried-attribute distribution through a join."""

    def test_matches_brute_force(self):
        t1 = [(1, "x"), (1, "y"), (2, "x")]  # (a, b)
        t2 = [1, 1, 2, 3]  # a
        joint = Histogram.from_rows(("a", "b"), t1)
        single = Histogram.from_rows(("a",), [(v,) for v in t2])
        result = joint.join_distribute(single, "a")
        brute = {}
        for a1, b in t1:
            for a2 in t2:
                if a1 == a2:
                    brute[b] = brute.get(b, 0) + 1
        assert result == Histogram(("b",), {(k,): v for k, v in brute.items()})

    def test_requires_join_attr_present(self):
        with pytest.raises(HistogramError):
            h("b", {1: 1}).join_distribute(h("a", {1: 1}), "a")

    def test_requires_carried_attrs(self):
        with pytest.raises(HistogramError):
            h("a", {1: 1}).join_distribute(h("a", {1: 1}), "a")


class TestMarginalizeTotal:
    """Rules I1 and I2."""

    def test_marginalize_aggregates_buckets(self):
        joint = Histogram(("a", "b"), {(1, 10): 2, (1, 20): 3, (2, 10): 5})
        assert joint.marginalize(("a",)) == h("a", {1: 5, 2: 5})
        assert joint.marginalize(("b",)) == h("b", {10: 7, 20: 3})

    def test_marginalize_to_self_is_identity(self):
        joint = Histogram(("a", "b"), {(1, 10): 2})
        assert joint.marginalize(("a", "b")) is joint

    def test_marginalize_preserves_total(self):
        joint = Histogram(("a", "b"), {(1, 10): 2, (2, 20): 3})
        assert joint.marginalize(("a",)).total() == joint.total()

    def test_marginalize_requires_subset(self):
        with pytest.raises(HistogramError):
            h("a", {1: 1}).marginalize(("b",))

    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            st.integers(1, 20),
            min_size=1,
            max_size=20,
        )
    )
    def test_total_invariant_under_marginalization(self, counts):
        joint = Histogram(("a", "b"), counts)
        for attrs in (("a",), ("b",)):
            assert joint.marginalize(attrs).total() == joint.total()


class TestAddSelect:
    def test_add_sums_disjoint_unions(self):
        assert h("a", {1: 2}).add(h("a", {1: 3, 2: 1})) == h("a", {1: 5, 2: 1})

    def test_select_filters_buckets(self):
        hist = h("a", {1: 2, 2: 3, 3: 4})
        assert hist.select("a", lambda v: v >= 2) == h("a", {2: 3, 3: 4})

    def test_select_on_joint_histogram(self):
        joint = Histogram(("a", "b"), {(1, 10): 2, (2, 10): 3})
        kept = joint.select("a", lambda v: v == 2)
        assert kept == Histogram(("a", "b"), {(2, 10): 3})

    def test_distinct_count(self):
        assert h("a", {1: 10, 5: 1}).distinct_count() == 2
