"""Additional tests for the §6.1 constrained planner edge cases."""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.resource import ConstrainedPlanner, plan_constrained
from repro.core.selection import build_problem
from repro.workloads import case


@pytest.fixture(scope="module")
def star():
    wfcase = case(13)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    optimal = solve_ilp(build_problem(catalog, cost_model))
    return analysis, catalog, cost_model, optimal


class TestConstrainedEdgeCases:
    def test_budget_exactly_optimal(self, star):
        analysis, catalog, cost_model, optimal = star
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=optimal.total_cost
        )
        assert schedule.executions == 1

    def test_budget_one_below_optimal_splits(self, star):
        analysis, catalog, cost_model, optimal = star
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=optimal.total_cost - 1
        )
        assert schedule.executions >= 2
        assert schedule.peak_memory <= optimal.total_cost - 1

    def test_greedy_solver_variant(self, star):
        analysis, catalog, cost_model, optimal = star
        schedule = ConstrainedPlanner(
            analysis, catalog, cost_model,
            budget=optimal.total_cost * 2, solver="greedy",
        ).plan()
        assert schedule.executions >= 1
        assert set(catalog.required) <= schedule.covered

    def test_steps_have_distinct_observations(self, star):
        """No statistic is paid for twice across the schedule."""
        analysis, catalog, cost_model, optimal = star
        schedule = plan_constrained(
            analysis, catalog, cost_model,
            budget=max(optimal.total_cost / 6, 16),
        )
        seen = set()
        for step in schedule.steps:
            for stat in step.observe:
                assert stat not in seen, stat
                seen.add(stat)

    def test_step_memory_accounts_observations(self, star):
        analysis, catalog, cost_model, optimal = star
        schedule = plan_constrained(
            analysis, catalog, cost_model,
            budget=max(optimal.total_cost / 4, 16),
        )
        for step in schedule.steps:
            total = sum(cost_model.cost(s) for s in step.observe)
            assert step.memory == pytest.approx(total)

    def test_trees_cover_block_inputs(self, star):
        from repro.algebra.plans import leaves

        analysis, catalog, cost_model, optimal = star
        schedule = plan_constrained(
            analysis, catalog, cost_model,
            budget=max(optimal.total_cost / 4, 16),
        )
        for step in schedule.steps:
            for block in analysis.blocks:
                tree = step.trees[block.name]
                assert {leaf.name for leaf in leaves(tree)} == set(block.inputs)
