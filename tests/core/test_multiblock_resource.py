"""Constrained scheduling and estimation across multi-block workflows."""

import pytest

from repro.algebra.blocks import analyze
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.ilp import solve_ilp
from repro.core.resource import plan_constrained
from repro.core.selection import build_problem
from repro.core.statistics import StatisticsStore
from repro.engine.executor import Executor
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.engine.instrumentation import TapSet
from repro.estimation.estimator import CardinalityEstimator
from repro.workloads import case


@pytest.fixture(scope="module")
def multiblock():
    """wf23: a pinned reject join feeding a 3-way block."""
    wfcase = case(23)
    workflow = wfcase.build()
    analysis = analyze(workflow)
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    return wfcase, analysis, catalog, cost_model


class TestMultiBlockConstrained:
    def test_pinned_block_never_reordered(self, multiblock):
        wfcase, analysis, catalog, cost_model = multiblock
        optimal = solve_ilp(build_problem(catalog, cost_model))
        schedule = plan_constrained(
            analysis, catalog, cost_model,
            budget=max(optimal.total_cost / 5, 12),
        )
        pinned = [b for b in analysis.blocks if b.pinned][0]
        for step in schedule.steps:
            assert str(step.trees[pinned.name]) == str(pinned.initial_tree)

    def test_schedule_covers_both_blocks(self, multiblock):
        wfcase, analysis, catalog, cost_model = multiblock
        optimal = solve_ilp(build_problem(catalog, cost_model))
        schedule = plan_constrained(
            analysis, catalog, cost_model,
            budget=max(optimal.total_cost / 5, 12),
        )
        sources = wfcase.tables(scale=0.2, seed=13)
        merged = StatisticsStore()
        for step in schedule.steps:
            taps = TapSet(step.observe)
            run = Executor(analysis).run(sources, trees=step.trees, taps=taps)
            assert taps.missing() == []
            merged.merge(run.observations)
        estimator = CardinalityEstimator(catalog, merged)
        truth = ground_truth_cardinalities(analysis, sources)
        for se, actual in truth.items():
            assert estimator.cardinality(se) == pytest.approx(actual)


class TestSerializeBlackBoxRegistry:
    def test_aggregate_udf_round_trip_with_registry(self):
        """A blocking UDF resolves by name from the registry and produces
        the same output after a serialization round-trip."""
        from repro.algebra.serialize import (
            FunctionRegistry,
            workflow_from_json,
            workflow_to_json,
        )
        from repro.workloads.tpcdi import _dedupe_rows

        wfcase = case(5)  # linear flow with the dedupe blocking UDF
        original = wfcase.build()
        registry = FunctionRegistry(
            predicates={"even": lambda v: v % 2 == 0},
            aggregate_udfs={"dedupe": _dedupe_rows},
        )
        clone = workflow_from_json(workflow_to_json(original), registry)
        sources = wfcase.tables(scale=0.3, seed=3)
        run1 = Executor(analyze(original)).run(sources)
        run2 = Executor(analyze(clone)).run(sources)
        t1 = run1.targets["hr"]
        t2 = run2.targets["hr"]
        assert sorted(t1.rows(sorted(t1.attrs))) == sorted(
            t2.rows(sorted(t2.attrs))
        )
