"""Tests for equi-depth and end-biased histogram compressions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketized import (
    EndBiasedHistogram,
    EquiDepthHistogram,
    compare_compressions,
)
from repro.core.histogram import Histogram, HistogramError

H = Histogram.single


def zipf_histogram(domain=300, skew=1.2, seed=3):
    rng = random.Random(seed)
    counts = {}
    for v in range(1, domain + 1):
        counts[v] = max(1, int(3000 / (v**skew)))
    # shuffle values so the head is not contiguous
    values = list(counts)
    rng.shuffle(values)
    return H("k", {values[i]: f for i, f in enumerate(counts.values())})


class TestEquiDepth:
    def test_total_preserved(self):
        hist = zipf_histogram()
        depth = EquiDepthHistogram.from_histogram(hist, 16)
        assert depth.total() == pytest.approx(hist.total())
        assert depth.num_buckets() <= 16

    def test_buckets_roughly_balanced(self):
        hist = zipf_histogram()
        depth = EquiDepthHistogram.from_histogram(hist, 10)
        counts = [c for c in depth.counts if c > 0]
        target = hist.total() / 10
        # every non-terminal bucket holds at least the target mass by
        # construction (the boundary closes once the target is reached)
        assert all(c >= target * 0.5 for c in counts[:-1])

    def test_estimate_frequency_in_range(self):
        hist = H("k", {1: 10, 2: 10, 3: 10, 4: 10})
        depth = EquiDepthHistogram.from_histogram(hist, 2)
        assert depth.estimate_frequency(1) == pytest.approx(10)
        assert depth.estimate_frequency(99) == 0.0

    def test_single_attr_required(self):
        with pytest.raises(HistogramError):
            EquiDepthHistogram.from_histogram(
                Histogram(("a", "b"), {(1, 2): 1}), 4
            )

    def test_memory_units(self):
        depth = EquiDepthHistogram.from_histogram(zipf_histogram(), 8)
        assert depth.memory_units() == 3 * depth.num_buckets()


class TestEndBiased:
    def test_head_is_exact(self):
        hist = zipf_histogram()
        eb = EndBiasedHistogram.from_histogram(hist, 20)
        top = sorted(hist.counts.items(), key=lambda kv: -kv[1])[:20]
        for (value,), freq in top:
            assert eb.estimate_frequency(value) == freq

    def test_total_preserved(self):
        hist = zipf_histogram()
        eb = EndBiasedHistogram.from_histogram(hist, 10)
        assert eb.total() == pytest.approx(hist.total())

    def test_tail_uniform(self):
        hist = H("k", {1: 100, 2: 4, 3: 2})
        eb = EndBiasedHistogram.from_histogram(hist, 1)
        assert eb.estimate_frequency(1) == 100
        assert eb.estimate_frequency(2) == pytest.approx(3)  # (4+2)/2
        assert eb.estimate_frequency(3) == pytest.approx(3)

    def test_k_zero_all_uniform(self):
        hist = H("k", {1: 6, 2: 2})
        eb = EndBiasedHistogram.from_histogram(hist, 0)
        assert eb.estimate_frequency(1) == pytest.approx(4)

    def test_memory_units(self):
        eb = EndBiasedHistogram.from_histogram(zipf_histogram(), 12)
        assert eb.memory_units() == 2 * 12 + 2


class TestCompressionComparison:
    def test_end_biased_wins_on_zipf(self):
        """On heavily skewed data at a tight budget, keeping the head exact
        beats both bucketizations -- the §8 design guidance."""
        h1 = zipf_histogram(domain=400, skew=1.4, seed=9)
        rng = random.Random(4)
        h2 = H(
            "k",
            {v: rng.randint(1, 20) for v in rng.sample(range(1, 401), 250)},
        )
        errors = compare_compressions(h1, h2, memory_budget=40)
        assert errors["end_biased"] <= errors["equi_width"]
        assert errors["end_biased"] < 0.5

    def test_large_budget_all_accurate(self):
        h1 = zipf_histogram(domain=50, seed=2)
        h2 = H("k", {v: 3 for v in range(1, 51)})
        errors = compare_compressions(h1, h2, memory_budget=1000)
        for err in errors.values():
            assert err == pytest.approx(0.0, abs=1e-6)

    @given(st.integers(6, 200))
    @settings(max_examples=25, deadline=None)
    def test_errors_are_finite_nonnegative(self, budget):
        h1 = zipf_histogram(domain=80, seed=1)
        h2 = zipf_histogram(domain=80, seed=5)
        errors = compare_compressions(h1, h2, memory_budget=budget)
        for err in errors.values():
            assert err >= 0.0
            assert err != float("inf")
