"""Tests for the cost metrics (Section 5.4) and the independence bootstrap."""


import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow
from repro.algebra.schema import Catalog
from repro.core.costs import INFINITE, CostModel
from repro.core.statistics import Statistic
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.estimation.bootstrap import (
    SizeBootstrapper,
    bootstrap_se_sizes,
    profiles_from_characteristics,
)
from repro.workloads import case

SE = SubExpression.of


def catalog_ab():
    cat = Catalog()
    cat.add_relation("A", {"k": 100, "v": 7})
    cat.add_relation("B", {"k": 100, "w": 11})
    return cat


class TestCostModel:
    def test_counter_costs_one(self):
        cm = CostModel(catalog_ab())
        assert cm.memory_units(Statistic.card(SE("A"))) == 1.0

    def test_histogram_costs_domain(self):
        cm = CostModel(catalog_ab())
        assert cm.memory_units(Statistic.hist(SE("A"), "k")) == 100
        assert cm.memory_units(Statistic.distinct(SE("A"), "k")) == 100

    def test_joint_histogram_costs_product(self):
        cm = CostModel(catalog_ab())
        assert cm.memory_units(Statistic.hist(SE("A"), "k", "v")) == 700

    def test_se_size_caps_histogram(self):
        """A histogram cannot have more buckets than the SE has rows."""
        cm = CostModel(catalog_ab(), se_sizes={SE("A"): 12})
        assert cm.memory_units(Statistic.hist(SE("A"), "k")) == 12
        assert cm.memory_units(Statistic.hist(SE("A"), "k", "v")) == 12

    def test_reject_size_falls_back_to_source(self):
        rej = RejectSE(SE("A"), "k", SE("B"))
        cm = CostModel(catalog_ab(), se_sizes={SE("A"): 30})
        assert cm.memory_units(Statistic.hist(rej, "k")) == 30
        # explicit reject estimate wins
        cm2 = CostModel(catalog_ab(), se_sizes={SE("A"): 30, rej: 3})
        assert cm2.memory_units(Statistic.hist(rej, "k")) == 3

    def test_unknown_attr_uses_default_domain(self):
        cm = CostModel(catalog_ab(), default_domain=64)
        assert cm.memory_units(Statistic.hist(SE("A"), "zzz")) == 64

    def test_unobservable_is_infinite(self):
        cm = CostModel(catalog_ab())
        assert cm.cost(Statistic.card(SE("A")), observable=False) == INFINITE

    def test_cpu_weighting(self):
        cm = CostModel(
            catalog_ab(),
            se_sizes={SE("A"): 500},
            memory_weight=0.0,
            cpu_weight=2.0,
        )
        assert cm.cost(Statistic.card(SE("A"))) == 1000.0

    def test_blended_cost(self):
        cm = CostModel(
            catalog_ab(),
            se_sizes={SE("A"): 500},
            memory_weight=1.0,
            cpu_weight=1.0,
        )
        assert cm.cost(Statistic.hist(SE("A"), "k")) == 100 + 500


class TestBootstrap:
    def _simple(self):
        cat = catalog_ab()
        a, b = Source(cat, "A"), Source(cat, "B")
        wf = Workflow("w", cat, [Target(Join(a, b, "k"), "out")])
        return wf, analyze(wf)

    def test_join_size_formula(self):
        wf, analysis = self._simple()
        sizes = bootstrap_se_sizes(
            analysis,
            {"A": 1000, "B": 400},
            {"A": {"k": 100}, "B": {"k": 80}},
        )
        assert sizes[SE("A")] == 1000
        # |A join B| = 1000*400 / max(100, 80)
        assert sizes[SE("A", "B")] == pytest.approx(4000)

    def test_distinct_defaults_to_min_domain_card(self):
        wf, analysis = self._simple()
        profiles = profiles_from_characteristics(analysis, {"A": 40, "B": 400})
        assert profiles["A"].dv("k") == 40   # card-capped
        assert profiles["B"].dv("k") == 100  # domain-capped

    def test_reject_estimates_from_coverage(self):
        wf, analysis = self._simple()
        sizes = bootstrap_se_sizes(
            analysis,
            {"A": 1000, "B": 400},
            {"A": {"k": 100}, "B": {"k": 50}},  # B covers half the domain
        )
        rej_a = RejectSE(SE("A"), "k", SE("B"))
        assert sizes[rej_a] == pytest.approx(500)  # 1000 * (1 - 50/100)

    def test_reject_join_fanout(self):
        wf, analysis = self._simple()
        sizes = bootstrap_se_sizes(
            analysis,
            {"A": 1000, "B": 400},
            {"A": {"k": 100}, "B": {"k": 50}},
        )
        rjs = [se for se in sizes if isinstance(se, RejectJoinSE)]
        assert rjs  # side joins were estimated
        for rj in rjs:
            assert sizes[rj] >= 0

    def test_estimates_cover_star_workflow(self):
        wfcase = case(11)
        analysis = analyze(wfcase.build())
        cards, dv = wfcase.characteristics(scale=1.0)
        sizes = bootstrap_se_sizes(analysis, cards, dv)
        for block in analysis.blocks:
            for se in block.universe():
                assert se in sizes
                assert sizes[se] >= 0

    def test_fk_star_estimates_are_close(self):
        """On FK-lookup stars with full key coverage, the independence
        bootstrap is near-exact, which is what makes first-run CPU costs
        usable."""
        wfcase = case(11)
        analysis = analyze(wfcase.build())
        sources = wfcase.tables(scale=0.2, seed=3)
        cards = {name: t.num_rows for name, t in sources.items()}
        dv = {
            name: {a: t.distinct_count((a,)) for a in t.attrs}
            for name, t in sources.items()
        }
        sizes = bootstrap_se_sizes(analysis, cards, dv)
        truth = ground_truth_cardinalities(analysis, sources)
        block = analysis.blocks[0]
        full_noflt = SubExpression(
            frozenset(n for n in block.inputs if "@" not in n)
        )
        if full_noflt in truth:
            est, act = sizes[full_noflt], truth[full_noflt]
            assert est == pytest.approx(act, rel=0.35)
