"""Tests for the experiment-sweep library (repro.experiments)."""

import pytest

from repro.experiments import (
    SuiteContext,
    data_characteristics_rows,
    fig9_rows,
    fig11_rows,
    fig12_rows,
    format_rows,
)


@pytest.fixture(scope="module")
def small_context():
    return SuiteContext.build([2, 9, 15])


class TestSuiteContext:
    def test_build_restricts(self, small_context):
        assert [c.number for c in small_context.cases] == [2, 9, 15]
        assert len(small_context.analyses) == 3

    def test_build_all(self):
        context = SuiteContext.build()
        assert len(context.cases) == 30


class TestSweeps:
    def test_data_rows_shape(self):
        header, rows = data_characteristics_rows()
        assert header[0] == "Stat"
        assert [r[0] for r in rows] == ["Max", "Min", "Mean", "Median"]

    def test_fig9(self, small_context):
        header, rows = fig9_rows(small_context)
        assert len(rows) == 3
        for _wf, n_se, css_noud, css_ud in rows:
            assert css_ud >= css_noud
            assert n_se >= 1

    def test_fig11_ud_never_worse(self, small_context):
        _header, rows = fig11_rows(small_context, time_limit=10)
        for _wf, noud, ud, _tag in rows:
            assert ud <= noud + 1e-6

    def test_fig12(self, small_context):
        _header, rows = fig12_rows(small_context)
        by_wf = {r[0]: r for r in rows}
        assert by_wf[2][1] == 1
        assert by_wf[9][1] == 3
        for row in rows:
            assert row[2] >= row[1]  # found >= lower bound
            assert row[5] == 1       # ours: single execution


class TestFormatting:
    def test_format_rows_alignment(self):
        text = format_rows(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
