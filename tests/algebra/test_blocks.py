"""Unit tests for optimizable-block analysis (Section 3.2.1)."""


from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.plans import internal_ses, tree_ses
from repro.algebra.schema import Catalog

P = Predicate("p", lambda v: v > 1)
U = UdfSpec("u", lambda v: v)


def catalog5():
    cat = Catalog()
    cat.add_relation("T1", {"a": 10, "x": 50})
    cat.add_relation("T2", {"a": 10, "y": 60})
    cat.add_relation("T3", {"x": 50, "b": 80})
    cat.add_relation("T4", {"c": 40})
    cat.add_relation("T5", {"d": 30, "c": 40})
    return cat


class TestSingleBlock:
    def test_linear_flow_is_one_trivial_block(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 5})
        flow = Filter(Source(cat, "T"), "a", P)
        an = analyze(Workflow("w", cat, [Target(flow, "out")]))
        assert len(an.blocks) == 1
        block = an.blocks[0]
        assert block.n_way == 1
        assert len(block.inputs) == 1
        inp = next(iter(block.inputs.values()))
        assert [s.kind for s in inp.steps] == ["filter"]
        # stage chain: raw source + filtered stage
        assert len(inp.stage_ses()) == 2

    def test_join_chain_single_block(self):
        cat = catalog5()
        j = Join(Join(Source(cat, "T1"), Source(cat, "T2"), "a"),
                 Source(cat, "T3"), "x")
        an = analyze(Workflow("w", cat, [Target(j, "out")]))
        assert len(an.blocks) == 1
        block = an.blocks[0]
        assert block.n_way == 3
        assert not block.pinned
        assert block.join_se == SubExpression.of("T1", "T2", "T3")
        assert len(internal_ses(block.initial_tree)) == 2

    def test_filter_pushed_to_owning_input(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a")
        flow = Filter(j, "y", P)  # y belongs to T2
        an = analyze(Workflow("w", cat, [Target(flow, "out")]))
        block = an.blocks[0]
        pushed = [
            inp for inp in block.inputs.values()
            if any(s.kind == "filter" for s in inp.steps)
        ]
        assert len(pushed) == 1
        assert pushed[0].base_name == "T2"
        assert not block.post_steps


class TestBoundaries:
    def test_materialized_reject_pins_join(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a", reject_left=True)
        j2 = Join(j, Source(cat, "T3"), "x")
        an = analyze(Workflow("w", cat, [Target(j2, "out")]))
        assert len(an.blocks) == 2
        pinned = an.blocks[0]
        assert pinned.pinned
        assert pinned.materialized_rejects == (
            RejectSE(SubExpression.of("T1"), "a", SubExpression.of("T2")),
        )
        downstream = an.blocks[1]
        assert downstream.n_way == 2
        assert any(
            inp.base_name == pinned.output_name
            for inp in downstream.inputs.values()
        )

    def test_udf_derived_join_key_seals_block(self):
        """The Figure 3 B2 pattern: a transform spanning two inputs whose
        result is a downstream join key."""
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T3"), "x")
        u = Transform(j, ("a", "b"), UdfSpec("mk"), output_attr="c")
        out = Join(u, Source(cat, "T4"), "c")
        an = analyze(Workflow("w", cat, [Target(out, "out")]))
        assert len(an.blocks) == 2
        sealed = an.blocks[0]
        assert sealed.join_se == SubExpression.of("T1", "T3")
        assert [s.kind for s in sealed.post_steps] == ["transform"]
        # the sealed block's output SE reflects the post step
        assert sealed.output_se != sealed.join_se

    def test_single_input_udf_join_key_not_a_boundary(self):
        """A UDF anchored to one input does not force a boundary even if its
        result is a join key."""
        cat = catalog5()
        u = Transform(Source(cat, "T5"), "d", UdfSpec("mk"), output_attr="c")
        out = Join(u, Source(cat, "T4"), "c")
        an = analyze(Workflow("w", cat, [Target(out, "out")]))
        assert len(an.blocks) == 1
        assert an.blocks[0].n_way == 2

    def test_aggregate_is_boundary(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a")
        agg = Aggregate(j, ("a",), {"n": ("count", "x")})
        an = analyze(Workflow("w", cat, [Target(agg, "out")]))
        # the join block, plus a trivial block for the aggregate output
        assert len(an.blocks) == 2
        assert an.blocks[0].join_se == SubExpression.of("T1", "T2")
        assert any(b.node.label.startswith("Aggregate") for b in an.boundaries)

    def test_aggregate_feeds_downstream_block_with_link(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a")
        agg = Aggregate(j, ("a", "x"), {"n": ("count", "y")})
        out = Join(agg, Source(cat, "T3"), "x")
        an = analyze(Workflow("w", cat, [Target(out, "out")]))
        assert len(an.blocks) == 2
        downstream = an.blocks[1]
        linked = [
            inp for inp in downstream.inputs.values() if inp.upstream is not None
        ]
        assert len(linked) == 1
        assert linked[0].upstream.kind == "aggregate"
        assert linked[0].upstream.group_attrs == ("a", "x")

    def test_aggregate_udf_is_opaque_boundary(self):
        cat = catalog5()
        flow = AggregateUDF(Source(cat, "T1"), "dedupe")
        an = analyze(Workflow("w", cat, [Target(flow, "out")]))
        assert any(b.node.label.startswith("AggregateUDF") for b in an.boundaries)

    def test_materialize_is_boundary(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a")
        m = Materialize(j, "snapshot")
        out = Join(m, Source(cat, "T3"), "x")
        an = analyze(Workflow("w", cat, [Target(out, "out")]))
        assert len(an.blocks) == 2
        linked = [
            inp
            for inp in an.blocks[1].inputs.values()
            if inp.upstream is not None and inp.upstream.kind == "materialize"
        ]
        assert len(linked) == 1

    def test_shared_intermediate_is_boundary(self):
        cat = catalog5()
        j = Join(Source(cat, "T1"), Source(cat, "T2"), "a")
        left = Join(j, Source(cat, "T3"), "x")
        right = Filter(j, "y", P)
        an = analyze(
            Workflow("w", cat, [Target(left, "l"), Target(right, "r")])
        )
        # the shared join is its own block; both consumers read its output
        shared = an.blocks[0]
        assert shared.join_se == SubExpression.of("T1", "T2")
        assert len(an.blocks) == 3


class TestBlockAccessors:
    def _block(self):
        cat = catalog5()
        j = Join(Filter(Source(cat, "T1"), "x", P), Source(cat, "T2"), "a")
        an = analyze(Workflow("w", cat, [Target(j, "out")]))
        return an.blocks[0]

    def test_universe_contains_stages_and_joins(self):
        block = self._block()
        universe = block.universe()
        assert SubExpression.of("T1") in universe  # raw stage
        assert block.join_se in universe
        assert len(universe) == len(set(universe))

    def test_observable_ses_cover_initial_plan(self):
        block = self._block()
        observable = block.observable_ses()
        for se in tree_ses(block.initial_tree):
            assert se in observable

    def test_se_attrs_union_over_members(self):
        block = self._block()
        attrs = block.se_attrs(block.join_se)
        assert set(attrs) == {"a", "x", "y"}

    def test_input_for_attr(self):
        block = self._block()
        owners = block.input_for_attr("a")
        assert len(owners) == 2  # join key lives on both inputs
