"""Tests for workflow JSON/XML serialization round-trips."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.serialize import (
    FunctionRegistry,
    SerializationError,
    workflow_from_dict,
    workflow_from_json,
    workflow_from_xml,
    workflow_to_dict,
    workflow_to_json,
    workflow_to_xml,
)
from repro.workloads import case, suite


def registry_for(numbers=()):
    """Pass-through registry; semantics only matter for execution tests."""
    return FunctionRegistry()


class TestJsonRoundTrip:
    @pytest.mark.parametrize("number", [1, 7, 17, 21, 22, 25])
    def test_structure_survives(self, number):
        original = case(number).build()
        clone = workflow_from_json(workflow_to_json(original))
        assert clone.name == original.name
        assert clone.source_names() == original.source_names()
        # the clone analyzes to the same block structure
        a1, a2 = analyze(original), analyze(clone)
        assert len(a1.blocks) == len(a2.blocks)
        for b1, b2 in zip(a1.blocks, a2.blocks):
            assert b1.n_way == b2.n_way
            assert str(b1.initial_tree) == str(b2.initial_tree)
            assert b1.pinned == b2.pinned

    def test_identical_css_catalogs(self):
        """The whole identification pipeline produces the same statistics
        for an imported workflow."""
        from repro.core.generator import generate_css

        original = case(11).build()
        clone = workflow_from_json(workflow_to_json(original))
        c1 = generate_css(analyze(original))
        c2 = generate_css(analyze(clone))
        assert c1.counts() == c2.counts()
        assert c1.required == c2.required

    def test_catalog_metadata_survives(self):
        original = case(11).build()
        clone = workflow_from_json(workflow_to_json(original))
        assert set(clone.catalog.relations) == set(original.catalog.relations)
        assert len(clone.catalog.foreign_keys) == len(original.catalog.foreign_keys)
        for attr in ("account_id", "security_id"):
            assert clone.catalog.domain_size(attr) == original.catalog.domain_size(attr)

    def test_registry_binds_semantics(self):
        doc = workflow_to_dict(case(1).build())
        registry = FunctionRegistry(
            predicates={"first_half": lambda v: v <= 182},
            udfs={"fiscal": lambda v: ((v - 1) // 7) + 1},
        )
        clone = workflow_from_dict(doc, registry)
        from repro.algebra.operators import Filter

        filters = [n for n in clone.nodes() if isinstance(n, Filter)]
        assert filters and filters[0].predicate(100) and not filters[0].predicate(300)

    def test_executed_results_match_with_registry(self):
        from repro.engine.executor import Executor
        from repro.workloads.tpcdi import P_FIRST_HALF, U_FISCAL

        wfcase = case(1)
        original = wfcase.build()
        registry = FunctionRegistry(
            predicates={P_FIRST_HALF.name: P_FIRST_HALF.fn},
            udfs={U_FISCAL.name: U_FISCAL.fn},
        )
        clone = workflow_from_json(workflow_to_json(original), registry)
        sources = wfcase.tables(scale=0.2, seed=6)
        run1 = Executor(analyze(original)).run(sources)
        run2 = Executor(analyze(clone)).run(sources)
        t1, t2 = run1.targets["dim_date"], run2.targets["dim_date"]
        assert sorted(t1.rows(sorted(t1.attrs))) == sorted(t2.rows(sorted(t2.attrs)))


class TestXmlRoundTrip:
    @pytest.mark.parametrize("number", [5, 11, 23, 30])
    def test_xml_structure_survives(self, number):
        original = case(number).build()
        xml = workflow_to_xml(original)
        assert xml.startswith("<etl-workflow")
        clone = workflow_from_xml(xml)
        a1, a2 = analyze(original), analyze(clone)
        assert [b.n_way for b in a1.blocks] == [b.n_way for b in a2.blocks]

    def test_whole_suite_round_trips(self):
        for c in suite():
            original = c.build()
            clone = workflow_from_xml(workflow_to_xml(original))
            assert clone.source_names() == original.source_names()


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            workflow_from_json("{nope")

    def test_bad_xml(self):
        with pytest.raises(SerializationError, match="invalid XML"):
            workflow_from_xml("<unclosed")

    def test_wrong_root(self):
        with pytest.raises(SerializationError, match="unexpected root"):
            workflow_from_xml("<other/>")

    def test_missing_sections(self):
        with pytest.raises(SerializationError, match="missing workflow"):
            workflow_from_dict({"name": "x"})

    def test_unknown_node_kind(self):
        doc = workflow_to_dict(case(2).build())
        doc["nodes"][0]["kind"] = "Mystery"
        with pytest.raises(SerializationError):
            workflow_from_dict(doc)

    def test_target_ref_must_be_target(self):
        doc = workflow_to_dict(case(2).build())
        doc["targets"] = [doc["nodes"][0]["id"]]
        with pytest.raises(SerializationError, match="not a Target"):
            workflow_from_dict(doc)
