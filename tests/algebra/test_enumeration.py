"""Unit tests for join-graph SE enumeration and plan-space generation."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.enumeration import JoinEdge, JoinGraph, JoinGraphError
from repro.algebra.expressions import SubExpression
from repro.algebra.plans import internal_ses, leaves, tree_ses


def chain(n):
    names = [f"T{i}" for i in range(n)]
    edges = [JoinEdge(names[i], names[i + 1], f"k{i}") for i in range(n - 1)]
    return JoinGraph(names, edges)


def star(n):
    names = ["F"] + [f"D{i}" for i in range(n - 1)]
    edges = [JoinEdge("F", d, f"k{i}") for i, d in enumerate(names[1:])]
    return JoinGraph(names, edges)


def clique(n):
    names = [f"T{i}" for i in range(n)]
    edges = [
        JoinEdge(a, b, "k") for i, a in enumerate(names) for b in names[i + 1:]
    ]
    return JoinGraph(names, edges)


class TestJoinEdge:
    def test_canonical_endpoint_order(self):
        e = JoinEdge("B", "A", "k")
        assert (e.u, e.v) == ("A", "B")
        assert e.other("A") == "B" and e.other("B") == "A"

    def test_self_edge_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinEdge("A", "A", "k")

    def test_other_validates_endpoint(self):
        with pytest.raises(JoinGraphError):
            JoinEdge("A", "B", "k").other("C")


class TestJoinGraph:
    def test_rejects_duplicate_inputs(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A", "A"], [])

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A"], [JoinEdge("A", "B", "k")])

    def test_connectivity(self):
        g = chain(4)
        assert g.is_connected(frozenset({"T0", "T1"}))
        assert not g.is_connected(frozenset({"T0", "T2"}))
        assert g.is_connected(frozenset({"T0", "T1", "T2"}))
        assert not g.is_connected(frozenset())

    def test_crossing_key(self):
        g = chain(3)
        assert g.crossing_key(frozenset({"T0"}), frozenset({"T1"})) == ("k0",)
        assert g.crossing_key(frozenset({"T0"}), frozenset({"T2"})) == ()

    def test_crossing_key_multi_attr(self):
        g = JoinGraph(
            ["A", "B"], [JoinEdge("A", "B", "x"), JoinEdge("A", "B", "y")]
        )
        assert g.crossing_key(frozenset({"A"}), frozenset({"B"})) == ("x", "y")


class TestEnumerateSes:
    def test_chain_counts(self):
        # a chain of n has n*(n+1)/2 connected intervals
        for n in (2, 3, 4, 5, 6):
            assert len(chain(n).enumerate_ses()) == n * (n + 1) // 2

    def test_star_counts(self):
        # star subsets: singletons (n) + any non-empty dim-set with the hub
        for n in (3, 4, 5):
            expected = n + (2 ** (n - 1) - 1)
            assert len(star(n).enumerate_ses()) == expected

    def test_clique_counts(self):
        # every non-empty subset of a clique is connected
        for n in (2, 3, 4, 5):
            assert len(clique(n).enumerate_ses()) == 2**n - 1

    def test_full_se_always_present(self):
        g = chain(4)
        assert SubExpression(frozenset(g.inputs)) in g.enumerate_ses()

    def test_sorted_smallest_first(self):
        ses = chain(4).enumerate_ses()
        sizes = [len(se) for se in ses]
        assert sizes == sorted(sizes)


class TestSplits:
    def test_base_se_has_no_plans(self):
        g = chain(3)
        assert g.splits_for(SubExpression.of("T0")) == []

    def test_chain_pair_has_single_split(self):
        g = chain(3)
        splits = g.splits_for(SubExpression.of("T0", "T1"))
        assert len(splits) == 1
        assert splits[0].key == ("k0",)

    def test_splits_cover_both_sides_connected(self):
        g = chain(4)
        for se in g.enumerate_ses():
            for split in g.splits_for(se):
                assert g.is_connected(split.left.relations)
                assert g.is_connected(split.right.relations)
                assert split.left.relations | split.right.relations == se.relations
                assert not split.left.relations & split.right.relations

    def test_no_cross_products(self):
        g = chain(4)
        full = SubExpression(frozenset(g.inputs))
        for split in g.splits_for(full):
            assert g.crossing_key(split.left.relations, split.right.relations)

    def test_plan_space_maps_each_se(self):
        g = star(4)
        space = g.plan_space()
        assert set(space) == set(g.enumerate_ses())


class TestTrees:
    def test_count_matches_enumeration(self):
        for g in (chain(4), star(4), clique(4)):
            assert g.count_trees() == len(g.enumerate_trees())

    def test_chain_catalan_counts(self):
        # join trees over a chain of n = binary trees respecting adjacency:
        # the unconstrained-bushy count for chains is the Catalan number C_{n-1}
        def catalan(k):
            return math.comb(2 * k, k) // (k + 1)

        for n in (2, 3, 4, 5):
            assert chain(n).count_trees() == catalan(n - 1)

    def test_trees_produce_full_se(self):
        g = star(4)
        full = SubExpression(frozenset(g.inputs))
        for tree in g.enumerate_trees():
            assert tree.se == full
            assert {leaf.name for leaf in leaves(tree)} == set(g.inputs)

    def test_limit_caps_enumeration(self):
        g = clique(5)
        trees = g.enumerate_trees(limit=7)
        assert len(trees) <= 7 * 7  # limit applies per sub-enumeration

    def test_internal_ses_are_connected(self):
        g = clique(4)
        for tree in g.enumerate_trees():
            for se in internal_ses(tree):
                assert g.is_connected(se.relations)

    def test_random_tree_is_valid(self):
        g = clique(5)
        rng = random.Random(3)
        for _ in range(20):
            tree = g.random_tree(rng)
            assert {leaf.name for leaf in leaves(tree)} == set(g.inputs)
            for se in tree_ses(tree):
                assert g.is_connected(se.relations)

    def test_disconnected_se_has_no_tree(self):
        g = chain(3)
        with pytest.raises(JoinGraphError):
            g.enumerate_trees(SubExpression.of("T0", "T2"))


@given(st.integers(3, 6), st.integers(0, 1000))
@settings(max_examples=30)
def test_random_connected_graph_invariants(n, seed):
    """SE enumeration over random connected graphs: every SE connected,
    every split crossing-keyed."""
    rng = random.Random(seed)
    names = [f"T{i}" for i in range(n)]
    edges = [
        JoinEdge(names[i], names[rng.randrange(i)], f"a{i}") for i in range(1, n)
    ]
    extra = rng.randrange(3)
    for j in range(extra):
        u, v = rng.sample(names, 2)
        edges.append(JoinEdge(u, v, f"x{j}"))
    g = JoinGraph(names, edges)
    ses = g.enumerate_ses()
    assert SubExpression(frozenset(names)) in ses
    for se in ses:
        assert g.is_connected(se.relations)
        for split in g.splits_for(se):
            assert split.key
