"""Unit tests for plan trees and join splits."""

import pytest

from repro.algebra.expressions import SubExpression
from repro.algebra.plans import (
    JoinNode,
    JoinSplit,
    Leaf,
    find_node,
    internal_ses,
    leaves,
    left_deep,
    subtrees,
    tree_joins,
    tree_ses,
    tree_splits,
)


def sample_tree():
    return JoinNode(
        JoinNode(Leaf("A"), Leaf("B"), ("x",)),
        Leaf("C"),
        ("y",),
    )


class TestPlanTree:
    def test_leaf_se(self):
        assert Leaf("A").se == SubExpression.of("A")

    def test_join_node_se_unions(self):
        assert sample_tree().se == SubExpression.of("A", "B", "C")

    def test_subtrees_postorder(self):
        ses = [t.se for t in subtrees(sample_tree())]
        assert ses == [
            SubExpression.of("A"),
            SubExpression.of("B"),
            SubExpression.of("A", "B"),
            SubExpression.of("C"),
            SubExpression.of("A", "B", "C"),
        ]

    def test_tree_ses_and_internal_ses(self):
        tree = sample_tree()
        assert len(tree_ses(tree)) == 5
        assert internal_ses(tree) == [
            SubExpression.of("A", "B"),
            SubExpression.of("A", "B", "C"),
        ]

    def test_leaves_and_joins(self):
        tree = sample_tree()
        assert [leaf.name for leaf in leaves(tree)] == ["A", "B", "C"]
        assert len(tree_joins(tree)) == 2

    def test_find_node(self):
        tree = sample_tree()
        node = find_node(tree, SubExpression.of("A", "B"))
        assert node is not None and node.key == ("x",)
        assert find_node(tree, SubExpression.of("B", "C")) is None

    def test_left_deep_builder(self):
        tree = left_deep(["A", "B", "C"], lambda l, r: ("k",))
        assert tree.se == SubExpression.of("A", "B", "C")
        assert internal_ses(tree)[0] == SubExpression.of("A", "B")

    def test_left_deep_empty_rejected(self):
        with pytest.raises(ValueError):
            left_deep([], lambda l, r: ("k",))


class TestJoinSplit:
    def test_canonical_side_order(self):
        s1 = JoinSplit(SubExpression.of("B"), SubExpression.of("A"), ("k",))
        s2 = JoinSplit(SubExpression.of("A"), SubExpression.of("B"), ("k",))
        assert s1 == s2
        assert s1.left == SubExpression.of("A")

    def test_key_sorted(self):
        s = JoinSplit(SubExpression.of("A"), SubExpression.of("B"), ("z", "a"))
        assert s.key == ("a", "z")

    def test_se_property(self):
        s = JoinSplit(SubExpression.of("A"), SubExpression.of("B", "C"), ("k",))
        assert s.se == SubExpression.of("A", "B", "C")

    def test_tree_splits_match_join_nodes(self):
        splits = tree_splits(sample_tree())
        assert JoinSplit(SubExpression.of("A"), SubExpression.of("B"), ("x",)) in splits
        assert (
            JoinSplit(
                SubExpression.of("A", "B"), SubExpression.of("C"), ("y",)
            )
            in splits
        )
