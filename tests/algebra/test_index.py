"""Unit tests for the shared SE index."""

import pytest

from repro.algebra.blocks import analyze
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.index import SEIndex
from repro.algebra.operators import (
    Filter,
    Join,
    Predicate,
    Source,
    Target,
    Workflow,
)
from repro.algebra.schema import Catalog

SE = SubExpression.of


@pytest.fixture
def indexed():
    cat = Catalog()
    cat.add_relation("A", {"k": 5, "v": 9})
    cat.add_relation("B", {"k": 5, "m": 4})
    cat.add_relation("C", {"m": 4})
    a = Filter(Source(cat, "A"), "v", Predicate("p", lambda v: v > 2))
    flow = Join(Join(a, Source(cat, "B"), "k"), Source(cat, "C"), "m")
    wf = Workflow("w", cat, [Target(flow, "out")])
    analysis = analyze(wf)
    return analysis, SEIndex(analysis)


class TestSEIndex:
    def test_block_of_join_se(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        filtered = [n for n in block.inputs if n.startswith("A@")][0]
        assert index.block_of(SE(filtered, "B")) is block

    def test_block_of_stage_se(self, indexed):
        analysis, index = indexed
        assert index.block_of(SE("A")) is analysis.blocks[0]

    def test_block_of_reject_forms(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        filtered = [n for n in block.inputs if n.startswith("A@")][0]
        rej = RejectSE(SE(filtered), "k", SE("B"))
        assert index.block_of(rej) is block
        rj = RejectJoinSE(rej, "m", SE("C"))
        assert index.block_of(rj) is block

    def test_unknown_se_raises(self, indexed):
        _analysis, index = indexed
        with pytest.raises(KeyError):
            index.block_of(SE("nope"))

    def test_se_attrs_for_stages(self, indexed):
        analysis, index = indexed
        # raw A has both attrs; so does the filtered stage
        assert set(index.se_attrs(SE("A"))) == {"k", "v"}

    def test_se_attrs_for_reject_join(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        filtered = [n for n in block.inputs if n.startswith("A@")][0]
        rej = RejectSE(SE(filtered), "k", SE("B"))
        rj = RejectJoinSE(rej, "m", SE("C"))
        # attrs of the side join = source attrs union other attrs
        assert "m" in index.se_attrs(rj)

    def test_observability(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        filtered = [n for n in block.inputs if n.startswith("A@")][0]
        assert index.se_observable(SE(filtered, "B"))  # in initial plan
        assert not index.se_observable(SE("B", "C"))   # valid SE, off-plan
        # reject of the first join is instrumentable
        rej = RejectSE(SE(filtered), "k", SE("B"))
        assert index.se_observable(rej)
        # reject join never is
        assert not index.se_observable(RejectJoinSE(rej, "m", SE("C")))

    def test_reject_join_node_lookup(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        filtered = [n for n in block.inputs if n.startswith("A@")][0]
        node = index.reject_join_node(RejectSE(SE(filtered), "k", SE("B")))
        assert node is not None
        assert node.se == SE(filtered, "B")
        # a reject that matches no initial-plan join
        assert index.reject_join_node(
            RejectSE(SE("B"), "m", SE("C"))
        ) is None

    def test_splits_populated(self, indexed):
        analysis, index = indexed
        block = analysis.blocks[0]
        full = block.join_se
        assert index.splits[full]
