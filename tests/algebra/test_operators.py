"""Unit tests for the workflow DAG model and schema propagation."""

import pytest

from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
    WorkflowError,
)
from repro.algebra.schema import Catalog


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_relation("T1", {"a": 10, "b": 20})
    cat.add_relation("T2", {"a": 10, "c": 30})
    cat.add_attribute("d", 40)
    return cat


class TestNodes:
    def test_source_attrs(self, catalog):
        assert Source(catalog, "T1").output_attrs() == ("a", "b")

    def test_filter_validates_attr(self, catalog):
        src = Source(catalog, "T1")
        Filter(src, "a", Predicate("p"))
        with pytest.raises(WorkflowError):
            Filter(src, "zzz", Predicate("p"))

    def test_project_narrows_attrs(self, catalog):
        node = Project(Source(catalog, "T1"), ("b",))
        assert node.output_attrs() == ("b",)
        with pytest.raises(WorkflowError):
            Project(Source(catalog, "T1"), ("zzz",))

    def test_transform_in_place_keeps_attrs(self, catalog):
        node = Transform(Source(catalog, "T1"), "a", UdfSpec("u"))
        assert node.output_attrs() == ("a", "b")
        assert node.result_attr == "a"

    def test_transform_derives_new_attr(self, catalog):
        node = Transform(Source(catalog, "T1"), "a", UdfSpec("u"), output_attr="d")
        assert node.output_attrs() == ("a", "b", "d")
        assert node.result_attr == "d"

    def test_multi_attr_transform_needs_output(self, catalog):
        src = Source(catalog, "T1")
        with pytest.raises(WorkflowError):
            Transform(src, ("a", "b"), UdfSpec("u"))
        node = Transform(src, ("a", "b"), UdfSpec("u"), output_attr="d")
        assert node.input_attrs == ("a", "b")

    def test_join_unions_attrs(self, catalog):
        j = Join(Source(catalog, "T1"), Source(catalog, "T2"), "a")
        assert j.output_attrs() == ("a", "b", "c")

    def test_join_validates_key(self, catalog):
        with pytest.raises(WorkflowError):
            Join(Source(catalog, "T1"), Source(catalog, "T2"), "b")

    def test_join_rejects_shared_origins(self, catalog):
        t1 = Source(catalog, "T1")
        with pytest.raises(WorkflowError):
            Join(t1, Filter(t1, "a", Predicate("p")), "a")

    def test_aggregate_validation(self, catalog):
        src = Source(catalog, "T1")
        agg = Aggregate(src, ("a",), {"n": ("count", "b")})
        assert agg.output_attrs() == ("a", "n")
        with pytest.raises(WorkflowError):
            Aggregate(src, ("zzz",))
        with pytest.raises(WorkflowError):
            Aggregate(src, ("a",), {"n": ("median", "b")})
        with pytest.raises(WorkflowError):
            Aggregate(src, ("a",), {"n": ("sum", "zzz")})

    def test_origin_relations_propagate(self, catalog):
        j = Join(Source(catalog, "T1"), Source(catalog, "T2"), "a")
        assert j.origin_relations() == frozenset({"T1", "T2"})
        assert Materialize(j, "m").origin_relations() == frozenset({"T1", "T2"})


class TestWorkflow:
    def test_requires_target(self, catalog):
        with pytest.raises(WorkflowError):
            Workflow("w", catalog, [])

    def test_nodes_topological(self, catalog):
        t1, t2 = Source(catalog, "T1"), Source(catalog, "T2")
        j = Join(t1, t2, "a")
        wf = Workflow("w", catalog, [Target(j, "out")])
        order = wf.nodes()
        assert order.index(t1) < order.index(j)
        assert order.index(t2) < order.index(j)
        assert isinstance(order[-1], Target)

    def test_source_names_deduplicated(self, catalog):
        t1 = Source(catalog, "T1")
        f1 = Filter(t1, "a", Predicate("p"))
        f2 = Filter(t1, "b", Predicate("q"))
        j = Join(f1, Source(catalog, "T2"), "a")
        wf = Workflow("w", catalog, [Target(j, "x"), Target(f2, "y")])
        assert wf.source_names() == ["T1", "T2"]

    def test_consumers_map(self, catalog):
        t1 = Source(catalog, "T1")
        f = Filter(t1, "a", Predicate("p"))
        wf = Workflow("w", catalog, [Target(f, "out")])
        consumers = wf.consumers()
        assert [n.label for n in consumers[t1.node_id]] == [f.label]

    def test_describe_mentions_every_node(self, catalog):
        t1 = Source(catalog, "T1")
        wf = Workflow("w", catalog, [Target(t1, "out")])
        text = wf.describe()
        assert "Source(T1)" in text and "Target(out)" in text


class TestPredicateUdf:
    def test_predicate_equality_by_name(self):
        assert Predicate("p", lambda v: v > 1) == Predicate("p", lambda v: v < 1)
        assert Predicate("p") != Predicate("q")

    def test_predicate_callable(self):
        assert Predicate("p", lambda v: v > 1)(2)

    def test_udf_callable(self):
        assert UdfSpec("u", lambda v: v * 2)(3) == 6
