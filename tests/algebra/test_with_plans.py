"""Tests for re-binding a block's initial plan (plan-override analysis)."""

import pytest

from repro.algebra.blocks import analyze, with_plans
from repro.algebra.expressions import SubExpression
from repro.algebra.operators import Join, Source, Target, Workflow, WorkflowError
from repro.algebra.plans import JoinNode, Leaf
from repro.algebra.schema import Catalog
from repro.core.generator import generate_css
from repro.core.statistics import Statistic

SE = SubExpression.of


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_relation("A", {"k": 5, "m": 4})
    cat.add_relation("B", {"k": 5})
    cat.add_relation("C", {"m": 4})
    flow = Join(Join(Source(cat, "A"), Source(cat, "B"), "k"), Source(cat, "C"), "m")
    wf = Workflow("w", cat, [Target(flow, "out")])
    return wf, analyze(wf)


class TestWithPlans:
    def test_rebinds_initial_tree(self, setup):
        wf, analysis = setup
        alt = JoinNode(JoinNode(Leaf("A"), Leaf("C"), ("m",)), Leaf("B"), ("k",))
        rebound = with_plans(analysis, {"B1": alt})
        assert str(rebound.blocks[0].initial_tree) == str(alt)
        # the original analysis is untouched
        assert str(analysis.blocks[0].initial_tree) != str(alt)

    def test_changes_observability(self, setup):
        wf, analysis = setup
        alt = JoinNode(JoinNode(Leaf("A"), Leaf("C"), ("m",)), Leaf("B"), ("k",))
        base_catalog = generate_css(analysis)
        alt_catalog = generate_css(with_plans(analysis, {"B1": alt}))
        assert base_catalog.is_observable(Statistic.card(SE("A", "B")))
        assert not base_catalog.is_observable(Statistic.card(SE("A", "C")))
        assert alt_catalog.is_observable(Statistic.card(SE("A", "C")))
        assert not alt_catalog.is_observable(Statistic.card(SE("A", "B")))

    def test_unknown_block_rejected(self, setup):
        wf, analysis = setup
        with pytest.raises(WorkflowError, match="unknown blocks"):
            with_plans(analysis, {"B9": Leaf("A")})

    def test_wrong_leaves_rejected(self, setup):
        wf, analysis = setup
        bad = JoinNode(Leaf("A"), Leaf("B"), ("k",))
        with pytest.raises(WorkflowError, match="cover its inputs"):
            with_plans(analysis, {"B1": bad})

    def test_pinned_blocks_keep_plan(self):
        cat = Catalog()
        cat.add_relation("A", {"k": 5})
        cat.add_relation("B", {"k": 5})
        pinned = Join(Source(cat, "A"), Source(cat, "B"), "k", reject_left=True)
        wf = Workflow("w", cat, [Target(pinned, "out")])
        analysis = analyze(wf)
        block = analysis.blocks[0]
        swapped = JoinNode(Leaf("B"), Leaf("A"), ("k",))
        rebound = with_plans(analysis, {block.name: swapped})
        assert str(rebound.blocks[0].initial_tree) == str(block.initial_tree)

    def test_same_tree_is_shared(self, setup):
        wf, analysis = setup
        rebound = with_plans(analysis, {"B1": analysis.blocks[0].initial_tree})
        assert rebound.blocks[0] is analysis.blocks[0]
