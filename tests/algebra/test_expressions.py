"""Unit tests for sub-expression identities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.expressions import (
    RejectJoinSE,
    RejectSE,
    SubExpression,
    se_sort_key,
)


names = st.sets(st.sampled_from(["T1", "T2", "T3", "T4", "T5"]), min_size=1)


class TestSubExpression:
    def test_order_insensitive_identity(self):
        assert SubExpression.of("A", "B") == SubExpression.of("B", "A")
        assert hash(SubExpression.of("A", "B")) == hash(SubExpression.of("B", "A"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SubExpression(frozenset())

    def test_base_accessors(self):
        se = SubExpression.of("T1")
        assert se.is_base and se.base_name == "T1"
        with pytest.raises(ValueError):
            SubExpression.of("T1", "T2").base_name

    def test_union_and_contains(self):
        a, b = SubExpression.of("T1"), SubExpression.of("T2", "T3")
        u = a.union(b)
        assert u == SubExpression.of("T1", "T2", "T3")
        assert u.contains(a) and u.contains(b)
        assert not a.contains(u)
        assert a.overlaps(u) and not a.overlaps(b)

    def test_ordering_by_size_then_name(self):
        ses = [
            SubExpression.of("T2"),
            SubExpression.of("T1", "T3"),
            SubExpression.of("T1"),
        ]
        assert sorted(ses) == [
            SubExpression.of("T1"),
            SubExpression.of("T2"),
            SubExpression.of("T1", "T3"),
        ]

    @given(names, names)
    def test_union_is_commutative(self, a, b):
        sa, sb = SubExpression(frozenset(a)), SubExpression(frozenset(b))
        assert sa.union(sb) == sb.union(sa)

    @given(names)
    def test_sort_key_stable(self, a):
        se = SubExpression(frozenset(a))
        assert se_sort_key(se) == se_sort_key(SubExpression(frozenset(sorted(a))))


class TestRejectForms:
    def test_reject_identity(self):
        r1 = RejectSE(SubExpression.of("T1"), "a", SubExpression.of("T2"))
        r2 = RejectSE(SubExpression.of("T1"), "a", SubExpression.of("T2"))
        assert r1 == r2
        assert r1 != RejectSE(SubExpression.of("T2"), "a", SubExpression.of("T1"))

    def test_reject_join_identity(self):
        rej = RejectSE(SubExpression.of("T1"), "a", SubExpression.of("T2"))
        j1 = RejectJoinSE(rej, "b", SubExpression.of("T3"))
        j2 = RejectJoinSE(rej, "b", SubExpression.of("T3"))
        assert j1 == j2
        assert j1 != RejectJoinSE(rej, "c", SubExpression.of("T3"))

    def test_sort_keys_distinguish_flavours(self):
        se = SubExpression.of("T1")
        rej = RejectSE(se, "a", SubExpression.of("T2"))
        rj = RejectJoinSE(rej, "b", SubExpression.of("T3"))
        keys = {se_sort_key(se)[0], se_sort_key(rej)[0], se_sort_key(rj)[0]}
        assert keys == {0, 1, 2}

    def test_sort_key_rejects_garbage(self):
        with pytest.raises(TypeError):
            se_sort_key("T1")
