"""Unit tests for catalog / schema metadata."""

import pytest

from repro.algebra.schema import Attribute, Catalog, SchemaError


class TestAttribute:
    def test_positive_domain_required(self):
        with pytest.raises(SchemaError):
            Attribute("a", 0)

    def test_equality(self):
        assert Attribute("a", 10) == Attribute("a", 10)


class TestCatalog:
    def test_add_relation_registers_attributes(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10, "b": 20})
        assert cat.domain_size("a") == 10
        assert cat.relation("T").attribute_names == ("a", "b")

    def test_shared_attribute_domains_must_agree(self):
        cat = Catalog()
        cat.add_relation("T1", {"a": 10})
        with pytest.raises(SchemaError):
            cat.add_relation("T2", {"a": 11})

    def test_shared_attribute_reused(self):
        cat = Catalog()
        cat.add_relation("T1", {"a": 10})
        cat.add_relation("T2", {"a": 10, "b": 5})
        assert cat.relation("T1").attribute("a") is cat.relation("T2").attribute("a")

    def test_duplicate_relation_rejected(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10})
        with pytest.raises(SchemaError):
            cat.add_relation("T", {"a": 10})

    def test_unknown_lookups_raise(self):
        cat = Catalog()
        with pytest.raises(SchemaError):
            cat.relation("nope")
        with pytest.raises(SchemaError):
            cat.attribute("nope")

    def test_foreign_keys(self):
        cat = Catalog()
        cat.add_relation("Fact", {"k": 10, "v": 5})
        cat.add_relation("Dim", {"k": 10})
        cat.add_foreign_key("Fact", "Dim", "k")
        assert cat.is_lookup_join("Fact", "Dim", "k")
        assert not cat.is_lookup_join("Dim", "Fact", "k")

    def test_foreign_key_validation(self):
        cat = Catalog()
        cat.add_relation("Fact", {"k": 10})
        with pytest.raises(SchemaError):
            cat.add_foreign_key("Fact", "Missing", "k")
        cat.add_relation("Dim", {"other": 3})
        with pytest.raises(SchemaError):
            cat.add_foreign_key("Fact", "Dim", "k")

    def test_derive_attribute_inherits_domain(self):
        cat = Catalog()
        cat.add_relation("T", {"a": 10})
        derived = cat.derive_attribute("a", "f")
        assert derived.domain_size == 10
        assert cat.domain_size("f(a)") == 10
