"""Memory-constrained statistics collection (Section 6.1).

When the optimal statistics set does not fit the observation-memory budget,
the framework schedules *multiple* executions with re-ordered plans: each
run observes what fits (trivial counters plus whatever cheap histograms the
budget allows), and plan re-ordering makes previously unobservable
sub-expressions observable.  More memory => fewer executions -- the
space/time trade-off of Section 8.2.

Run:  python examples/memory_constrained.py
"""

from repro import (
    CardinalityEstimator,
    CostModel,
    Executor,
    GeneratorOptions,
    StatisticsStore,
    TapSet,
    analyze,
    build_problem,
    generate_css,
    plan_constrained,
    solve_ilp,
)
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.workloads import case


def main() -> None:
    wfcase = case(13)  # 5-way star join around Holding
    workflow = wfcase.build()
    analysis = analyze(workflow)
    # FK metadata would collapse the bill to a handful of counters (see the
    # metadata ablation bench); disable it so the budget actually bites
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    sources = wfcase.tables(scale=0.3, seed=21)

    optimal = solve_ilp(build_problem(catalog, cost_model))
    print(f"unconstrained optimum: {optimal.total_cost:g} memory units, "
          f"1 execution\n")

    print(f"{'budget':>10} {'executions':>11} {'peak memory':>12}")
    budgets = [max(optimal.total_cost * f, 12) for f in (1.2, 0.5, 0.2, 0.02)]
    schedules = {}
    for budget in budgets:
        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=budget
        )
        schedules[budget] = schedule
        print(
            f"{budget:>10.0f} {schedule.executions:>11} "
            f"{schedule.peak_memory:>12.0f}"
        )

    # actually execute the tightest schedule and prove sufficiency
    tight = schedules[budgets[-1]]
    print(f"\nexecuting the {tight.executions}-run schedule "
          f"(budget {budgets[-1]:.0f}):")
    merged = StatisticsStore()
    for i, step in enumerate(tight.steps, start=1):
        taps = TapSet(step.observe)
        run = Executor(analysis).run(sources, trees=step.trees, taps=taps)
        merged.merge(run.observations)
        print(f"  run {i}: observed {len(step.observe)} statistics "
              f"({step.memory:.0f} units)")

    estimator = CardinalityEstimator(catalog, merged)
    truth = ground_truth_cardinalities(analysis, sources)
    errors = sum(
        1
        for se, actual in truth.items()
        if abs(estimator.cardinality(se) - actual) > 1e-9
    )
    print(f"\nall {len(truth)} sub-expression cardinalities recovered, "
          f"{errors} mismatches")


if __name__ == "__main__":
    main()
