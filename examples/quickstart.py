"""Quickstart: learn the essential statistics for an ETL workflow.

The Figure 1 flow from the paper: Orders joins Product and Customer.  We

1. define the workflow DAG and its catalog,
2. let the framework identify the cheapest sufficient statistics set,
3. run the instrumented initial plan over synthetic data,
4. show that every sub-expression's cardinality is now known exactly,
5. let the cost-based optimizer pick the best join order for future runs.

Run:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    Join,
    Source,
    StatisticsPipeline,
    Target,
    Workflow,
)
from repro.engine.table import Table
from repro.workloads.datagen import TableSpec, generate_tables


def build_workflow() -> Workflow:
    catalog = Catalog()
    catalog.add_relation("Orders", {"pid": 60, "cid": 80, "oid": 5000})
    catalog.add_relation("Product", {"pid": 60, "pname": 50})
    catalog.add_relation("Customer", {"cid": 80, "cname": 70})

    orders = Source(catalog, "Orders")
    product = Source(catalog, "Product")
    customer = Source(catalog, "Customer")
    # the designer's initial plan: (Orders |x| Product) |x| Customer
    flow = Join(Join(orders, product, "pid"), customer, "cid")
    return Workflow("orders_report", catalog, [Target(flow, "report")])


def build_data() -> dict[str, Table]:
    specs = {
        "Orders": TableSpec("Orders", 1200)
        .column("pid", 60, skew=1.3)
        .column("cid", 80, skew=1.2)
        .column("oid", 5000, serial=True),
        "Product": TableSpec("Product", 60).column("pid", 60, serial=True)
        .column("pname", 50),
        "Customer": TableSpec("Customer", 80).column("cid", 80, serial=True)
        .column("cname", 70),
    }
    return generate_tables(specs, seed=42)


def main() -> None:
    workflow = build_workflow()
    pipeline = StatisticsPipeline(workflow)

    print("== workflow ==")
    print(workflow.describe())

    selection = pipeline.select_statistics()
    print("\n== statistics chosen for observation (Section 5) ==")
    print(selection.describe())

    report = pipeline.run_once(build_data())
    print("\n== learned cardinalities for every sub-expression ==")
    for se, card in sorted(
        report.estimator.all_cardinalities().items(), key=lambda kv: repr(kv[0])
    ):
        print(f"  |{se!r}| = {card:.0f}")

    print("\n== optimization outcome ==")
    print(report.describe())


if __name__ == "__main__":
    main()
