"""Integrating existing source statistics (Section 6.2).

When some sources are relational DBMSs, their catalogs already hold
statistics.  Adding them to the observable set at zero cost lets the
selection framework skip paying for them: the observation bill drops and
the instrumentation gets lighter, while estimates stay exact.

Run:  python examples/source_statistics.py
"""

from repro import (
    CardinalityEstimator,
    CostModel,
    Executor,
    GeneratorOptions,
    TapSet,
    analyze,
    build_problem,
    generate_css,
    solve_ilp,
)
from repro.core.external import harvest_source_statistics
from repro.engine.ground_truth import ground_truth_cardinalities
from repro.workloads import case


def main() -> None:
    wfcase = case(14)  # 5-way: trades with type, account, customer, date
    workflow = wfcase.build()
    analysis = analyze(workflow)
    # disable FK shortcuts so the statistics bill is visible
    catalog = generate_css(analysis, GeneratorOptions(fk_rules=False))
    cost_model = CostModel(workflow.catalog)
    sources = wfcase.tables(scale=0.3, seed=8)

    # scenario: the dimension tables live in a DBMS whose catalog we can
    # read; the Trade feed is a flat file with no statistics at all
    dbms_relations = ["DimAccount", "DimCustomer", "DimDate", "TradeType"]
    free, values = harvest_source_statistics(sources, relations=dbms_relations)

    plain = solve_ilp(build_problem(catalog, cost_model))
    with_free = solve_ilp(
        build_problem(catalog, cost_model, free_statistics=free)
    )
    print(f"observation cost without source statistics: {plain.total_cost:g}")
    print(f"observation cost with DBMS catalogs free:   {with_free.total_cost:g}")

    to_instrument = [s for s in with_free.observed if s not in free]
    print(f"\nstatistics still needing instrumentation "
          f"({len(to_instrument)} of {len(with_free.observed)}):")
    for stat in to_instrument:
        print(f"  {stat!r}")

    taps = TapSet(to_instrument)
    run = Executor(analysis).run(sources, taps=taps)
    merged = run.observations
    merged.merge(values)
    estimator = CardinalityEstimator(catalog, merged)
    truth = ground_truth_cardinalities(analysis, sources)
    exact = all(
        abs(estimator.cardinality(se) - actual) < 1e-9
        for se, actual in truth.items()
    )
    print(f"\nestimates exact over all {len(truth)} sub-expressions: {exact}")


if __name__ == "__main__":
    main()
