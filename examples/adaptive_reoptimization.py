"""Design once, execute repeatedly: re-optimization under data drift.

The paper's premise (Section 1): "An ETL workflow that was efficient to
start with can easily degrade over time due to the changing nature of the
data ... The whole cycle is repeated in each execution so that the
statistics are kept updated."

We simulate a nightly load: Events join Users and Devices.  At first the
user directory is nearly empty, so joining Users first is hugely selective;
as on-boarding completes and old devices get decommissioned, the Devices
join becomes the selective one.  The session re-learns statistics each run
and flips the join order at the crossover.

Run:  python examples/adaptive_reoptimization.py
"""

import random

from repro import (
    Catalog,
    EtlSession,
    Join,
    Source,
    StatisticsPipeline,
    Table,
    Target,
    Workflow,
)

N_EVENTS = 3000
USER_DOMAIN = 400
DEVICE_DOMAIN = 300


def build_workflow() -> Workflow:
    catalog = Catalog()
    catalog.add_relation(
        "Events", {"user_id": USER_DOMAIN, "device_id": DEVICE_DOMAIN, "eid": 10000}
    )
    catalog.add_relation("Users", {"user_id": USER_DOMAIN, "uname": 1000})
    catalog.add_relation("Devices", {"device_id": DEVICE_DOMAIN, "model": 50})
    events = Source(catalog, "Events")
    users = Source(catalog, "Users")
    devices = Source(catalog, "Devices")
    flow = Join(Join(events, users, "user_id"), devices, "device_id")
    return Workflow("event_enrichment", catalog, [Target(flow, "enriched")])


def nightly_data(user_coverage: float, device_coverage: float, seed: int):
    """One night's extract: dimension coverage fractions drift over time."""
    rng = random.Random(seed)
    events = Table(
        {
            "user_id": [rng.randint(1, USER_DOMAIN) for _ in range(N_EVENTS)],
            "device_id": [rng.randint(1, DEVICE_DOMAIN) for _ in range(N_EVENTS)],
            "eid": list(range(N_EVENTS)),
        }
    )
    known_users = rng.sample(
        range(1, USER_DOMAIN + 1), int(USER_DOMAIN * user_coverage)
    )
    known_devices = rng.sample(
        range(1, DEVICE_DOMAIN + 1), int(DEVICE_DOMAIN * device_coverage)
    )
    users = Table(
        {"user_id": known_users, "uname": [u * 3 for u in known_users]}
    )
    devices = Table(
        {"device_id": known_devices, "model": [d % 50 + 1 for d in known_devices]}
    )
    return {"Events": events, "Users": users, "Devices": devices}


def main() -> None:
    pipeline = StatisticsPipeline(build_workflow())
    session = EtlSession(pipeline)

    drift = [  # (user coverage, device coverage) per night
        (0.10, 0.95),
        (0.25, 0.90),
        (0.50, 0.70),
        (0.80, 0.40),
        (0.98, 0.15),
    ]
    print(f"{'night':>6} {'users%':>7} {'devices%':>9} "
          f"{'executed cost':>14}  next plan")
    plans = []
    for night, (uc, dc) in enumerate(drift):
        record = session.run(nightly_data(uc, dc, seed=night))
        plan = record.report.plans["B1"].tree
        plans.append(str(plan))
        print(f"{night:>6} {uc * 100:>6.0f}% {dc * 100:>8.0f}% "
              f"{record.actual_plan_cost:>14.0f}  {plan}")

    assert plans[0] != plans[-1], "expected the join order to flip"
    print("\nthe learned statistics flipped the join order as the user "
          "directory filled up:")
    print(f"  night 0: {plans[0]}")
    print(f"  night {len(plans) - 1}: {plans[-1]}")


if __name__ == "__main__":
    main()
