"""Optimizable blocks and reject links: the paper's Figure 3 walkthrough.

A workflow with every boundary pattern from Section 3.2.1:

- a join whose reject link is materialized for diagnostics (boundary B1);
- a UDF deriving a new attribute from a multi-relation join, later used as
  a join key (boundary B2);
- the remaining joins form a freely re-orderable third block.

The example prints the decomposition, the statistics identified per block,
and the union-division opportunities the reject links open up.

Run:  python examples/figure3_blocks.py
"""

from repro import (
    Catalog,
    CostModel,
    Join,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
    analyze,
    build_problem,
    generate_css,
    solve_ilp,
)


def build_workflow() -> Workflow:
    catalog = Catalog()
    catalog.add_relation("T1", {"a": 40, "x": 25})
    catalog.add_relation("T2", {"a": 40, "y": 30})
    catalog.add_relation("T3", {"x": 25, "b": 35})
    catalog.add_relation("T4", {"c": 50})
    catalog.add_relation("T5", {"c": 50, "d": 20})

    t1, t2, t3 = Source(catalog, "T1"), Source(catalog, "T2"), Source(catalog, "T3")
    t4, t5 = Source(catalog, "T4"), Source(catalog, "T5")

    # B1: the reject link of T1 against T2 is materialized for diagnostics
    j12 = Join(t1, t2, "a", reject_left=True)
    j123 = Join(j12, t3, "x")
    # B2: a UDF combining attributes of (T1 |x| T2) and T3 derives c ...
    derived = Transform(
        j123, ("a", "b"), UdfSpec("make_key", lambda vs: (vs[0] * 7 + vs[1]) % 50 + 1),
        output_attr="c",
    )
    # ... and c is the join key with T4, sealing everything before it
    j4 = Join(derived, t4, "c")
    j45 = Join(j4, t5, "c")
    return Workflow("figure3", catalog, [Target(j45, "warehouse")])


def main() -> None:
    workflow = build_workflow()
    analysis = analyze(workflow)
    print("== optimizable blocks (Section 3.2.1) ==")
    print(analysis.describe())

    catalog = generate_css(analysis)
    print("\n== identification summary ==")
    for key, value in catalog.counts().items():
        print(f"  {key}: {value}")

    ud_rules = [
        css
        for bucket in catalog.css.values()
        for css in bucket
        if css.rule in ("J4", "J5")
    ]
    print(f"\n== union-division CSSs enabled by the plan's joins "
          f"({len(ud_rules)}) ==")
    for css in ud_rules[:6]:
        print(f"  {css!r}")
    if len(ud_rules) > 6:
        print(f"  ... and {len(ud_rules) - 6} more")

    result = solve_ilp(build_problem(catalog, CostModel(workflow.catalog)))
    print("\n== chosen observations ==")
    print(result.describe())


if __name__ == "__main__":
    main()
