"""Persisting learned statistics across engine restarts.

A nightly ETL engine starts fresh every night; what it learned yesterday
lives on disk.  This example simulates two process lifetimes:

- night 1: a new session learns statistics, optimizes, and saves its state;
- night 2: a *fresh* session resumes from the file and immediately executes
  the previously adopted plan — no cold start — while still re-learning and
  watching for drift.

Run:  python examples/persistent_session.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    Catalog,
    EtlSession,
    Join,
    Source,
    StatisticsPipeline,
    Table,
    Target,
    Workflow,
)


def build_workflow() -> Workflow:
    catalog = Catalog()
    catalog.add_relation("Orders", {"cust": 150, "prod": 90, "oid": 4000})
    catalog.add_relation("Customers", {"cust": 150, "seg": 8})
    catalog.add_relation("Products", {"prod": 90, "cat": 12})
    orders = Source(catalog, "Orders")
    customers = Source(catalog, "Customers")
    products = Source(catalog, "Products")
    flow = Join(Join(orders, customers, "cust"), products, "prod")
    return Workflow("nightly_orders", catalog, [Target(flow, "mart")])


def nightly_data(seed: int) -> dict[str, Table]:
    rng = random.Random(seed)
    n = 1500
    return {
        "Orders": Table(
            {
                "cust": [rng.randint(1, 150) for _ in range(n)],
                "prod": [rng.randint(1, 90) for _ in range(n)],
                "oid": list(range(n)),
            }
        ),
        # only a fifth of customers are active -> joining customers first wins
        "Customers": Table(
            {"cust": rng.sample(range(1, 151), 30), "seg": [1] * 30}
        ),
        "Products": Table(
            {"prod": list(range(1, 91)), "cat": [p % 12 + 1 for p in range(90)]}
        ),
    }


def main() -> None:
    state_path = Path(tempfile.gettempdir()) / "repro_session_state.json"

    # ---- night 1: a brand-new engine process -------------------------
    session = EtlSession(StatisticsPipeline(build_workflow()))
    record = session.run(nightly_data(seed=1))
    print("night 1 (cold start)")
    print(f"  executed: initial plan, cost {record.actual_plan_cost:.0f}")
    print(f"  adopted:  {session.current_trees['B1']}")
    session.save_state(state_path)
    print(f"  state saved to {state_path}")

    # ---- night 2: the process restarted; resume from disk ------------
    resumed = EtlSession.resume(
        StatisticsPipeline(build_workflow()), state_path, drift_threshold=0.25
    )
    record2 = resumed.run(nightly_data(seed=2))
    print("\nnight 2 (resumed from disk)")
    print(f"  executed: {record2.executed_trees['B1']}")
    print(f"  cost {record2.actual_plan_cost:.0f}, drift {record2.drift:.2f}, "
          f"re-optimized: {record2.reoptimized}")

    state_path.unlink()


if __name__ == "__main__":
    main()
