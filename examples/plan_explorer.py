"""What-if plan exploration with learned statistics.

After one instrumented run, *every* re-ordering is costable.  This example
learns the statistics for a 5-way star join, ranks the full plan space,
shows where the designer's plan landed and what cost-based optimization
saves, and dumps GraphViz DOT for the best plan.

Run:  python examples/plan_explorer.py
"""

from repro import StatisticsPipeline, analyze
from repro.algebra.dot import plan_to_dot, workflow_to_dot
from repro.estimation.whatif import rank_workflow
from repro.workloads import case


def main() -> None:
    wfcase = case(13)  # Holding x Account x Security x Date x Status
    workflow = wfcase.build()
    pipeline = StatisticsPipeline(workflow)
    report = pipeline.run_once(wfcase.tables(scale=0.3, seed=42))

    print("== plan space under the learned statistics ==")
    rankings = rank_workflow(
        report.analysis, report.estimator.all_cardinalities()
    )
    for name, ranking in rankings.items():
        print(ranking.describe(top=3))
        print()

    (block_name, ranking), *_ = rankings.items()
    print(f"== GraphViz for {block_name}'s best plan "
          f"(pipe into `dot -Tsvg`) ==")
    print(plan_to_dot(ranking.best.tree, name="best_plan"))

    print("\n== GraphViz for the designer's DAG ==")
    print(workflow_to_dot(workflow)[:400] + "\n... (truncated)")


if __name__ == "__main__":
    main()
