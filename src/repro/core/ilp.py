"""The 0-1 integer linear program of Section 5.2.

Variables (exactly as in the paper):

- ``x_i`` -- statistic ``s_i`` is directly observed (only for ``s_i`` in
  ``S_O``);
- ``y_i`` -- statistic ``s_i`` is computable;
- ``z_ij`` -- the j-th CSS of ``s_i`` is covered.

Constraints:

- coverage:      ``sum_{k in CSS_ij} y_k >= z_ij * |CSS_ij|``
- trivial-only:  ``y_i = x_i``  (observable, no non-trivial CSS)
- observable:    ``y_i >= x_i``
- only-if:       ``y_i <= x_i + sum_j z_ij``  (non-observable: drop x_i)
- if:            ``y_i >= z_ij``
- required:      ``y_i = 1`` for ``s_i`` in ``S_C``

Objective: ``min sum c_i x_i``.

The paper's formulation admits one unsound corner the text does not
discuss: the CSS graph can be cyclic -- union-division (J4/J5) derives a
statistic from statistics on a *larger* SE, whose own CSSs (J1-J3) refer
back to the smaller one -- and a cyclic group of ``y`` variables could then
justify each other with no observed ground truth.  We close the hole with
the standard acyclic-derivation device: a continuous *level* variable per
statistic, with ``L_target >= L_input + 1`` whenever a CSS is selected
(big-M relaxed when it is not).  Any feasible assignment is then a genuine
bottom-up derivation; we still verify the incumbent against the closure as
a belt-and-braces check.

Level constraints are only needed where cycles can actually form: within
the strongly-connected components of the CSS dependency graph.  Everything
else is acyclic by construction, so the SCC restriction keeps the MILP
small (it typically removes >95% of the level rows).

Primary solver: ``scipy.optimize.milp`` (HiGHS).  Without scipy the greedy
heuristic of Section 5.3 takes over.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import INFINITE
from repro.core.selection import SelectionProblem, SelectionResult

try:  # pragma: no cover - exercised implicitly
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import csr_matrix

    HAVE_SCIPY = True
except Exception:  # pragma: no cover
    HAVE_SCIPY = False


def _strongly_connected(problem: SelectionProblem) -> dict[int, int]:
    """Tarjan SCC ids over the CSS dependency graph (target -> inputs).

    Only statistics inside a multi-node SCC (or with a self-loop) can take
    part in a cyclic self-support; everything else needs no level row.
    """
    adj: dict[int, list[int]] = {}
    for entry in problem.entries:
        adj.setdefault(entry.target, []).extend(
            k for k in set(entry.inputs) if k != entry.target
        )
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    scc_of: dict[int, int] = {}
    counter = [0]
    scc_counter = [0]

    for root in list(adj):
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = adj.get(node, [])
            for ci in range(child_idx, len(children)):
                child = children[ci]
                if child not in index:
                    work.append((node, ci + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if recurse:
                continue
            if low[node] == index[node]:
                scc_id = scc_counter[0]
                scc_counter[0] += 1
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_id
                    if member == node:
                        break
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return scc_of


def solve_ilp(
    problem: SelectionProblem, time_limit: float | None = None
) -> SelectionResult:
    """Solve the selection problem exactly.

    ``time_limit`` (seconds) caps the HiGHS run; on timeout the best
    incumbent is used if it verifies, otherwise the greedy heuristic takes
    over -- exactly the fallback Section 5.3 motivates ("The LP formulation
    could take a long time to solve").
    """
    if not HAVE_SCIPY:  # pragma: no cover - scipy is a hard dep in practice
        from repro.core.greedy import solve_greedy

        return solve_greedy(problem)

    n = problem.n
    m = len(problem.entries)
    scc_of = _strongly_connected(problem)
    scc_sizes: dict[int, int] = {}
    for scc_id in scc_of.values():
        scc_sizes[scc_id] = scc_sizes.get(scc_id, 0) + 1
    cyclic = {
        i for i, scc_id in scc_of.items() if scc_sizes[scc_id] > 1
    }
    # variable layout: x_0.., y_0.., z_0.., L_0.. (levels, continuous)
    x0, y0, z0, l0 = 0, n, 2 * n, 2 * n + m
    nvars = 2 * n + m + n
    big_m = float(max(scc_sizes.values(), default=1) + 1)

    cost = np.zeros(nvars)
    lb = np.zeros(nvars)
    ub = np.ones(nvars)
    ub[l0:] = big_m  # level variables range over [0, M]
    integrality = np.ones(nvars)
    integrality[l0:] = 0.0

    for i in range(n):
        if i in problem.observable and problem.costs[i] < INFINITE:
            cost[x0 + i] = problem.costs[i]
        else:
            ub[x0 + i] = 0.0  # cannot observe
    for i in problem.required:
        lb[y0 + i] = 1.0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    c_lo: list[float] = []
    c_hi: list[float] = []

    def add(terms: list[tuple[int, float]], lo: float, hi: float) -> None:
        row = len(c_lo)
        for col, val in terms:
            rows.append(row)
            cols.append(col)
            vals.append(val)
        c_lo.append(lo)
        c_hi.append(hi)

    nontrivial = {e.target for e in problem.entries}

    for j, entry in enumerate(problem.entries):
        members = sorted(set(entry.inputs))
        if entry.target in members:
            ub[z0 + j] = 0.0  # a self-referential CSS can never support
            continue
        # coverage: sum y_k - |CSS| * z_j >= 0
        add(
            [(y0 + k, 1.0) for k in members] + [(z0 + j, -float(len(members)))],
            0.0,
            np.inf,
        )
        # if: y_target >= z_j
        add([(y0 + entry.target, 1.0), (z0 + j, -1.0)], 0.0, np.inf)
        # acyclicity: L_target >= L_k + 1 - M(1 - z_j), but only inside a
        # strongly-connected component, where a cycle could actually form
        if entry.target in cyclic:
            target_scc = scc_of[entry.target]
            for k in members:
                if k == entry.target or scc_of.get(k) != target_scc:
                    continue
                add(
                    [
                        (l0 + entry.target, 1.0),
                        (l0 + k, -1.0),
                        (z0 + j, -big_m),
                    ],
                    1.0 - big_m,
                    np.inf,
                )

    for i in range(n):
        css_vars = problem.by_target.get(i, [])
        if i in problem.observable and i not in nontrivial:
            # trivial-only: y_i = x_i
            add([(y0 + i, 1.0), (x0 + i, -1.0)], 0.0, 0.0)
            continue
        if i in problem.observable:
            add([(y0 + i, 1.0), (x0 + i, -1.0)], 0.0, np.inf)  # y_i >= x_i
        # only-if: y_i <= x_i + sum z_ij
        terms = [(y0 + i, 1.0)]
        if i in problem.observable:
            terms.append((x0 + i, -1.0))
        terms.extend((z0 + j, -1.0) for j in css_vars)
        add(terms, -np.inf, 0.0)

    a = csr_matrix((vals, (rows, cols)), shape=(len(c_lo), nvars))
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    res = milp(
        c=cost,
        constraints=[LinearConstraint(a, np.array(c_lo), np.array(c_hi))],
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=options,
    )
    if res.x is None:
        from repro.core.greedy import solve_greedy

        fallback = solve_greedy(problem)
        fallback.method = "greedy(ilp-no-incumbent)"
        return fallback

    observed = {
        i for i in range(n) if i in problem.observable and res.x[x0 + i] > 0.5
    }
    if not (set(problem.required) <= problem.closure(observed)):
        # should be impossible given the level constraints
        from repro.core.greedy import solve_greedy  # pragma: no cover

        fallback = solve_greedy(problem)  # pragma: no cover
        fallback.method = "greedy(ilp-unsound)"  # pragma: no cover
        return fallback  # pragma: no cover
    method = "ilp" if res.success else "ilp(time-limit)"
    return SelectionResult(
        problem=problem, observed_indexes=observed, method=method, iterations=1
    )
