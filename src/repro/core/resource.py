"""Optimization under resource constraints (Section 6.1).

When the memory budget cannot hold the optimal statistics set, the plan can
be re-ordered across *multiple* executions so that statistics unobservable
in one plan become observable in another.  Pure pay-as-you-go (trivial
CSSs only) is one extreme; the paper's refinement mixes trivial CSSs with
cheap histograms, "depending on the available memory, thus reducing the
number of plan re-orderings".

:class:`ConstrainedPlanner` implements that mix:

1. if the optimal selection already fits the budget, one execution of the
   initial plan suffices;
2. otherwise it builds execution rounds greedily: each round picks plan
   re-orderings targeting the still-uncovered SEs (via the coverage
   scheduler), observes their trivial counters, and spends any remaining
   budget on the cheapest statistics plans that unlock more coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.blocks import BlockAnalysis
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.index import SEIndex
from repro.algebra.plans import PlanTree, tree_ses, subtrees, JoinNode
from repro.baselines.payg import CoverageScheduler
from repro.core.costs import INFINITE, CostModel
from repro.core.css import CssCatalog
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.selection import build_problem
from repro.core.statistics import Statistic


@dataclass
class ExecutionStep:
    """One execution: the plan trees to run and the statistics to observe."""

    trees: dict[str, PlanTree]
    observe: list[Statistic]
    memory: float


@dataclass
class ConstrainedSchedule:
    """A multi-execution observation schedule fitting a memory budget."""

    steps: list[ExecutionStep]
    budget: float
    covered: set[Statistic] = field(default_factory=set)

    @property
    def executions(self) -> int:
        return len(self.steps)

    @property
    def peak_memory(self) -> float:
        return max((s.memory for s in self.steps), default=0.0)


class ConstrainedPlanner:
    """Builds a :class:`ConstrainedSchedule` for a memory budget."""

    def __init__(
        self,
        analysis: BlockAnalysis,
        catalog: CssCatalog,
        cost_model: CostModel,
        budget: float,
        solver: str = "ilp",
    ):
        self.analysis = analysis
        self.catalog = catalog
        self.cost_model = cost_model
        self.budget = budget
        self.solver = solver
        self.index = SEIndex(analysis)

    # ------------------------------------------------------------------
    def plan(self) -> ConstrainedSchedule:
        problem = build_problem(self.catalog, self.cost_model)
        optimal = (
            solve_greedy(problem) if self.solver == "greedy" else solve_ilp(problem)
        )
        if optimal.total_cost <= self.budget:
            trees = {b.name: b.initial_tree for b in self.analysis.blocks}
            step = ExecutionStep(
                trees=trees,
                observe=optimal.observed,
                memory=optimal.total_cost,
            )
            return ConstrainedSchedule(
                steps=[step],
                budget=self.budget,
                covered=set(self.catalog.required),
            )
        return self._multi_run()

    # ------------------------------------------------------------------
    def _multi_run(self) -> ConstrainedSchedule:
        computable: set[Statistic] = set()
        steps: list[ExecutionStep] = []
        first_round = True
        while True:
            uncovered = self.catalog.required - computable
            if not uncovered:
                break
            trees = self._round_trees(uncovered, use_initial=first_round)
            first_round = False
            observe, memory = self._round_observations(
                trees, uncovered, computable
            )
            if not observe:
                raise ValueError(
                    f"budget {self.budget} cannot make progress: even a "
                    "single counter does not fit"
                )
            steps.append(ExecutionStep(trees, observe, memory))
            computable = self.catalog.closure(
                computable | set(observe)
            )
            if len(steps) > 4 * len(self.catalog.required) + 8:
                raise RuntimeError(
                    "constrained schedule failed to converge"
                )  # pragma: no cover - safety net
        return ConstrainedSchedule(
            steps=steps, budget=self.budget, covered=computable
        )

    def _round_trees(
        self, uncovered: set[Statistic], use_initial: bool
    ) -> dict[str, PlanTree]:
        """Plans for this round: target uncovered SEs block by block."""
        trees: dict[str, PlanTree] = {}
        for block in self.analysis.blocks:
            if use_initial or block.pinned:
                trees[block.name] = block.initial_tree
                continue
            targets = [
                stat.se
                for stat in uncovered
                if isinstance(stat.se, SubExpression)
                and 1 < len(stat.se) < block.n_way
                and stat.se.relations <= set(block.inputs)
            ]
            if not targets:
                trees[block.name] = block.initial_tree
                continue
            scheduler = CoverageScheduler(block, targets)
            family = scheduler._laminar_family(set(targets))
            trees[block.name] = scheduler._tree_with(family)
        return trees

    def _observable_in(self, stat: Statistic, trees: dict[str, PlanTree]) -> bool:
        se = stat.se
        if isinstance(se, RejectJoinSE):
            return False
        if isinstance(se, RejectSE):
            block = self.index.block_of(se)
            tree = trees[block.name]
            want_key = (se.key,) if isinstance(se.key, str) else tuple(se.key)
            found = any(
                isinstance(node, JoinNode)
                and {node.left.se, node.right.se} == {se.source, se.against}
                and tuple(node.key) == want_key
                for node in subtrees(tree)
            )
            if not found:
                return False
        else:
            block = self.index.block_of(se)
            if len(se) > 1:
                if se not in tree_ses(trees[block.name]):
                    return False
            # stage SEs are observable under any tree
        return set(stat.attrs) <= set(self.index.se_attrs(se))

    def _round_observations(
        self,
        trees: dict[str, PlanTree],
        uncovered: set[Statistic],
        computable: set[Statistic],
    ) -> tuple[list[Statistic], float]:
        """Greedy: trivial counters first, then cheap unlocking statistics."""
        observe: list[Statistic] = []
        spent = 0.0

        # 1. trivial CSSs of uncovered SEs observable under this round's plan
        for stat in sorted(uncovered, key=lambda s: s.sort_key()):
            cost = self.cost_model.cost(stat)
            if not self._observable_in(stat, trees):
                continue
            if spent + cost <= self.budget:
                observe.append(stat)
                spent += cost

        # 2. spend leftover budget on statistics plans that unlock coverage
        known = self.catalog.closure(computable | set(observe))
        improved = True
        while improved:
            improved = False
            remaining = sorted(
                self.catalog.required - known, key=lambda s: s.sort_key()
            )
            best: tuple[float, list[Statistic]] | None = None
            for stat in remaining:
                plan = self._cheapest_stat_plan(stat, known, trees, set())
                if plan is None:
                    continue
                cost, stats = plan
                if spent + cost > self.budget:
                    continue
                if best is None or cost < best[0]:
                    best = (cost, stats)
            if best is not None:
                cost, stats = best
                observe.extend(stats)
                spent += cost
                known = self.catalog.closure(computable | set(observe))
                improved = True
        return observe, spent

    def _cheapest_stat_plan(
        self,
        stat: Statistic,
        known: set[Statistic],
        trees: dict[str, PlanTree],
        visiting: set[Statistic],
    ) -> tuple[float, list[Statistic]] | None:
        if stat in known:
            return 0.0, []
        if stat in visiting:
            return None
        visiting = visiting | {stat}
        best: tuple[float, list[Statistic]] | None = None
        if self._observable_in(stat, trees):
            cost = self.cost_model.cost(stat)
            if cost < INFINITE:
                best = (cost, [stat])
        for css in self.catalog.css_for(stat):
            total = 0.0
            stats: list[Statistic] = []
            feasible = True
            acquired: set[Statistic] = set()
            for member in css.inputs:
                sub = self._cheapest_stat_plan(
                    member, known | acquired, trees, visiting
                )
                if sub is None:
                    feasible = False
                    break
                total += sub[0]
                stats.extend(sub[1])
                acquired.update(sub[1])
                acquired.add(member)
            if feasible and (best is None or total < best[0]):
                best = (total, stats)
        return best


def plan_constrained(
    analysis: BlockAnalysis,
    catalog: CssCatalog,
    cost_model: CostModel,
    budget: float,
    solver: str = "ilp",
) -> ConstrainedSchedule:
    """Convenience wrapper over :class:`ConstrainedPlanner`."""
    return ConstrainedPlanner(analysis, catalog, cost_model, budget, solver).plan()
