"""The statistic-selection problem (Section 5.1).

Given the CSS catalog, build the extended hitting-set instance: find
``S'_O`` (a subset of the observable statistics) of minimal cost such that
every statistic in ``S_C`` is *computable* -- directly observed or covered
through a chain of CSSs whose member statistics are themselves computable.

The module also provides the soundness check the LP formulation needs:
because rules such as union-division reference statistics on *larger* SEs,
the CSS graph can contain cycles, and a naive assignment could declare two
statistics computable purely in terms of each other.  ``closure`` computes
the true bottom-up fixpoint; both solvers verify against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import CostModel
from repro.core.css import CSS, CssCatalog
from repro.core.statistics import Statistic


@dataclass(frozen=True)
class CssEntry:
    """A flattened CSS: indexes into the problem's statistic list."""

    target: int
    inputs: tuple[int, ...]
    css: CSS


@dataclass
class SelectionProblem:
    """An instance of the optimal-statistics-identification problem."""

    stats: list[Statistic]
    observable: frozenset[int]
    required: frozenset[int]
    entries: list[CssEntry]
    costs: list[float]
    index: dict[Statistic, int] = field(default_factory=dict)
    by_target: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.index:
            self.index = {s: i for i, s in enumerate(self.stats)}
        if not self.by_target:
            for j, entry in enumerate(self.entries):
                self.by_target.setdefault(entry.target, []).append(j)

    @property
    def n(self) -> int:
        return len(self.stats)

    def stat(self, i: int) -> Statistic:
        return self.stats[i]

    def closure(self, observed: set[int]) -> set[int]:
        """True computability fixpoint from a set of observed statistics."""
        computable = set(observed) & set(self.observable)
        # index CSS entries by the inputs they wait on
        waiting: dict[int, list[int]] = {}
        remaining: dict[int, int] = {}
        for j, entry in enumerate(self.entries):
            missing = [k for k in set(entry.inputs) if k not in computable]
            remaining[j] = len(missing)
            for k in missing:
                waiting.setdefault(k, []).append(j)
        frontier = list(computable)
        ready = [
            j for j, entry in enumerate(self.entries)
            if remaining[j] == 0 and entry.target not in computable
        ]
        while frontier or ready:
            for j in ready:
                target = self.entries[j].target
                if target not in computable:
                    computable.add(target)
                    frontier.append(target)
            ready = []
            while frontier:
                k = frontier.pop()
                for j in waiting.get(k, []):
                    remaining[j] -= 1
                    if remaining[j] == 0:
                        if self.entries[j].target not in computable:
                            ready.append(j)
        return computable

    def is_sufficient(self, observed: set[int]) -> bool:
        return set(self.required) <= self.closure(observed)

    def total_cost(self, observed: set[int]) -> float:
        return sum(self.costs[i] for i in observed)


@dataclass
class SelectionResult:
    """Outcome of a selection solve."""

    problem: SelectionProblem
    observed_indexes: set[int]
    method: str
    iterations: int = 1

    @property
    def observed(self) -> list[Statistic]:
        return sorted(
            (self.problem.stat(i) for i in self.observed_indexes),
            key=lambda s: s.sort_key(),
        )

    @property
    def total_cost(self) -> float:
        return self.problem.total_cost(self.observed_indexes)

    @property
    def is_valid(self) -> bool:
        return self.problem.is_sufficient(self.observed_indexes)

    def describe(self) -> str:
        lines = [
            f"Selection [{self.method}] cost={self.total_cost:g} "
            f"({len(self.observed_indexes)} statistics observed)"
        ]
        for stat in self.observed:
            cost = self.problem.costs[self.problem.index[stat]]
            lines.append(f"  {stat!r}  cost={cost:g}")
        return "\n".join(lines)


def build_problem(
    catalog: CssCatalog,
    cost_model: CostModel,
    free_statistics: set[Statistic] | None = None,
) -> SelectionProblem:
    """Assemble the selection instance from the CSS catalog.

    ``free_statistics`` are statistics already available from source systems
    (Section 6.2): they join ``S_O`` with zero cost, so the solver always
    exploits them.
    """
    free = free_statistics or set()
    stats = sorted(catalog.all_statistics | free, key=lambda s: s.sort_key())
    index = {s: i for i, s in enumerate(stats)}
    observable = frozenset(
        i
        for i, s in enumerate(stats)
        if catalog.is_observable(s) or s in free
    )
    required = frozenset(index[s] for s in catalog.required)
    entries: list[CssEntry] = []
    for target, bucket in catalog.css.items():
        for css in bucket:
            entries.append(
                CssEntry(
                    target=index[target],
                    inputs=tuple(index[s] for s in css.inputs),
                    css=css,
                )
            )
    costs = [
        0.0
        if stats[i] in free
        else cost_model.cost(stats[i], observable=i in observable)
        for i in range(len(stats))
    ]
    problem = SelectionProblem(
        stats=stats,
        observable=observable,
        required=required,
        entries=entries,
        costs=costs,
        index=index,
    )
    _check_feasible(problem)
    return problem


def _check_feasible(problem: SelectionProblem) -> None:
    """Every required statistic must be reachable when everything observable
    is observed; otherwise the flow was analyzed incorrectly."""
    everything = set(problem.observable)
    missing = set(problem.required) - problem.closure(everything)
    if missing:
        names = ", ".join(repr(problem.stat(i)) for i in sorted(missing))
        raise ValueError(
            f"selection infeasible: no observable coverage for {names}"
        )
