"""Persistence: statistics and plans across engine restarts.

The paper's lifecycle spans *separate* executions of the ETL engine — the
statistics gathered tonight must optimize tomorrow night's run, after every
process involved has exited.  This module serializes the moving parts to
JSON:

- :class:`~repro.core.statistics.StatisticsStore` values (counters,
  distinct counts, exact histograms) keyed by their statistic identity;
- plan trees (the chosen join order per block);
- a :class:`SessionState` bundling both plus the adopted cardinalities the
  drift detector compares against;
- :class:`~repro.engine.table.Table` payloads, so run checkpoints
  (:mod:`repro.framework.recovery`) can restore a finished block's output.

Histogram bucket keys may be arbitrary value tuples; they are stored as
JSON arrays, so values must be JSON-representable (ints/strings — which is
what the engine produces).

Every top-level document carries a ``format_version`` and loaders validate
shape before use: a corrupt or future-versioned file raises a clear
:class:`PersistenceError` instead of a ``KeyError`` deep in a loop.
Version-1 files (written before the field existed) still load.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.algebra.expressions import (
    AnySE,
    RejectJoinSE,
    RejectSE,
    SubExpression,
)
from repro.algebra.plans import JoinNode, Leaf, PlanTree
from repro.core.histogram import Histogram
from repro.core.statistics import StatKind, Statistic, StatisticsStore
from repro.engine.table import Table, TableError

#: version written into every new document; loaders accept 1..FORMAT_VERSION
FORMAT_VERSION = 2


class PersistenceError(ValueError):
    """Raised for malformed persisted documents."""


def validate_document(doc, kind: str) -> int:
    """Shape- and version-check a loaded top-level document.

    Returns the document's format version (1 for legacy files that predate
    the field).  Raises :class:`PersistenceError` for non-object documents
    and versions this build does not read.
    """
    if not isinstance(doc, dict):
        raise PersistenceError(
            f"corrupt {kind} document: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
    version = doc.get("format_version", 1)
    if not isinstance(version, int) or not 1 <= version <= FORMAT_VERSION:
        raise PersistenceError(
            f"{kind} document has unsupported format_version {version!r}; "
            f"this build reads versions 1..{FORMAT_VERSION}"
        )
    return version


def _load_json(path: str | Path, kind: str) -> dict:
    """Read + parse + shape-check one persisted file."""
    try:
        text = Path(path).read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"cannot read {kind} file {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid {kind} file {path}: {exc}") from exc
    validate_document(doc, kind)
    return doc


def atomic_write_json(doc: dict, path: str | Path) -> None:
    """Write ``doc`` to ``path`` via rename, so readers (and a resumed run)
    never see a half-written checkpoint after a crash."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            # sorted keys keep persisted documents (statistics, catalogs,
            # checkpoints) byte-stable across runs, so they diff cleanly
            json.dump(doc, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# sub-expressions
# ---------------------------------------------------------------------------


def se_to_dict(se: AnySE) -> dict:
    """JSON-ready form of any sub-expression flavour."""
    if isinstance(se, SubExpression):
        return {"type": "se", "relations": sorted(se.relations)}
    if isinstance(se, RejectSE):
        key = list(se.key) if isinstance(se.key, tuple) else se.key
        return {
            "type": "reject",
            "source": se_to_dict(se.source),
            "key": key,
            "against": se_to_dict(se.against),
        }
    if isinstance(se, RejectJoinSE):
        key = list(se.key) if isinstance(se.key, tuple) else se.key
        return {
            "type": "reject_join",
            "reject": se_to_dict(se.reject),
            "key": key,
            "other": se_to_dict(se.other),
        }
    raise PersistenceError(f"not a sub-expression: {se!r}")


def se_from_dict(doc: dict) -> AnySE:
    """Inverse of :func:`se_to_dict`."""
    kind = doc.get("type")
    if kind == "se":
        return SubExpression(frozenset(doc["relations"]))
    if kind == "reject":
        key = doc["key"]
        key = tuple(key) if isinstance(key, list) else key
        return RejectSE(se_from_dict(doc["source"]), key, se_from_dict(doc["against"]))
    if kind == "reject_join":
        key = doc["key"]
        key = tuple(key) if isinstance(key, list) else key
        return RejectJoinSE(
            se_from_dict(doc["reject"]), key, se_from_dict(doc["other"])
        )
    raise PersistenceError(f"unknown SE document type {kind!r}")


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


def statistic_to_dict(stat: Statistic) -> dict:
    """JSON-ready form of a statistic key."""
    return {
        "kind": stat.kind.value,
        "se": se_to_dict(stat.se),
        "attrs": list(stat.attrs),
    }


def statistic_from_dict(doc: dict) -> Statistic:
    """Inverse of :func:`statistic_to_dict`."""
    try:
        kind = StatKind(doc["kind"])
    except (KeyError, ValueError) as exc:
        raise PersistenceError(f"bad statistic kind: {doc!r}") from exc
    return Statistic(kind, se_from_dict(doc["se"]), tuple(doc.get("attrs", ())))


def value_to_doc(value) -> dict:
    """JSON-ready form of a statistic value (number or histogram)."""
    if isinstance(value, Histogram):
        return {
            "histogram": {
                "attrs": list(value.attrs),
                "buckets": sorted(
                    ([list(k), v] for k, v in value.counts.items()),
                    key=lambda bucket: json.dumps(bucket[0]),
                ),
            }
        }
    return {"value": value}


def value_from_doc(doc: dict):
    """Inverse of :func:`value_to_doc`."""
    if "histogram" in doc:
        hdoc = doc["histogram"]
        counts = {tuple(k): v for k, v in hdoc["buckets"]}
        return Histogram(tuple(hdoc["attrs"]), counts)
    return doc["value"]


def store_to_dict(store: StatisticsStore) -> dict:
    """Serialize a statistics store (values included) deterministically."""
    entries = []
    for stat, value in store.items():
        entry = {"stat": statistic_to_dict(stat)}
        entry.update(value_to_doc(value))
        entries.append(entry)
    entries.sort(key=lambda e: json.dumps(e["stat"], sort_keys=True))
    return {"format_version": FORMAT_VERSION, "statistics": entries}


def store_from_dict(doc: dict) -> StatisticsStore:
    """Inverse of :func:`store_to_dict`."""
    validate_document(doc, "statistics")
    store = StatisticsStore()
    entries = doc.get("statistics", [])
    if not isinstance(entries, list):
        raise PersistenceError("corrupt statistics document: 'statistics' is not a list")
    for entry in entries:
        try:
            stat = statistic_from_dict(entry["stat"])
            store.put(stat, value_from_doc(entry))
        except PersistenceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"corrupt statistics entry {entry!r}: {exc}"
            ) from exc
    return store


def save_statistics(store: StatisticsStore, path: str | Path) -> None:
    """Write a statistics store to a JSON file."""
    atomic_write_json(store_to_dict(store), path)


def load_statistics(path: str | Path) -> StatisticsStore:
    """Read a statistics store from a JSON file."""
    return store_from_dict(_load_json(path, "statistics"))


# ---------------------------------------------------------------------------
# tables (checkpoint payloads)
# ---------------------------------------------------------------------------


def table_to_dict(table: Table) -> dict:
    """JSON-ready form of a columnar table (attribute order preserved)."""
    return {
        "attrs": list(table.attrs),
        "columns": {a: list(table.column(a)) for a in table.attrs},
    }


def table_from_dict(doc: dict) -> Table:
    """Inverse of :func:`table_to_dict`."""
    try:
        attrs = doc["attrs"]
        columns = doc["columns"]
        return Table.wrap({a: list(columns[a]) for a in attrs})
    except (KeyError, TypeError, TableError) as exc:
        raise PersistenceError(f"corrupt table document: {exc}") from exc


# ---------------------------------------------------------------------------
# plan trees
# ---------------------------------------------------------------------------


def tree_to_dict(tree: PlanTree) -> dict:
    """JSON-ready form of a plan tree."""
    if isinstance(tree, Leaf):
        return {"leaf": tree.name}
    return {
        "key": list(tree.key),
        "left": tree_to_dict(tree.left),
        "right": tree_to_dict(tree.right),
    }


def tree_from_dict(doc: dict) -> PlanTree:
    """Inverse of :func:`tree_to_dict`."""
    if "leaf" in doc:
        return Leaf(doc["leaf"])
    try:
        return JoinNode(
            tree_from_dict(doc["left"]),
            tree_from_dict(doc["right"]),
            tuple(doc["key"]),
        )
    except KeyError as exc:
        raise PersistenceError(f"malformed plan document: missing {exc}") from exc


# ---------------------------------------------------------------------------
# session state
# ---------------------------------------------------------------------------


@dataclass
class SessionState:
    """What a restarting session needs: the adopted plans and statistics."""

    trees: dict[str, PlanTree] = field(default_factory=dict)
    adopted_cardinalities: dict[AnySE, float] = field(default_factory=dict)
    runs_completed: int = 0

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "runs_completed": self.runs_completed,
            "trees": {name: tree_to_dict(t) for name, t in self.trees.items()},
            "cardinalities": [
                [se_to_dict(se), value]
                for se, value in sorted(
                    self.adopted_cardinalities.items(), key=lambda kv: repr(kv[0])
                )
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SessionState":
        validate_document(doc, "session")
        trees = doc.get("trees", {})
        cards = doc.get("cardinalities", [])
        if not isinstance(trees, dict) or not isinstance(cards, list):
            raise PersistenceError(
                "corrupt session document: 'trees' must be an object and "
                "'cardinalities' a list"
            )
        try:
            return cls(
                trees={name: tree_from_dict(t) for name, t in trees.items()},
                adopted_cardinalities={
                    se_from_dict(se_doc): value for se_doc, value in cards
                },
                runs_completed=doc.get("runs_completed", 0),
            )
        except PersistenceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"corrupt session document: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "SessionState":
        return cls.from_dict(_load_json(path, "session"))
