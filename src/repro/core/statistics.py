"""Statistic identities: the ``s_e = (s, e)`` pairs of Definition 2.

The paper considers three statistic kinds (Section 4.1):

- cardinality ``|T|``,
- distinct values ``|a_T|`` of an attribute in a relation,
- (multi-)attribute distributions ``H_T^a`` / ``H_T^{a,b}``.

A :class:`Statistic` is a *key* -- it names a measurement, it does not hold a
value.  Observed or computed values are kept separately in a
:class:`StatisticsStore` so the same key can be compared across runs.

Canonicalization matters: histogram attribute tuples are sorted so that
``H_T^{a,b}`` and ``H_T^{b,a}`` are the same statistic, and SEs are
order-insensitive relation sets.  This is what lets the optimization
framework share the cost of a statistic across CSSs (Section 5's
amortization example relies on ``H_{T1}^{J12}`` and ``H_{T1}^{J13}`` being
recognized as identical when the join keys coincide).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.algebra.expressions import AnySE, se_sort_key
from repro.core.histogram import Histogram


class StatKind(enum.Enum):
    """The statistic kinds of Section 4.1."""

    CARDINALITY = "card"
    DISTINCT = "distinct"
    HISTOGRAM = "hist"


@dataclass(frozen=True)
class Statistic:
    """An identified statistic ``s_e`` on a sub-expression ``e``."""

    kind: StatKind
    se: AnySE
    attrs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is StatKind.CARDINALITY:
            if self.attrs:
                raise ValueError("cardinality statistics carry no attributes")
        elif self.kind is StatKind.DISTINCT:
            if not self.attrs:
                raise ValueError("distinct-count statistics need attributes")
        elif not self.attrs:
            raise ValueError("histogram statistics need at least one attribute")
        if tuple(sorted(set(self.attrs))) != tuple(self.attrs):
            object.__setattr__(self, "attrs", tuple(sorted(set(self.attrs))))

    # -- constructors ---------------------------------------------------
    @classmethod
    def card(cls, se: AnySE) -> "Statistic":
        """``|e|``"""
        return cls(StatKind.CARDINALITY, se)

    @classmethod
    def hist(cls, se: AnySE, *attrs: str) -> "Statistic":
        """``H_e^{attrs}``"""
        return cls(StatKind.HISTOGRAM, se, tuple(attrs))

    @classmethod
    def distinct(cls, se: AnySE, *attrs: str) -> "Statistic":
        """``|attrs_e|``"""
        return cls(StatKind.DISTINCT, se, tuple(attrs))

    # -- helpers ---------------------------------------------------------
    @property
    def is_cardinality(self) -> bool:
        return self.kind is StatKind.CARDINALITY

    @property
    def is_histogram(self) -> bool:
        return self.kind is StatKind.HISTOGRAM

    def sort_key(self) -> tuple:
        return (self.kind.value, se_sort_key(self.se), self.attrs)

    def __repr__(self) -> str:
        if self.kind is StatKind.CARDINALITY:
            return f"|{self.se!r}|"
        if self.kind is StatKind.DISTINCT:
            return f"|{','.join(self.attrs)}_{self.se!r}|"
        return f"H[{self.se!r}]^({','.join(self.attrs)})"


StatValue = Union[float, int, Histogram]


class StatisticsStore:
    """Observed / computed values keyed by :class:`Statistic`.

    A thin mapping with type checks: cardinalities and distinct counts are
    numbers, histogram statistics are :class:`Histogram` objects whose
    attributes match the key.
    """

    def __init__(self) -> None:
        self._values: dict[Statistic, StatValue] = {}

    def put(self, stat: Statistic, value: StatValue) -> None:
        if stat.is_histogram:
            if not isinstance(value, Histogram):
                raise TypeError(f"{stat!r} requires a Histogram value")
            if value.attrs != stat.attrs:
                raise ValueError(
                    f"histogram attrs {value.attrs} do not match statistic "
                    f"attrs {stat.attrs}"
                )
        elif isinstance(value, Histogram):
            raise TypeError(f"{stat!r} requires a numeric value")
        self._values[stat] = value

    def get(self, stat: Statistic) -> StatValue:
        return self._values[stat]

    def maybe(self, stat: Statistic, default=None):
        return self._values.get(stat, default)

    def __contains__(self, stat: Statistic) -> bool:
        return stat in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def items(self):
        return self._values.items()

    def cardinality(self, se: AnySE) -> float:
        """Convenience: the stored cardinality of an SE."""
        return float(self._values[Statistic.card(se)])

    def merge(self, other: "StatisticsStore") -> None:
        for stat, value in other.items():
            self.put(stat, value)

    def copy(self) -> "StatisticsStore":
        clone = StatisticsStore()
        clone._values = dict(self._values)
        return clone
