"""Bucketized (approximate) histograms -- the Section 8.1 extension.

The paper's main development assumes exact one-bucket-per-value histograms
(Section 3.1) and leaves estimation error modelling as future work:
*"Generally frequency histograms are bucketized for a range of values, and
thus the selectivity estimates computed using them introduce error."*

This module provides that extension: equi-width bucketization of exact
histograms, join-cardinality estimation under the standard
uniform-within-bucket assumption, and error measurement utilities used by
the space/error trade-off ablation (Section 8.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.histogram import Histogram, HistogramError


@dataclass(frozen=True)
class BucketizedHistogram:
    """An equi-width single-attribute histogram.

    Each bucket stores the total frequency and the number of distinct
    values present; estimation assumes values spread uniformly within the
    bucket (the textbook model).
    """

    attr: str
    width: int
    counts: dict[int, float]
    distincts: dict[int, int]

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise HistogramError("bucket width must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_histogram(cls, hist: Histogram, buckets: int) -> "BucketizedHistogram":
        """Compress an exact single-attribute histogram into ``buckets``."""
        if not hist.is_single:
            raise HistogramError("bucketization requires a single attribute")
        values = [key[0] for key in hist.counts]
        if not values:
            return cls(hist.attrs[0], 1, {}, {})
        if not all(isinstance(v, (int, float)) for v in values):
            raise HistogramError("bucketization requires numeric values")
        lo, hi = min(values), max(values)
        span = max(hi - lo + 1, 1)
        width = max(math.ceil(span / max(buckets, 1)), 1)
        counts: dict[int, float] = {}
        distincts: dict[int, int] = {}
        for key, freq in hist.counts.items():
            b = int((key[0] - lo) // width)
            counts[b] = counts.get(b, 0) + freq
            distincts[b] = distincts.get(b, 0) + 1
        return cls(hist.attrs[0], width, counts, distincts)

    # ------------------------------------------------------------------
    def total(self) -> float:
        return sum(self.counts.values())

    def num_buckets(self) -> int:
        return len(self.counts)

    def memory_units(self) -> int:
        """Two integers per bucket (frequency + distinct count)."""
        return 2 * len(self.counts)

    def estimate_join(self, other: "BucketizedHistogram") -> float:
        """Estimated join cardinality under uniform-within-bucket spread.

        For aligned buckets: ``f1 * f2 / max(d1, d2)`` -- each of the more
        numerous side's values matches the per-value frequency of the other.
        """
        if self.attr != other.attr:
            raise HistogramError(
                f"attribute mismatch: {self.attr} vs {other.attr}"
            )
        if self.width != other.width:
            raise HistogramError("bucket widths must match for estimation")
        total = 0.0
        for b, f1 in self.counts.items():
            f2 = other.counts.get(b)
            if not f2:
                continue
            d = max(self.distincts[b], other.distincts[b])
            total += f1 * f2 / d
        return total


def join_estimation_error(
    h1: Histogram, h2: Histogram, buckets: int
) -> tuple[float, float, float]:
    """(exact, estimated, relative error) of a join estimate at a budget.

    Bucketizes both inputs to ``buckets`` buckets with a shared width and
    compares the approximate dot product against the exact one.
    """
    exact = h1.dot(h2)
    values = [key[0] for key in h1.counts] + [key[0] for key in h2.counts]
    if not values:
        return exact, 0.0, 0.0
    lo, hi = min(values), max(values)
    width = max(math.ceil((hi - lo + 1) / max(buckets, 1)), 1)
    b1 = _rebucket(h1, lo, width)
    b2 = _rebucket(h2, lo, width)
    estimated = b1.estimate_join(b2)
    if exact == 0:
        rel = 0.0 if estimated == 0 else math.inf
    else:
        rel = abs(estimated - exact) / exact
    return exact, estimated, rel


def _rebucket(hist: Histogram, lo, width: int) -> BucketizedHistogram:
    """Bucketize with shared origin/width so both sides' buckets align."""
    counts: dict[int, float] = {}
    distincts: dict[int, int] = {}
    for key, freq in hist.counts.items():
        b = int((key[0] - lo) // width)
        counts[b] = counts.get(b, 0) + freq
        distincts[b] = distincts.get(b, 0) + 1
    return BucketizedHistogram(hist.attrs[0], width, counts, distincts)


# ---------------------------------------------------------------------------
# equi-depth and end-biased variants
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EquiDepthHistogram:
    """Equi-depth buckets: boundaries chosen so each holds ~equal mass.

    The standard production alternative to equi-width: skewed heads get
    narrow buckets, long tails get wide ones.  ``bounds[i] <= v < bounds[i+1]``
    defines bucket ``i``; per-bucket frequency and distinct counts drive the
    same uniform-within-bucket estimates.
    """

    attr: str
    bounds: tuple  # len(buckets) + 1 ascending boundaries
    counts: tuple[float, ...]
    distincts: tuple[int, ...]

    @classmethod
    def from_histogram(cls, hist: Histogram, buckets: int) -> "EquiDepthHistogram":
        if not hist.is_single:
            raise HistogramError("bucketization requires a single attribute")
        items = sorted((key[0], freq) for key, freq in hist.counts.items())
        if not items:
            return cls(hist.attrs[0], (0, 1), (0.0,), (0,))
        total = sum(f for _v, f in items)
        target = total / max(buckets, 1)
        bounds = [items[0][0]]
        counts: list[float] = []
        distincts: list[int] = []
        acc = 0.0
        dv = 0
        for value, freq in items:
            acc += freq
            dv += 1
            if acc >= target and len(counts) < buckets - 1:
                bounds.append(value + 1)
                counts.append(acc)
                distincts.append(dv)
                acc = 0.0
                dv = 0
        bounds.append(items[-1][0] + 1)
        counts.append(acc)
        distincts.append(dv)
        return cls(hist.attrs[0], tuple(bounds), tuple(counts), tuple(distincts))

    def total(self) -> float:
        return sum(self.counts)

    def num_buckets(self) -> int:
        return len(self.counts)

    def memory_units(self) -> int:
        """Boundary + frequency + distinct count per bucket."""
        return 3 * len(self.counts)

    def estimate_frequency(self, value) -> float:
        """Uniform-within-bucket estimate of one value's frequency."""
        import bisect

        idx = bisect.bisect_right(self.bounds, value) - 1
        if idx < 0 or idx >= len(self.counts):
            return 0.0
        dv = max(self.distincts[idx], 1)
        return self.counts[idx] / dv

    def estimate_join(self, exact_other: Histogram) -> float:
        """Join estimate against an exact histogram (the asymmetric case
        where one side's catalog is approximate)."""
        return sum(
            self.estimate_frequency(key[0]) * freq
            for key, freq in exact_other.counts.items()
        )


@dataclass(frozen=True)
class EndBiasedHistogram:
    """End-biased (top-k) histogram: exact counts for the k most frequent
    values, uniform-within-rest for everything else.

    The right compression for Zipfian data -- the head carries most of the
    join mass, so keeping it exact collapses the error.
    """

    attr: str
    exact: dict
    rest_count: float
    rest_distinct: int

    @classmethod
    def from_histogram(cls, hist: Histogram, k: int) -> "EndBiasedHistogram":
        if not hist.is_single:
            raise HistogramError("bucketization requires a single attribute")
        items = sorted(
            ((key[0], freq) for key, freq in hist.counts.items()),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        head = dict(items[:k])
        tail = items[k:]
        return cls(
            hist.attrs[0],
            head,
            sum(f for _v, f in tail),
            len(tail),
        )

    def total(self) -> float:
        return sum(self.exact.values()) + self.rest_count

    def memory_units(self) -> int:
        """Value + frequency per head entry, plus the two tail summaries."""
        return 2 * len(self.exact) + 2

    def estimate_frequency(self, value) -> float:
        if value in self.exact:
            return self.exact[value]
        if self.rest_distinct == 0:
            return 0.0
        return self.rest_count / self.rest_distinct

    def estimate_join(self, exact_other: Histogram) -> float:
        return sum(
            self.estimate_frequency(key[0]) * freq
            for key, freq in exact_other.counts.items()
        )


def compare_compressions(
    h1: Histogram, h2: Histogram, memory_budget: int
) -> dict[str, float]:
    """Relative join-estimate error of each compression at a memory budget.

    ``memory_budget`` is in integers (the Section 5.4 unit); each variant
    sizes itself to fit.  Returns {'equi_width': err, 'equi_depth': err,
    'end_biased': err} for the join of ``h1`` (compressed) with ``h2``
    (exact) -- the asymmetric setting where one side's statistics come from
    a space-constrained catalog.
    """
    exact = h1.dot(h2)

    def rel(estimate: float) -> float:
        if exact == 0:
            return 0.0 if estimate == 0 else math.inf
        return abs(estimate - exact) / exact

    width_buckets = max(memory_budget // 2, 1)
    _x, ew_est, ew_err = join_estimation_error(h1, h2, width_buckets)

    depth = EquiDepthHistogram.from_histogram(
        h1, max(memory_budget // 3, 1)
    )
    eb = EndBiasedHistogram.from_histogram(
        h1, max((memory_budget - 2) // 2, 0)
    )
    return {
        "equi_width": ew_err,
        "equi_depth": rel(depth.estimate_join(h2)),
        "end_biased": rel(eb.estimate_join(h2)),
    }
