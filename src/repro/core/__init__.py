"""The paper's core contribution: statistics, CSS rules, selection."""

from repro.core.histogram import Histogram, HistogramError
from repro.core.statistics import StatKind, Statistic, StatisticsStore

__all__ = ["Histogram", "HistogramError", "StatKind", "Statistic", "StatisticsStore"]
