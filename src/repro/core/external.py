"""Integrating existing source-system statistics (Section 6.2).

When a source is a relational DBMS, its system catalog already holds
statistics.  *"All the statistics that are available can be added by
default to the set of observable statistics S_O and their costs c_i set to
0.  This ensures that the framework will always pick these statistics."*

``harvest_source_statistics`` simulates a DBMS catalog: it profiles the
given source tables (cardinality + single-attribute histograms, the usual
catalog contents) and returns both the statistic keys -- to pass as
``free_statistics`` to the selection problem -- and their values, to merge
into the observation store before estimation.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.expressions import SubExpression
from repro.core.statistics import Statistic, StatisticsStore
from repro.engine.table import Table


def harvest_source_statistics(
    sources: dict[str, Table],
    relations: Iterable[str] | None = None,
    include_histograms: bool = True,
) -> tuple[set[Statistic], StatisticsStore]:
    """Profile (some of) the source tables like a DBMS catalog would.

    Returns ``(free_statistics, values)``:

    - ``free_statistics`` -- keys to feed into
      :func:`repro.core.selection.build_problem` so they cost nothing;
    - ``values`` -- a store to merge into the run's observations so the
      estimator can actually use them.
    """
    chosen = set(relations) if relations is not None else set(sources)
    free: set[Statistic] = set()
    values = StatisticsStore()
    for name in sorted(chosen):
        table = sources[name]
        se = SubExpression.of(name)
        card = Statistic.card(se)
        free.add(card)
        values.put(card, table.num_rows)
        if not include_histograms:
            continue
        for attr in table.attrs:
            hist_stat = Statistic.hist(se, attr)
            free.add(hist_stat)
            values.put(hist_stat, table.histogram((attr,)))
            distinct_stat = Statistic.distinct(se, attr)
            free.add(distinct_stat)
            values.put(distinct_stat, table.distinct_count((attr,)))
    return free, values
