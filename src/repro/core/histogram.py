"""Exact frequency histograms and the algebra the CSS rules need.

Section 3.1: *"Currently, we consider only histograms that can accurately
estimate the cardinalities"* -- i.e. one bucket per distinct value.  This
module implements such exact (multi-)attribute frequency distributions,
``H_T^a`` and ``H_T^{a,b}``, together with every operation the rule set of
Section 4 uses:

=====================  ======================================================
operation              paper usage
=====================  ======================================================
``dot``                J1: ``|T_12| = H_{T1}^a . H_{T2}^a``
``join_distribute``    J2: matrix product of ``H_{T1}^{a,b}`` and ``H_{T2}^a``
``multiply``           J3 and Eq. 2: ``<H1 | H2>`` bucket-wise product
``divide``             Eq. 2/3: bucket-wise division (union-division method)
``marginalize``        I2: coarsen ``H^{a,b}`` to ``H^a``
``total``              I1: ``|T| = |H_T^a|`` (sum of bucket values)
``add``                Eq. 1: union of disjoint row sets
``distinct_count``     G1: ``|a_T|``
=====================  ======================================================

Buckets with zero frequency are never stored; histograms are immutable from
the caller's perspective (all operations return new objects).

Bucketized (approximate) histograms -- the Section 8.1 future-work extension
-- live in :mod:`repro.core.bucketized`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field


class HistogramError(ValueError):
    """Raised for invalid histogram operations (attribute mismatches etc.)."""


def _as_tuple(key) -> tuple:
    return key if isinstance(key, tuple) else (key,)


@dataclass(frozen=True)
class Histogram:
    """Exact frequency distribution over one or more attributes.

    ``attrs`` is the canonical (sorted) attribute tuple; ``counts`` maps a
    value tuple (aligned with ``attrs``) to its frequency.
    """

    attrs: tuple[str, ...]
    counts: Mapping[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.attrs:
            raise HistogramError("a histogram needs at least one attribute")
        if tuple(sorted(self.attrs)) != tuple(self.attrs):
            raise HistogramError(
                f"attributes must be in canonical sorted order, got {self.attrs}"
            )
        if len(set(self.attrs)) != len(self.attrs):
            raise HistogramError(f"duplicate attributes: {self.attrs}")
        cleaned = {
            _as_tuple(k): v for k, v in dict(self.counts).items() if v != 0
        }
        for key in cleaned:
            if len(key) != len(self.attrs):
                raise HistogramError(
                    f"bucket key {key!r} does not match attributes {self.attrs}"
                )
        object.__setattr__(self, "counts", cleaned)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, attrs: Sequence[str], rows: Iterable[tuple]) -> "Histogram":
        """Build a histogram by scanning value tuples aligned with ``attrs``.

        ``attrs`` may arrive in any order; both attributes and row values are
        permuted into canonical order.
        """
        attrs = tuple(attrs)
        order = sorted(range(len(attrs)), key=lambda i: attrs[i])
        canonical = tuple(attrs[i] for i in order)
        counter: Counter = Counter()
        for row in rows:
            row = _as_tuple(row)
            counter[tuple(row[i] for i in order)] += 1
        return cls(canonical, dict(counter))

    @classmethod
    def single(cls, attr: str, counts: Mapping) -> "Histogram":
        """Build a single-attribute histogram from ``{value: frequency}``."""
        return cls((attr,), {_as_tuple(k): v for k, v in counts.items()})

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_single(self) -> bool:
        return len(self.attrs) == 1

    def total(self) -> float:
        """``|H_T^a|`` -- the sum of bucket values, equals ``|T|`` (rule I1)."""
        return sum(self.counts.values())

    def distinct_count(self) -> int:
        """Number of non-empty buckets: ``|a_T|`` for the stored attributes."""
        return len(self.counts)

    def frequency(self, key) -> float:
        return self.counts.get(_as_tuple(key), 0)

    def __len__(self) -> int:
        return len(self.counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.attrs == other.attrs and dict(self.counts) == dict(other.counts)

    def __hash__(self) -> int:  # frozen dataclass with dict field
        return hash((self.attrs, frozenset(self.counts.items())))

    # ------------------------------------------------------------------
    # rule algebra
    # ------------------------------------------------------------------
    def _require_same_attrs(self, other: "Histogram") -> None:
        if self.attrs != other.attrs:
            raise HistogramError(
                f"attribute mismatch: {self.attrs} vs {other.attrs}"
            )

    def dot(self, other: "Histogram") -> float:
        """Rule J1: join cardinality as a dot product of join-key histograms."""
        self._require_same_attrs(other)
        small, large = sorted((self, other), key=len)
        return sum(
            freq * large.counts.get(key, 0) for key, freq in small.counts.items()
        )

    def multiply(self, other: "Histogram") -> "Histogram":
        """``<H1 | H2>``: bucket-wise product (rule J3, Equation 2).

        ``other`` must be a histogram on a subset of this histogram's
        attributes; its value is broadcast across the remaining attributes.
        """
        return self._broadcast(other, lambda a, b: a * b)

    def divide(self, other: "Histogram") -> "Histogram":
        """Bucket-wise division (Equations 2-3, the union-division method).

        Buckets whose divisor is zero cannot have come from the multiplied
        join, so they are dropped (they contribute no joined rows).
        """
        return self._broadcast(
            other, lambda a, b: a / b if b else 0.0
        )

    def _broadcast(self, other: "Histogram", op) -> "Histogram":
        if not set(other.attrs) <= set(self.attrs):
            raise HistogramError(
                f"{other.attrs} is not a subset of {self.attrs}; cannot broadcast"
            )
        positions = [self.attrs.index(a) for a in other.attrs]
        out: dict[tuple, float] = {}
        for key, freq in self.counts.items():
            sub = tuple(key[i] for i in positions)
            value = op(freq, other.counts.get(sub, 0))
            if value:
                out[key] = value
        return Histogram(self.attrs, out)

    def join_distribute(self, other: "Histogram", join_attr: str) -> "Histogram":
        """Rule J2: distribution of the non-join attributes after a join.

        ``self`` is ``H_{T1}^{(a, b...)}`` (contains the join attribute and
        the carried attributes), ``other`` is ``H_{T2}^a`` on the join
        attribute alone.  The result is ``H_{T1 join T2}^{b...}``::

            H[b] = sum_a H_self[a, b] * H_other[a]
        """
        if join_attr not in self.attrs:
            raise HistogramError(f"{join_attr!r} not in {self.attrs}")
        if other.attrs != (join_attr,):
            raise HistogramError(
                f"expected a single-attribute histogram on {join_attr!r}, "
                f"got {other.attrs}"
            )
        rest = tuple(a for a in self.attrs if a != join_attr)
        if not rest:
            raise HistogramError(
                "join_distribute needs at least one carried attribute; "
                "use multiply for the join attribute itself (rule J3)"
            )
        join_pos = self.attrs.index(join_attr)
        rest_pos = [self.attrs.index(a) for a in rest]
        out: dict[tuple, float] = {}
        for key, freq in self.counts.items():
            match = other.counts.get((key[join_pos],), 0)
            if not match:
                continue
            sub = tuple(key[i] for i in rest_pos)
            out[sub] = out.get(sub, 0) + freq * match
        return Histogram(rest, out)

    def marginalize(self, attrs: Sequence[str]) -> "Histogram":
        """Rule I2: coarsen to a histogram on a subset of attributes."""
        attrs = tuple(sorted(attrs))
        if not set(attrs) <= set(self.attrs):
            raise HistogramError(
                f"{attrs} is not a subset of {self.attrs}; cannot marginalize"
            )
        if attrs == self.attrs:
            return self
        positions = [self.attrs.index(a) for a in attrs]
        out: dict[tuple, float] = {}
        for key, freq in self.counts.items():
            sub = tuple(key[i] for i in positions)
            out[sub] = out.get(sub, 0) + freq
        return Histogram(attrs, out)

    def add(self, other: "Histogram") -> "Histogram":
        """Union of disjoint row sets (Equation 1): bucket-wise sum."""
        self._require_same_attrs(other)
        out = dict(self.counts)
        for key, freq in other.counts.items():
            out[key] = out.get(key, 0) + freq
        return Histogram(self.attrs, out)

    def select(self, attr: str, predicate) -> "Histogram":
        """Rule S1/S2 support: keep buckets whose ``attr`` value passes."""
        if attr not in self.attrs:
            raise HistogramError(f"{attr!r} not in {self.attrs}")
        pos = self.attrs.index(attr)
        kept = {k: v for k, v in self.counts.items() if predicate(k[pos])}
        return Histogram(self.attrs, kept)

    def memory_units(self) -> int:
        """Actual bucket count (one integer per non-empty bucket)."""
        return len(self.counts)
