"""Error-aware statistics selection -- the Section 8 extension.

The main framework assumes exact histograms; Section 8.1 observes that real
engines bucketize, so every statistic carries an estimation error, and "the
optimization function needs to consider even the *allowed error* along with
the *memory constraints*".  Section 8.2 adds the resulting space/error
trade-off.

This module implements that extension on top of the exact machinery:

- every observable histogram statistic gets a ladder of *resolutions*
  (fractions of its exact bucket count).  Resolution 1.0 is exact; coarser
  levels cost proportionally less memory and carry an error coefficient
  ``err(r) = skew * (1 - r)`` -- the standard first-order model where the
  estimate degrades linearly as buckets merge values of unequal frequency;
- errors propagate through the chosen CSS derivations: a computed
  statistic's error is (an upper bound on) the sum of its inputs' errors,
  the usual relative-error composition for products/dots;
- :class:`ErrorAwareSelector` starts from the exact optimum and greedily
  coarsens the histogram with the best memory-saving per unit of error
  while every required cardinality stays within the allowed error.

The companion bench (``bench_ablation_error_aware``) sweeps the error
budget and traces the memory/error frontier; ``measure_errors`` checks the
model against actual bucketized estimates on executed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import CostModel
from repro.core.css import CssCatalog
from repro.core.selection import SelectionProblem, SelectionResult
from repro.core.statistics import StatisticsStore, StatKind, Statistic

#: default resolution ladder (fraction of exact bucket count)
RESOLUTIONS = (1.0, 0.9, 0.75, 0.5, 0.25, 0.1, 0.05)


@dataclass(frozen=True)
class ResolutionChoice:
    """One statistic's chosen resolution."""

    stat: Statistic
    resolution: float
    memory: float
    error: float


@dataclass
class ErrorAwareResult:
    """Outcome of error-aware coarsening."""

    base: SelectionResult
    choices: dict[Statistic, ResolutionChoice] = field(default_factory=dict)
    error_budget: float = 0.0

    @property
    def total_memory(self) -> float:
        return sum(c.memory for c in self.choices.values())

    @property
    def exact_memory(self) -> float:
        return self.base.total_cost

    def projected_error(self, stat: Statistic, catalog: CssCatalog) -> float:
        """Upper bound on one statistic's relative error under the chosen
        resolutions."""
        return _propagated_error(
            stat, {s: c.error for s, c in self.choices.items()}, catalog, {}
        )

    def worst_required_error(self, catalog: CssCatalog) -> float:
        errors = {s: c.error for s, c in self.choices.items()}
        memo: dict[Statistic, float] = {}
        return max(
            (_propagated_error(s, errors, catalog, memo) for s in catalog.required),
            default=0.0,
        )

    def describe(self) -> str:
        lines = [
            f"error-aware selection: budget={self.error_budget:g} "
            f"memory {self.exact_memory:g} -> {self.total_memory:g}"
        ]
        for choice in sorted(
            self.choices.values(), key=lambda c: c.stat.sort_key()
        ):
            if choice.resolution < 1.0:
                lines.append(
                    f"  {choice.stat!r}: resolution {choice.resolution:g} "
                    f"(mem {choice.memory:g}, err {choice.error:.3f})"
                )
        return "\n".join(lines)


def _propagated_error(
    stat: Statistic,
    leaf_errors: dict[Statistic, float],
    catalog: CssCatalog,
    memo: dict[Statistic, float],
) -> float:
    """Upper bound on a statistic's relative error under the chosen
    resolutions: observed -> its ladder error; derived -> the cheapest CSS's
    summed input errors (first-order composition)."""
    if stat in memo:
        return memo[stat]
    memo[stat] = float("inf")  # cycle guard: a cycle cannot reduce error
    best = leaf_errors.get(stat, None)
    for css in catalog.css_for(stat):
        if not all(
            s in leaf_errors or catalog.css_for(s) for s in css.inputs
        ):
            continue
        total = 0.0
        for member in css.inputs:
            total += _propagated_error(member, leaf_errors, catalog, memo)
            if total == float("inf"):
                break
        if best is None or total < best:
            best = total
    result = best if best is not None else float("inf")
    memo[stat] = result
    return result


class ErrorAwareSelector:
    """Greedy coarsening of an exact selection under an error budget."""

    def __init__(
        self,
        catalog: CssCatalog,
        problem: SelectionProblem,
        base: SelectionResult,
        cost_model: CostModel,
        skew: float = 0.5,
        resolutions: tuple[float, ...] = RESOLUTIONS,
    ):
        self.catalog = catalog
        self.problem = problem
        self.base = base
        self.cost_model = cost_model
        self.skew = skew
        self.resolutions = tuple(sorted(resolutions, reverse=True))

    def _ladder(self, stat: Statistic) -> list[tuple[float, float, float]]:
        """(resolution, memory, error) options for one observed statistic."""
        full = self.cost_model.cost(stat)
        if stat.kind is not StatKind.HISTOGRAM or full <= 2:
            return [(1.0, full, 0.0)]
        out = []
        for r in self.resolutions:
            memory = max(full * r, 2.0)
            error = self.skew * (1.0 - r)
            out.append((r, memory, error))
        return out

    def select(self, error_budget: float) -> ErrorAwareResult:
        choices: dict[Statistic, ResolutionChoice] = {}
        for stat in self.base.observed:
            r, memory, error = self._ladder(stat)[0]
            choices[stat] = ResolutionChoice(stat, r, memory, error)

        result = ErrorAwareResult(
            base=self.base, choices=choices, error_budget=error_budget
        )

        improved = True
        while improved:
            improved = False
            best_move: tuple[float, Statistic, tuple[float, float, float]] | None = None
            for stat, current in choices.items():
                for option in self._ladder(stat):
                    r, memory, error = option
                    if r >= current.resolution:
                        continue
                    saving = current.memory - memory
                    if saving <= 0:
                        continue
                    # tentatively apply and check the budget
                    choices[stat] = ResolutionChoice(stat, r, memory, error)
                    worst = result.worst_required_error(self.catalog)
                    choices[stat] = current
                    if worst > error_budget:
                        continue
                    added_error = error - current.error
                    score = saving / (added_error + 1e-9)
                    if best_move is None or score > best_move[0]:
                        best_move = (score, stat, option)
            if best_move is not None:
                _score, stat, (r, memory, error) = best_move
                choices[stat] = ResolutionChoice(stat, r, memory, error)
                improved = True
        return result


def measure_errors(
    result: ErrorAwareResult, observed: "StatisticsStore"
) -> dict[Statistic, float]:
    """Measure the actual error each coarsening would introduce.

    For every coarsened single-attribute histogram whose exact version was
    observed, bucketize it to the chosen resolution and compute the mean
    relative frequency error -- a ground-truth check on the linear model
    ``err(r) = skew * (1 - r)``.
    """
    from repro.core.bucketized import BucketizedHistogram
    from repro.core.histogram import Histogram

    measured: dict[Statistic, float] = {}
    for stat, choice in result.choices.items():
        if choice.resolution >= 1.0 or stat.kind is not StatKind.HISTOGRAM:
            continue
        value = observed.maybe(stat)
        if not isinstance(value, Histogram) or not value.is_single:
            continue
        exact_buckets = value.distinct_count()
        target = max(int(exact_buckets * choice.resolution), 1)
        try:
            approx = BucketizedHistogram.from_histogram(value, target)
        except Exception:
            continue
        total = value.total()
        if not total:
            measured[stat] = 0.0
            continue
        err = 0.0
        for key, freq in value.counts.items():
            v = key[0]
            # reconstruct the bucketized estimate for this value
            b = int((v - min(k[0] for k in value.counts)) // approx.width)
            count = approx.counts.get(b, 0.0)
            dv = max(approx.distincts.get(b, 1), 1)
            est = count / dv
            err += abs(est - freq)
        measured[stat] = err / total
    return measured


def select_with_error_budget(
    catalog: CssCatalog,
    problem: SelectionProblem,
    base: SelectionResult,
    cost_model: CostModel,
    error_budget: float,
    skew: float = 0.5,
) -> ErrorAwareResult:
    """Convenience wrapper over :class:`ErrorAwareSelector`."""
    selector = ErrorAwareSelector(catalog, problem, base, cost_model, skew=skew)
    return selector.select(error_budget)
