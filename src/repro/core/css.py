"""Candidate statistics sets (CSS) and the catalog Algorithm 1 produces.

Section 3.1: *"A set of statistics that is sufficient for computing a
statistic of a SE is defined as a sufficient statistics set ... minimally
sufficient set ... candidate statistics set (CSS)."*

A :class:`CSS` records the target statistic, the input statistics, the rule
that relates them (so the estimator knows *how* to combine the inputs), and
any rule context (join key, anchored step, group-by attributes).  The
special rule ``TRIVIAL`` marks direct observation of the statistic itself.

The :class:`CssCatalog` is the output of Algorithm 1 for a whole workflow:
every generated statistic, the CSSs for each, which statistics are
observable in the initial plan (``S_O``), and which must be computable
(``S_C`` -- the cardinality of every SE in ℰ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.algebra.blocks import Step
from repro.core.statistics import Statistic

TRIVIAL = "TRIVIAL"


@dataclass(frozen=True)
class CSS:
    """One candidate statistics set for ``target``.

    ``inputs`` order is meaningful: each rule defines the roles of its
    inputs (see :mod:`repro.estimation.calculator`).
    """

    target: Statistic
    inputs: tuple[Statistic, ...]
    rule: str
    context: tuple[tuple[str, object], ...] = ()

    def ctx(self, key: str, default=None):
        for k, v in self.context:
            if k == key:
                return v
        return default

    @property
    def is_trivial(self) -> bool:
        return self.rule == TRIVIAL

    def __repr__(self) -> str:
        inputs = ", ".join(repr(s) for s in self.inputs)
        return f"CSS[{self.rule}] {self.target!r} <- {{{inputs}}}"


def trivial_css(stat: Statistic) -> CSS:
    """The trivial CSS: observe the statistic itself (Section 3.1)."""
    return CSS(stat, (stat,), TRIVIAL)


@dataclass
class CssCatalog:
    """All CSSs generated for a workflow, plus the S / S_O / S_C sets."""

    css: dict[Statistic, list[CSS]] = field(default_factory=dict)
    observable: set[Statistic] = field(default_factory=set)
    required: set[Statistic] = field(default_factory=set)
    steps: dict[int, Step] = field(default_factory=dict)
    block_of: dict[Statistic, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, css: CSS) -> bool:
        """Register a CSS; returns False if an identical one already exists."""
        bucket = self.css.setdefault(css.target, [])
        if css in bucket:
            return False
        bucket.append(css)
        return True

    def css_for(self, stat: Statistic) -> list[CSS]:
        return self.css.get(stat, [])

    def nontrivial_css_for(self, stat: Statistic) -> list[CSS]:
        return [c for c in self.css_for(stat) if not c.is_trivial]

    @property
    def all_statistics(self) -> set[Statistic]:
        """The set S: every statistic appearing anywhere in the catalog."""
        stats: set[Statistic] = set(self.css)
        for bucket in self.css.values():
            for css in bucket:
                stats.update(css.inputs)
        stats.update(self.required)
        stats.update(self.observable)
        return stats

    def is_observable(self, stat: Statistic) -> bool:
        return stat in self.observable

    def mark_observable(self, stat: Statistic) -> None:
        self.observable.add(stat)

    def require(self, stat: Statistic) -> None:
        self.required.add(stat)

    def register_step(self, step: Step) -> None:
        self.steps[step.node_id] = step

    def step(self, node_id: int) -> Step:
        return self.steps[node_id]

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Summary counters for the Figure 9 complexity report."""
        n_css = sum(len(v) for v in self.css.values())
        n_trivial = sum(
            1 for v in self.css.values() for c in v if c.is_trivial
        )
        return {
            "statistics": len(self.all_statistics),
            "required": len(self.required),
            "observable": len(self.observable),
            "css": n_css,
            "nontrivial_css": n_css - n_trivial,
        }

    def closure(self, observed: set[Statistic]) -> set[Statistic]:
        """Statistics computable from ``observed`` (bottom-up fixpoint).

        Mirrors :meth:`SelectionProblem.closure` at the catalog level; used
        by schedules that change observability between executions.
        """
        computable = set(observed)
        entries = [c for bucket in self.css.values() for c in bucket]
        changed = True
        while changed:
            changed = False
            for entry in entries:
                if entry.target in computable:
                    continue
                if all(s in computable for s in entry.inputs):
                    computable.add(entry.target)
                    changed = True
        return computable

    def merge(self, other: "CssCatalog") -> None:
        for bucket in other.css.values():
            for css in bucket:
                self.add(css)
        self.observable |= other.observable
        self.required |= other.required
        self.steps.update(other.steps)
        self.block_of.update(other.block_of)

    def describe(self, stats: Optional[Iterable[Statistic]] = None) -> str:
        lines = []
        targets = sorted(stats or self.css, key=lambda s: s.sort_key())
        for stat in targets:
            flags = []
            if stat in self.observable:
                flags.append("obs")
            if stat in self.required:
                flags.append("req")
            lines.append(f"{stat!r} [{','.join(flags)}]")
            for css in self.css_for(stat):
                lines.append(f"    {css!r}")
        return "\n".join(lines)
