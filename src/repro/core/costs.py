"""Cost metrics for observing statistics (Section 5.4).

Two metrics are modelled:

- **memory**: the conservative bucket-count bound -- ``1`` for a counter,
  ``||a||`` for a single-attribute histogram or distinct count, and the
  product of domain sizes for a joint histogram (the paper's table in
  Section 5.4).
- **CPU**: proportional to the number of tuples flowing past the
  observation point, i.e. the size of the SE being instrumented.  That size
  is exactly what the statistics are meant to estimate; the paper breaks
  the circularity by using SE sizes from the previous run, falling back to
  a coarse independence-assumption estimate on the first run.

Unobservable statistics cost ``inf`` -- the selection layer can never pick
them for direct observation (Figure 8 marks them the same way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.algebra.expressions import AnySE, RejectJoinSE, RejectSE
from repro.algebra.schema import Catalog
from repro.core.statistics import StatKind, Statistic

INFINITE = math.inf


@dataclass
class CostModel:
    """Computes per-statistic observation costs.

    ``se_sizes`` maps SEs to (estimated) row counts for CPU costing; when an
    SE is missing, ``default_se_size`` applies (the coarse first-run
    approximation).  ``memory_weight`` / ``cpu_weight`` blend the metrics;
    the paper's experiments use pure memory cost (Figure 11), which is the
    default.
    """

    catalog: Catalog
    se_sizes: dict[AnySE, float] = field(default_factory=dict)
    memory_weight: float = 1.0
    cpu_weight: float = 0.0
    default_domain: int = 1024
    default_se_size: float = 1000.0
    #: when distinct taps run as HLL sketches, a distinct count never
    #: holds more than one byte per register -- its memory cost is capped
    #: at the register count (``2^precision``) instead of the domain
    #: product.  ``None`` keeps the exact-tracking table.
    distinct_sketch_units: float | None = None

    def domain_size(self, attr: str) -> int:
        try:
            return self.catalog.domain_size(attr)
        except Exception:
            return self.default_domain

    def memory_units(self, stat: Statistic) -> float:
        """The Section 5.4 memory table.

        A histogram's bucket count is "the number of distinct values of that
        set of attributes" on the observed SE; lacking the exact count, the
        bound is the domain-size product, *capped by the SE's row count*
        when a size estimate exists (a frequency histogram cannot have more
        non-empty buckets than rows -- this is what makes histograms on
        selective join results and on reject links cheap, the effect behind
        the paper's Figure 8 costs and the union-division savings of
        Figure 11).  First runs without size estimates fall back to the
        conservative domain product.
        """
        if stat.kind is StatKind.CARDINALITY:
            return 1.0
        units = 1.0
        for attr in stat.attrs:
            units *= self.domain_size(attr)
        bound = self._size_bound(stat.se)
        if bound is not None:
            units = min(units, max(bound, 1.0))
        if (
            stat.kind is StatKind.DISTINCT
            and self.distinct_sketch_units is not None
        ):
            units = min(units, self.distinct_sketch_units)
        return units

    def _size_bound(self, se: AnySE) -> float | None:
        """Row-count bound for an SE, if any estimate is available."""
        if se in self.se_sizes:
            return float(self.se_sizes[se])
        if isinstance(se, RejectSE):
            base = self.se_sizes.get(se.source)
            return float(base) if base is not None else None
        if isinstance(se, RejectJoinSE):
            return None
        return None

    def se_size(self, se: AnySE) -> float:
        if se in self.se_sizes:
            return float(self.se_sizes[se])
        if isinstance(se, RejectSE):
            base = self.se_sizes.get(se.source)
            return float(base) if base is not None else self.default_se_size
        if isinstance(se, RejectJoinSE):
            return self.default_se_size
        return self.default_se_size

    def cpu_units(self, stat: Statistic) -> float:
        """One update per tuple passing the observation point."""
        return self.se_size(stat.se)

    def cost(self, stat: Statistic, observable: bool = True) -> float:
        if not observable:
            return INFINITE
        return (
            self.memory_weight * self.memory_units(stat)
            + self.cpu_weight * self.cpu_units(stat)
        )
