"""Algorithm 1: generating the candidate statistics sets for a workflow.

This is the paper's Section 4 in executable form.  Starting from the
cardinality of every SE in ℰ (the *tobecomputed* seed), rules are applied
one level at a time; every statistic a rule demands is queued so its own
CSSs get generated, and a final identity pass (I1/I2) adds coarsening
alternatives **without minting new statistics** -- exactly the restriction
Section 4.2/4.3 imposes to avoid the exponential blow-up of histograms on
attribute supersets.

Rule inventory (Tables 2-5 plus Section 6 extensions):

====  ======================================================================
S1    ``|sigma_a(T)|``            from ``H_T^a``
S2    ``H_{sigma_a(T)}^b``        from ``H_T^{(a,b)}``
P1/P2 projection pass-through
J1    ``|T_12|``                  from ``H_{T1}^a . H_{T2}^a``
J2    ``H_{T12}^b``               from ``H_{T1}^{a,b}, H_{T2}^a`` (and the
      generalized multi-attribute / both-sides form)
J3    ``H_{T12}^a``               from ``H_{T1}^a, H_{T2}^a`` (b = join key)
J4/J5 the union-division method (Section 4.1.2, Equations 1-3)
G1    ``|G(T,a)|``                from ``|a_T|``
G2    ``H_{G(T,a)}^b``            from ``H_T^{(a)}`` when ``b`` within ``a``
U1/U2 transformation pass-through (black-box UDFs)
I1    ``|T|``                     from any ``H_T^a``
I2    ``H_T^a``                   from ``H_T^{(a,b)}``
D1    ``|a_T|``                   from ``H_T^a`` (distinct = bucket count)
B1    boundary pass-through (materialized output feeds next block)
FK    ``|e|`` = ``|e - parent|``  for unfiltered foreign-key lookups
====  ======================================================================

Trivial CSSs are implicit: a statistic is *observable* (member of ``S_O``)
when the initial plan can be instrumented to measure it (Section 3.2.5); the
selection layer charges the observation cost directly rather than storing a
self-referential CSS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import (
    AnySE,
    RejectJoinSE,
    RejectSE,
    SubExpression,
)
from repro.algebra.index import SEIndex
from repro.algebra.plans import JoinNode, JoinSplit
from repro.algebra.schema import Catalog
from repro.core.css import CSS, CssCatalog
from repro.core.statistics import StatKind, Statistic


@dataclass
class GeneratorOptions:
    """Knobs controlling CSS generation.

    ``union_division`` toggles the paper's novel J4/J5 rules (the Figure 9 /
    Figure 11 "with vs without union-division" comparison flips this).
    ``fk_rules`` enables lookup-join derivations from catalog metadata.
    ``max_hist_attrs`` caps joint-histogram width (None = unlimited).
    """

    union_division: bool = True
    fk_rules: bool = True
    group_by_rules: bool = True
    max_hist_attrs: int | None = None


@dataclass(frozen=True)
class _UDPattern:
    """One applicable union-division context inside an initial plan.

    The initial plan contains ``h = (e1 join_{kg} t3) join other``; for the
    SE ``e = e1 U other`` (not produced by that plan) rules J4/J5 apply.
    """

    e: SubExpression
    h: SubExpression
    t3: SubExpression
    kg: tuple[str, ...]
    e1: SubExpression
    other: SubExpression
    ke: tuple[str, ...]


class CssGenerator:
    """Runs Algorithm 1 over all optimizable blocks of a workflow."""

    def __init__(
        self, analysis: BlockAnalysis, options: GeneratorOptions | None = None
    ):
        self.analysis = analysis
        self.options = options or GeneratorOptions()
        self.catalog = CssCatalog()
        self.index = SEIndex(analysis)
        self._seen: set[Statistic] = set()
        self._queue: deque[Statistic] = deque()
        self._ud_patterns: dict[SubExpression, list[_UDPattern]] = {}

        for block in analysis.blocks:
            self._index_block(block)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index_block(self, block: Block) -> None:
        for inp in block.inputs.values():
            for step in inp.steps:
                self.catalog.register_step(step)
        for step in block.post_steps:
            self.catalog.register_step(step)
        if self.options.union_division:
            for pattern in self._scan_ud(block):
                self._ud_patterns.setdefault(pattern.e, []).append(pattern)

    def _scan_ud(self, block: Block) -> list[_UDPattern]:
        patterns: list[_UDPattern] = []
        for h_node in self.index.tree_joins[block.name]:
            for g, other in (
                (h_node.left, h_node.right),
                (h_node.right, h_node.left),
            ):
                if not isinstance(g, JoinNode):
                    continue
                for e1, t3 in ((g.left, g.right), (g.right, g.left)):
                    ke = block.graph.crossing_key(
                        e1.se.relations, other.se.relations
                    )
                    if not ke:
                        continue
                    # soundness: dividing H_h by H_t3 on kg assumes t3
                    # meets e = e1 U other on exactly the kg attributes.
                    # a join edge between t3 and `other` on an attribute
                    # outside kg adds a constraint the division (and the
                    # reject complement) cannot see, so the pattern does
                    # not apply; an edge on a kg attribute is already
                    # accounted for by the per-group division
                    extra = set(
                        block.graph.crossing_key(
                            t3.se.relations, other.se.relations
                        )
                    ) - set(g.key)
                    if extra:
                        continue
                    e = e1.se.union(other.se)
                    patterns.append(
                        _UDPattern(
                            e=e,
                            h=h_node.se,
                            t3=t3.se,
                            kg=tuple(g.key),
                            e1=e1.se,
                            other=other.se,
                            ke=ke,
                        )
                    )
        return patterns

    # ------------------------------------------------------------------
    # SE helpers
    # ------------------------------------------------------------------
    def _block_of(self, se: AnySE) -> Block:
        return self.index.block_of(se)

    def se_attrs(self, se: AnySE) -> tuple[str, ...]:
        return self.index.se_attrs(se)

    def is_observable(self, stat: Statistic) -> bool:
        if not self.index.se_observable(stat.se):
            return False
        return set(stat.attrs) <= set(self.se_attrs(stat.se))

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    def _want(self, stat: Statistic) -> Statistic:
        if stat not in self._seen:
            self._seen.add(stat)
            self._queue.append(stat)
            if self.is_observable(stat):
                self.catalog.mark_observable(stat)
            try:
                self.catalog.block_of[stat] = self._block_of(stat.se).name
            except KeyError:
                pass
        return stat

    def _emit(self, target: Statistic, rule: str, inputs: list[Statistic], **ctx):
        inputs = tuple(self._want(s) for s in inputs)
        self.catalog.add(
            CSS(target, inputs, rule, tuple(sorted(ctx.items())))
        )

    # ------------------------------------------------------------------
    # main loop (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self) -> CssCatalog:
        for block in self.analysis.blocks:
            for se in block.universe():
                stat = self._want(Statistic.card(se))
                self.catalog.require(stat)
        while self._queue:
            stat = self._queue.popleft()
            self._expand(stat)
        self._identity_pass()
        return self.catalog

    def _expand(self, stat: Statistic) -> None:
        se = stat.se
        if isinstance(se, RejectSE):
            return  # only the trivial (observed) form exists
        if isinstance(se, RejectJoinSE):
            self._expand_reject_join(stat, se)
            return
        if stat.kind is StatKind.DISTINCT:
            # D1: distinct values = bucket count of the exact histogram
            self._emit(stat, "D1", [Statistic.hist(se, *stat.attrs)])
            return
        if len(se) > 1:
            self._expand_join(stat, se)
            return
        self._expand_stage(stat, se)

    # -- join SEs ---------------------------------------------------------
    def _expand_join(self, stat: Statistic, se: SubExpression) -> None:
        block = self._block_of(se)
        for split in self.index.splits.get(se, []):
            if stat.is_cardinality:
                self._emit(
                    stat,
                    "J1",
                    [
                        Statistic.hist(split.left, *split.key),
                        Statistic.hist(split.right, *split.key),
                    ],
                    key=split.key,
                )
            else:
                self._emit_join_hist(stat, block, split)
        if stat.is_cardinality and self.options.fk_rules:
            for smaller in self._fk_reductions(block, se):
                self._emit(stat, "FK", [Statistic.card(smaller)])
        for pattern in self._ud_patterns.get(se, []):
            self._emit_union_division(stat, pattern)

    def _emit_join_hist(
        self, stat: Statistic, block: Block, split: JoinSplit
    ) -> None:
        bs = set(stat.attrs)
        key = set(split.key)
        if bs == key:
            # J3: the join key's own distribution multiplies bucket-wise
            self._emit(
                stat,
                "J3",
                [
                    Statistic.hist(split.left, *stat.attrs),
                    Statistic.hist(split.right, *stat.attrs),
                ],
                key=split.key,
            )
            return
        left_attrs = set(block.se_attrs(split.left))
        right_attrs = set(block.se_attrs(split.right))
        carried_left = key | {b for b in bs if b in left_attrs}
        carried_right = key | {b for b in bs if b in right_attrs and b not in left_attrs}
        limit = self.options.max_hist_attrs
        if limit is not None and max(len(carried_left), len(carried_right)) > limit:
            return
        self._emit(
            stat,
            "J2",
            [
                Statistic.hist(split.left, *sorted(carried_left)),
                Statistic.hist(split.right, *sorted(carried_right)),
            ],
            key=split.key,
            bs=tuple(sorted(bs)),
        )

    def _fk_reductions(self, block: Block, se: SubExpression):
        """SEs whose cardinality equals |se| by FK-lookup metadata."""
        catalog: Catalog = self.analysis.workflow.catalog
        out = []
        for parent_name in se.relations:
            parent = block.inputs.get(parent_name)
            if parent is None or parent.steps:
                continue  # filtered / transformed parents break the lookup
            rest = se.relations - {parent_name}
            if not rest or not block.graph.is_connected(rest):
                continue
            crossing = block.graph.crossing_key(frozenset({parent_name}), rest)
            if len(crossing) != 1:
                continue
            attr = crossing[0]
            child_ok = any(
                catalog.is_lookup_join(
                    block.inputs[c].base_name, parent.base_name, attr
                )
                for c in rest
                if c in block.inputs and attr in block.inputs[c].out_attrs
            )
            if child_ok:
                out.append(SubExpression(rest))
        return out

    def _emit_union_division(self, stat: Statistic, p: _UDPattern) -> None:
        reject = RejectSE(p.e1, p.kg[0] if len(p.kg) == 1 else p.kg, p.t3)
        side_join = RejectJoinSE(reject, p.ke[0] if len(p.ke) == 1 else p.ke, p.other)
        if stat.is_cardinality:
            # J4: |e| = |H_h^kg / H_t3^kg| + |rej(e1) join other|
            self._emit(
                stat,
                "J4",
                [
                    Statistic.hist(p.h, *p.kg),
                    Statistic.hist(p.t3, *p.kg),
                    Statistic.card(side_join),
                ],
                kg=p.kg,
            )
        else:
            bs = set(stat.attrs)
            if not bs <= set(self.se_attrs(p.h)):
                return
            # J5: H_e^b = marg_b(H_h^{kg,b} / H_t3^kg) + H_{rej join}^b
            self._emit(
                stat,
                "J5",
                [
                    Statistic.hist(p.h, *sorted(bs | set(p.kg))),
                    Statistic.hist(p.t3, *p.kg),
                    Statistic.hist(side_join, *sorted(bs)),
                ],
                kg=p.kg,
                bs=tuple(sorted(bs)),
            )

    def _expand_reject_join(self, stat: Statistic, se: RejectJoinSE) -> None:
        key = (se.key,) if isinstance(se.key, str) else tuple(se.key)
        if stat.is_cardinality:
            self._emit(
                stat,
                "J1",
                [
                    Statistic.hist(se.reject, *key),
                    Statistic.hist(se.other, *key),
                ],
                key=key,
            )
            return
        bs = set(stat.attrs)
        if bs == set(key):
            self._emit(
                stat,
                "J3",
                [Statistic.hist(se.reject, *key), Statistic.hist(se.other, *key)],
                key=key,
            )
            return
        rej_attrs = set(self.se_attrs(se.reject))
        other_attrs = set(self.se_attrs(se.other))
        carried_rej = set(key) | {b for b in bs if b in rej_attrs}
        carried_other = set(key) | {
            b for b in bs if b in other_attrs and b not in rej_attrs
        }
        self._emit(
            stat,
            "J2",
            [
                Statistic.hist(se.reject, *sorted(carried_rej)),
                Statistic.hist(se.other, *sorted(carried_other)),
            ],
            key=key,
            bs=tuple(sorted(bs)),
        )

    # -- stage SEs ---------------------------------------------------------
    def _expand_stage(self, stat: Statistic, se: SubExpression) -> None:
        name = se.base_name
        if name in self.index.post:
            block, idx = self.index.post[name]
            prev = (
                block.post_stage_ses()[idx - 1] if idx > 0 else block.join_se
            )
            self._emit_step_rules(stat, block.post_steps[idx], prev)
            return
        block, inp, idx = self.index.stage[name]
        if idx > 0:
            prev = SubExpression.of(inp.stage_names()[idx - 1])
            self._emit_step_rules(stat, inp.steps[idx - 1], prev)
            return
        # raw feed: cross-block provenance rules
        link = inp.upstream
        if link is None:
            return
        if link.kind in ("output", "materialize", "shared"):
            if stat.is_cardinality:
                self._emit(stat, "B1", [Statistic.card(link.output_se)])
            elif set(stat.attrs) <= set(link.output_attrs):
                self._emit(
                    stat, "B1", [Statistic.hist(link.output_se, *stat.attrs)]
                )
        elif link.kind == "aggregate" and self.options.group_by_rules:
            group = tuple(sorted(link.group_attrs))
            if stat.is_cardinality and group:
                self._emit(
                    stat,
                    "G1",
                    [Statistic.distinct(link.output_se, *group)],
                    group=group,
                )
            elif stat.is_histogram and set(stat.attrs) <= set(group):
                self._emit(
                    stat,
                    "G2",
                    [Statistic.hist(link.output_se, *group)],
                    group=group,
                    bs=stat.attrs,
                )
        # aggregate_udf: black box -- only the trivial observation exists

    def _emit_step_rules(self, stat: Statistic, step, prev: SubExpression) -> None:
        if step.kind == "filter":
            attr = step.attrs[0]
            if stat.is_cardinality:
                self._emit(
                    stat, "S1", [Statistic.hist(prev, attr)], step=step.node_id
                )
            else:
                joint = tuple(sorted(set(stat.attrs) | {attr}))
                prev_attrs = set(self._block_of(prev).se_attrs(prev))
                if set(joint) <= prev_attrs:
                    limit = self.options.max_hist_attrs
                    if limit is None or len(joint) <= limit:
                        self._emit(
                            stat,
                            "S2",
                            [Statistic.hist(prev, *joint)],
                            step=step.node_id,
                            bs=stat.attrs,
                        )
        elif step.kind == "transform":
            changed = {step.result_attr} if step.result_attr else set(step.attrs)
            if stat.is_cardinality:
                self._emit(stat, "U1", [Statistic.card(prev)], step=step.node_id)
            elif not (set(stat.attrs) & changed):
                prev_attrs = set(self._block_of(prev).se_attrs(prev))
                if set(stat.attrs) <= prev_attrs:
                    self._emit(
                        stat, "U2", [Statistic.hist(prev, *stat.attrs)],
                        step=step.node_id,
                    )
        elif step.kind == "project":
            if stat.is_cardinality:
                self._emit(stat, "P1", [Statistic.card(prev)], step=step.node_id)
            elif set(stat.attrs) <= set(step.attrs):
                self._emit(
                    stat, "P2", [Statistic.hist(prev, *stat.attrs)],
                    step=step.node_id,
                )

    # ------------------------------------------------------------------
    # identity pass (I1 / I2), restricted to already-generated statistics
    # ------------------------------------------------------------------
    def _identity_pass(self) -> None:
        by_se: dict[AnySE, list[Statistic]] = {}
        for stat in sorted(self._seen, key=lambda s: s.sort_key()):
            if stat.is_histogram:
                by_se.setdefault(stat.se, []).append(stat)
        for stat in sorted(self._seen, key=lambda s: s.sort_key()):
            hists = by_se.get(stat.se, [])
            if stat.is_cardinality:
                for h in hists:
                    self.catalog.add(CSS(stat, (h,), "I1"))
            elif stat.is_histogram:
                for h in hists:
                    if h is stat or not (set(stat.attrs) < set(h.attrs)):
                        continue
                    self.catalog.add(
                        CSS(stat, (h,), "I2", (("bs", stat.attrs),))
                    )


def generate_css(
    analysis: BlockAnalysis, options: GeneratorOptions | None = None
) -> CssCatalog:
    """Run Algorithm 1 and return the CSS catalog for the workflow."""
    return CssGenerator(analysis, options).run()
