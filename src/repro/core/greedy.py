"""The greedy heuristic of Section 5.3.

In each round, pick the cheapest way of making one still-uncovered
statistic from ``S_C`` computable.  The cost of a CSS accounts for
amortization: statistics that are already computable cost nothing, shared
inputs are charged once (plans are *sets* of observations), and the cost of
a not-yet-observable input is the recursively cheapest cost of acquiring it
through its own CSSs.  After each commitment the computability closure is
refreshed so subsequent rounds see the reduced residual costs -- "the costs
of the remaining CSSs are reduced based on the statistics picked in this
step".

Acquisition costs are computed with a label-correcting pass over the AND-OR
CSS graph (cost of a statistic = min(observe it, min over its CSSs of the
summed input costs)).  Labels only ever decrease and updates are strict, so
the final choice graph is acyclic even on the cyclic CSS graphs
union-division produces -- no exponential cycle-guard recursion.  The
additive sum double-counts inputs shared *within* one derivation, which is
fine for a heuristic: the actual commitment deduplicates via set union.
"""

from __future__ import annotations

from repro.core.costs import INFINITE
from repro.core.selection import SelectionProblem, SelectionResult

_OBSERVE = -1  # choice marker: observe the statistic directly


def _label_costs(
    problem: SelectionProblem, computable: set[int]
) -> tuple[dict[int, float], dict[int, int]]:
    """Cheapest acquisition cost per statistic, plus the supporting choice.

    ``choice[i]`` is ``_OBSERVE`` or the index of the CSS entry whose
    covered inputs realize the cost.  Only strict improvements update the
    labels, so following choices never cycles.
    """
    best: dict[int, float] = {}
    choice: dict[int, int] = {}
    for i in computable:
        best[i] = 0.0
    for i in problem.observable:
        if i in computable:
            continue
        cost = problem.costs[i]
        if cost < INFINITE and cost < best.get(i, INFINITE):
            best[i] = cost
            choice[i] = _OBSERVE

    changed = True
    while changed:
        changed = False
        for j, entry in enumerate(problem.entries):
            members = set(entry.inputs)
            if entry.target in members:
                continue
            total = 0.0
            for k in members:
                cost_k = best.get(k)
                if cost_k is None:
                    total = INFINITE
                    break
                total += cost_k
            if total < best.get(entry.target, INFINITE) - 1e-12:
                best[entry.target] = total
                choice[entry.target] = j
                changed = True
    return best, choice


def _collect_plan(
    problem: SelectionProblem,
    stat: int,
    computable: set[int],
    choice: dict[int, int],
    out: set[int],
    visited: set[int],
) -> None:
    """Walk the (acyclic) choice graph, gathering observations to make."""
    if stat in computable or stat in visited:
        return
    visited.add(stat)
    picked = choice.get(stat)
    if picked is None:
        raise ValueError(f"no acquisition path for statistic index {stat}")
    if picked == _OBSERVE:
        out.add(stat)
        return
    for k in set(problem.entries[picked].inputs):
        _collect_plan(problem, k, computable, choice, out, visited)


def solve_greedy(problem: SelectionProblem) -> SelectionResult:
    """Round-based greedy selection (Section 5.3)."""
    observed: set[int] = set()
    computable = problem.closure(observed)
    rounds = 0
    while True:
        uncovered = sorted(set(problem.required) - computable)
        if not uncovered:
            break
        rounds += 1
        best, choice = _label_costs(problem, computable)
        candidates = [
            (best[stat], stat) for stat in uncovered if stat in best
        ]
        if not candidates:
            raise ValueError(
                "greedy selection stuck: some required statistic has no "
                "observable coverage"
            )
        _cost, stat = min(candidates)
        plan: set[int] = set()
        _collect_plan(problem, stat, computable, choice, plan, set())
        observed.update(plan)
        new_computable = problem.closure(observed)
        if new_computable == computable:  # pragma: no cover - safety net
            raise RuntimeError("greedy round made no progress")
        computable = new_computable
    return SelectionResult(
        problem=problem,
        observed_indexes=observed,
        method="greedy",
        iterations=max(rounds, 1),
    )
