"""Baselines: pay-as-you-go, passive monitoring, independence estimation."""

from repro.baselines.explore import ExploreExploitSession, ExplorationStep
from repro.baselines.independence import BaseProfile, IndependenceEstimator, profile_inputs
from repro.baselines.passive import PassiveCoverage, PassiveMonitor
from repro.baselines.payg import (
    BlockSchedule,
    CoverageScheduler,
    coverable_ses,
    min_executions,
    semantic_lower_bound,
    workflow_executions,
    workflow_lower_bound,
    workflow_schedule,
)

__all__ = [
    "BaseProfile", "BlockSchedule", "coverable_ses", "CoverageScheduler",
    "ExplorationStep", "ExploreExploitSession",
    "IndependenceEstimator", "min_executions", "PassiveCoverage",
    "PassiveMonitor", "profile_inputs", "semantic_lower_bound",
    "workflow_executions", "workflow_lower_bound", "workflow_schedule",
]
