"""The pay-as-you-go baseline (Section 7.3, comparing against [6]).

Pay-as-you-go observes only *trivial CSSs* -- plain cardinality counters at
the points of the executed plan -- and repeats the query with modified
plans until every SE has been covered by some execution.

This module provides:

- ``min_executions(n)`` -- the paper's lower bound for an n-way join:
  ``ceil((2^n - (n+2)) / (n-2))`` (Section 7.3; n <= 2 needs one run);
- ``semantic_lower_bound(block)`` -- the same bound computed from the SEs
  the optimizer actually generates (connected subsets only, FK-derivable
  SEs excluded), the "semantics can be exploited" refinement;
- :class:`CoverageScheduler` -- a greedy laminar-packing search for a
  sequence of plan re-orderings covering all SEs (an upper bound on the
  executions needed, like the hand-built schedules of Figure 12);
- ``workflow_schedule`` -- combines per-block schedules (blocks re-order
  independently, so executions run them in parallel).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import SubExpression
from repro.algebra.plans import JoinNode, Leaf, PlanTree, internal_ses
from repro.algebra.schema import Catalog


def min_executions(n: int) -> int:
    """Lower bound on executions to cover all SEs of an n-way join.

    ``2^n - (n + 2)`` SEs need covering (all joins except base relations
    and the final output); each plan covers ``n - 2`` of them.
    """
    if n <= 2:
        return 1
    return math.ceil((2**n - (n + 2)) / (n - 2))


def all_subset_ses(block: Block) -> list[SubExpression]:
    """Every proper subset of 2..n-1 inputs, cross products included.

    This is the semantics-free SE universe behind the paper's
    ``min_executions`` formula: 2^n - (n+2) SEs for an n-way join.
    """
    names = sorted(block.inputs)
    out: list[SubExpression] = []
    for r in range(2, len(names)):
        for combo in itertools.combinations(names, r):
            out.append(SubExpression(frozenset(combo)))
    return out


def coverable_ses(
    block: Block,
    catalog: Catalog | None = None,
    use_fk: bool = False,
    semantics: bool = True,
) -> list[SubExpression]:
    """The SEs a schedule must cover: proper joins of 2..n-1 inputs.

    ``semantics=False`` ignores the join graph entirely (all subsets, the
    paper's Figure 12 setting).  With ``semantics=True`` only connected
    subsets count, and ``use_fk`` additionally drops SEs whose cardinality
    is derivable from FK-lookup metadata ("semantics of the query ... can
    be exploited", Section 7.3).
    """
    if not semantics:
        return all_subset_ses(block)
    out = []
    for se in block.join_ses():
        if len(se) <= 1 or len(se) == block.n_way:
            continue
        if use_fk and catalog is not None and _fk_derivable(block, catalog, se):
            continue
        out.append(se)
    return out


def _fk_derivable(block: Block, catalog: Catalog, se: SubExpression) -> bool:
    for parent_name in se.relations:
        parent = block.inputs.get(parent_name)
        if parent is None or parent.steps:
            continue
        rest = se.relations - {parent_name}
        if not rest or not block.graph.is_connected(rest):
            continue
        crossing = block.graph.crossing_key(frozenset({parent_name}), rest)
        if len(crossing) != 1:
            continue
        attr = crossing[0]
        if any(
            catalog.is_lookup_join(block.inputs[c].base_name, parent.base_name, attr)
            for c in rest
            if c in block.inputs and attr in block.inputs[c].out_attrs
        ):
            return True
    return False


def semantic_lower_bound(block: Block, catalog: Catalog | None = None,
                         use_fk: bool = False) -> int:
    """Lower bound using the actual SE set (connected subsets only)."""
    need = len(coverable_ses(block, catalog, use_fk))
    per_plan = max(block.n_way - 2, 1)
    if need == 0:
        return 1
    return math.ceil(need / per_plan)


@dataclass
class BlockSchedule:
    """A coverage schedule for one block."""

    block: Block
    trees: list[PlanTree]
    covered: set[SubExpression] = field(default_factory=set)

    @property
    def executions(self) -> int:
        return max(len(self.trees), 1)


class CoverageScheduler:
    """Greedy laminar-packing schedule search.

    Each round selects a laminar family of still-uncovered SEs (mutually
    nested or disjoint connected subsets -- exactly the families a join
    tree can realize) and builds a plan whose internal nodes include them.
    """

    def __init__(
        self,
        block: Block,
        targets: list[SubExpression] | None = None,
        allow_cross_products: bool = False,
    ):
        self.block = block
        self.allow_cross_products = allow_cross_products
        self.targets = (
            list(targets)
            if targets is not None
            else coverable_ses(block, semantics=not allow_cross_products)
        )

    def schedule(self) -> BlockSchedule:
        uncovered = set(self.targets)
        trees: list[PlanTree] = []
        covered: set[SubExpression] = set()
        if self.block.n_way <= 2 or not uncovered:
            return BlockSchedule(
                self.block, [self.block.initial_tree], set(self.targets)
            )
        while uncovered:
            family = self._laminar_family(uncovered)
            tree = self._tree_with(family)
            gained = set(internal_ses(tree)) & uncovered
            if not gained:  # pragma: no cover - family always gains
                raise RuntimeError("coverage round made no progress")
            uncovered -= gained
            covered |= gained
            trees.append(tree)
        return BlockSchedule(self.block, trees, covered)

    # ------------------------------------------------------------------
    def _laminar_family(
        self, uncovered: set[SubExpression]
    ) -> list[SubExpression]:
        """Pick up to n-2 mutually laminar uncovered SEs (largest first)."""
        limit = self.block.n_way - 2
        family: list[SubExpression] = []
        for se in sorted(uncovered, key=lambda s: (-len(s), sorted(s.relations))):
            if len(family) >= limit:
                break
            if all(self._laminar(se, other) for other in family):
                family.append(se)
        return family

    @staticmethod
    def _laminar(a: SubExpression, b: SubExpression) -> bool:
        inter = a.relations & b.relations
        return not inter or a.relations <= b.relations or b.relations <= a.relations

    def _tree_with(self, family: list[SubExpression]) -> PlanTree:
        """Build a join tree whose internal SEs include the family."""
        return self._build(frozenset(self.block.inputs), family)

    def _build(
        self, names: frozenset[str], family: list[SubExpression]
    ) -> PlanTree:
        graph = self.block.graph
        inner = [se for se in family if se.relations < names]
        maximal = [
            se
            for se in inner
            if not any(
                se.relations < other.relations for other in inner
            )
        ]
        components: list[PlanTree] = []
        used: set[str] = set()
        for se in sorted(maximal, key=lambda s: (-len(s), sorted(s.relations))):
            if se.relations & used:
                continue  # overlapping maximal sets cannot both be nodes
            nested = [o for o in inner if o.relations < se.relations]
            components.append(self._build(se.relations, nested))
            used |= se.relations
        for name in sorted(names - used):
            components.append(Leaf(name))
        # merge components along crossing edges until one tree remains
        while len(components) > 1:
            merged = False
            for i in range(len(components)):
                for j in range(i + 1, len(components)):
                    key = graph.crossing_key(
                        components[i].se.relations, components[j].se.relations
                    )
                    if key:
                        node = JoinNode(components[i], components[j], key)
                        components = [
                            c
                            for k, c in enumerate(components)
                            if k not in (i, j)
                        ] + [node]
                        merged = True
                        break
                if merged:
                    break
            if merged:
                continue
            if self.allow_cross_products:
                # semantics-free mode: a cartesian product (empty key)
                node = JoinNode(components[0], components[1], ())
                components = components[2:] + [node]
            else:  # pragma: no cover - connected graphs always merge
                raise RuntimeError("disconnected components in coverage build")
        return components[0]


def workflow_schedule(
    analysis: BlockAnalysis, use_fk: bool = False, semantics: bool = True
) -> dict[str, BlockSchedule]:
    """Coverage schedules for every block of a workflow."""
    catalog = analysis.workflow.catalog
    out: dict[str, BlockSchedule] = {}
    for block in analysis.blocks:
        targets = coverable_ses(block, catalog, use_fk, semantics=semantics)
        scheduler = CoverageScheduler(
            block, targets, allow_cross_products=not semantics
        )
        out[block.name] = scheduler.schedule()
    return out


def workflow_executions(
    analysis: BlockAnalysis, use_fk: bool = False, semantics: bool = True
) -> int:
    """Executions needed by pay-as-you-go for the whole workflow.

    Blocks re-order independently, so one execution advances every block's
    schedule at once; the workflow needs the max over blocks.
    ``semantics=False`` is the paper's Figure 12 setting (all 2^n subsets
    must be covered, cross-product plans allowed).
    """
    schedules = workflow_schedule(analysis, use_fk, semantics=semantics)
    return max((s.executions for s in schedules.values()), default=1)


def workflow_lower_bound(analysis: BlockAnalysis) -> int:
    """The paper's formula applied to the largest block."""
    return max(
        (min_executions(block.n_way) for block in analysis.blocks), default=1
    )
