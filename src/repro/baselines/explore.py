"""Exploration/exploitation baseline (XPLUS-style, [8]).

Section 2: *"exploring the cardinalities of all the sub-expressions might
be an overkill and to strike a balance, XPLUS introduces experts which
control the trade-off between exploration of the search space (to determine
cardinalities of different sub-expressions) and exploitation of
cardinalities of the known sub-expressions."*

This baseline learns only from trivial observations (plan-point
cardinalities, like pay-as-you-go) but chooses each run's plan adaptively:

- unknown SE sizes are estimated with the independence assumption over the
  already-known base cardinalities;
- a run *explores* when some plan still reveals unknown SEs at an estimated
  cost within ``alpha`` times the best-known plan's cost (bounded regret);
- otherwise it *exploits* the estimated-cheapest plan.

Compared in the benches against this paper's approach, which needs exactly
one instrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, SubExpression
from repro.algebra.plans import PlanTree, internal_ses
from repro.engine.executor import Executor, WorkflowRun
from repro.engine.table import Table

#: cap on enumerated candidate plans per block (8-way joins explode)
MAX_CANDIDATE_TREES = 512


@dataclass
class ExplorationStep:
    """One run's decision and outcome."""

    index: int
    trees: dict[str, PlanTree]
    explored: bool
    executed_cost: float
    newly_covered: int


@dataclass
class ExploreExploitSession:
    """Adaptive plan selection from passively observed cardinalities."""

    analysis: BlockAnalysis
    alpha: float = 1.5
    known: dict[AnySE, float] = field(default_factory=dict)
    history: list[ExplorationStep] = field(default_factory=list)
    _candidates: dict[str, list[PlanTree]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for block in self.analysis.blocks:
            if block.pinned or block.n_way <= 2:
                self._candidates[block.name] = [block.initial_tree]
            else:
                self._candidates[block.name] = block.graph.enumerate_trees(
                    limit=MAX_CANDIDATE_TREES
                )

    # ------------------------------------------------------------------
    # estimation from what is known so far
    # ------------------------------------------------------------------
    def estimate(self, block: Block, se: SubExpression) -> float:
        if se in self.known:
            return self.known[se]
        if len(se) == 1:
            return self.known.get(se, 1000.0)
        # independence over known (or default) base sizes
        size = 1.0
        for name in se.relations:
            size *= self.estimate(block, SubExpression.of(name))
        catalog = self.analysis.workflow.catalog
        for edge in block.graph.edges:
            if edge.u in se.relations and edge.v in se.relations:
                try:
                    size /= float(catalog.domain_size(edge.attr))
                except Exception:
                    size /= 100.0
        return max(size, 1.0)

    def plan_cost(self, block: Block, tree: PlanTree) -> float:
        return sum(self.estimate(block, se) for se in internal_ses(tree))

    def unknown_ses(self, tree: PlanTree) -> int:
        return sum(1 for se in internal_ses(tree) if se not in self.known)

    # ------------------------------------------------------------------
    def choose_trees(self) -> tuple[dict[str, PlanTree], bool]:
        """Pick this run's plans; returns (trees, explored?)."""
        trees: dict[str, PlanTree] = {}
        explored = False
        for block in self.analysis.blocks:
            candidates = self._candidates[block.name]
            best_cost = min(self.plan_cost(block, t) for t in candidates)
            budget = self.alpha * best_cost + 1.0
            explorers = [
                (self.plan_cost(block, t), -self.unknown_ses(t), i, t)
                for i, t in enumerate(candidates)
                if self.unknown_ses(t) > 0
                and self.plan_cost(block, t) <= budget
            ]
            if explorers:
                # most unknowns revealed, cheapest first among ties
                _cost, _neg, _i, tree = min(
                    explorers, key=lambda e: (e[1], e[0], e[2])
                )
                trees[block.name] = tree
                explored = True
            else:
                _cost, _i, tree = min(
                    (self.plan_cost(block, t), i, t)
                    for i, t in enumerate(candidates)
                )
                trees[block.name] = tree
        return trees, explored

    def run(self, sources: dict[str, Table]) -> ExplorationStep:
        trees, explored = self.choose_trees()
        run: WorkflowRun = Executor(self.analysis).run(sources, trees=trees)
        before = len(self.known)
        self.known.update(run.se_sizes)
        executed_cost = 0.0
        for block in self.analysis.blocks:
            tree = trees.get(block.name, block.initial_tree)
            executed_cost += sum(
                run.se_sizes.get(se, 0) for se in internal_ses(tree)
            )
        step = ExplorationStep(
            index=len(self.history),
            trees=trees,
            explored=explored,
            executed_cost=executed_cost,
            newly_covered=len(self.known) - before,
        )
        self.history.append(step)
        return step

    # ------------------------------------------------------------------
    @property
    def fully_explored(self) -> bool:
        for block in self.analysis.blocks:
            for se in block.join_ses():
                if len(se) > 1 and se not in self.known:
                    return False
        return True

    def cumulative_cost(self) -> float:
        return sum(step.executed_cost for step in self.history)
