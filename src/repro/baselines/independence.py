"""Textbook independence-assumption estimation (no learned statistics).

The strawman every optimizer falls back to when statistics are missing
(Section 1): assume uniform value distributions and attribute independence,
estimate ``|T1 join_a T2| = |T1| * |T2| / max(|a_T1|, |a_T2|)`` and chain
multiplicatively.  Used by the accuracy experiments to quantify how far
wrong the no-statistics path goes on skewed (Zipfian) data, which motivates
the whole framework.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE, SubExpression
from repro.engine.ground_truth import block_input_tables
from repro.engine.table import Table


@dataclass
class BaseProfile:
    """The only inputs independence estimation consumes: base cardinality
    and per-attribute distinct counts of each block input."""

    cardinality: float
    distinct: dict[str, int]


def profile_inputs(
    analysis: BlockAnalysis, env: dict[str, Table], strict: bool = True
) -> dict[str, BaseProfile]:
    """Profile every block input's processed table.

    With ``strict=False``, blocks whose inputs are missing from ``env``
    are skipped instead of raising -- the degraded-statistics path
    (:mod:`repro.framework.recovery`) profiles whatever a partially failed
    run did manage to load.
    """
    profiles: dict[str, BaseProfile] = {}
    for block in analysis.blocks:
        try:
            tables = block_input_tables(block, env)
        except KeyError:
            if strict:
                raise
            continue
        for name, table in tables.items():
            attrs = block.inputs[name].out_attrs
            profiles[name] = BaseProfile(
                cardinality=table.num_rows,
                distinct={
                    a: max(table.distinct_count((a,)), 1)
                    for a in attrs
                    if table.has_column(a)
                },
            )
    return profiles


class IndependenceEstimator:
    """Selinger-style uniform/independent cardinality estimates."""

    def __init__(self, analysis: BlockAnalysis, profiles: dict[str, BaseProfile]):
        self.analysis = analysis
        self.profiles = profiles

    def cardinality(self, se: AnySE) -> float:
        if not isinstance(se, SubExpression):
            raise KeyError(f"independence baseline only covers join SEs: {se!r}")
        block = self._block_for(se)
        if len(se) == 1:
            return self.profiles[se.base_name].cardinality
        # multiply base cardinalities, divide by max distinct per join edge
        size = 1.0
        for name in se.relations:
            size *= self.profiles[name].cardinality
        for edge in block.graph.edges:
            if edge.u in se.relations and edge.v in se.relations:
                du = self.profiles[edge.u].distinct.get(edge.attr, 1)
                dv = self.profiles[edge.v].distinct.get(edge.attr, 1)
                size /= max(du, dv)
        return size

    def all_cardinalities(self) -> dict[AnySE, float]:
        out: dict[AnySE, float] = {}
        for block in self.analysis.blocks:
            for se in block.join_ses():
                try:
                    out[se] = self.cardinality(se)
                except KeyError:  # pragma: no cover - inputs always profiled
                    pass
        return out

    def _block_for(self, se: SubExpression) -> Block:
        for block in self.analysis.blocks:
            if se.relations <= set(block.inputs):
                return block
        raise KeyError(f"no block contains {se!r}")
