"""Passive monitoring baseline (LEO-style, [20]).

Passive monitoring observes the actual cardinalities at the points of the
*executed* plan only -- "a quick, easy-to-implement and low-overhead method
... to get the actual cardinalities of SEs which are part of the plan being
executed" (Section 7.3).  It never alters the plan, so SEs outside the
current plan stay unknown and the optimizer cannot cost re-orderings that
use them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.blocks import BlockAnalysis
from repro.algebra.expressions import AnySE, SubExpression
from repro.engine.executor import WorkflowRun


@dataclass
class PassiveCoverage:
    """What one passive run revealed vs what the optimizer needs."""

    known: dict[AnySE, int]
    needed: list[SubExpression]

    @property
    def covered(self) -> list[SubExpression]:
        return [se for se in self.needed if se in self.known]

    @property
    def uncovered(self) -> list[SubExpression]:
        return [se for se in self.needed if se not in self.known]

    @property
    def fraction(self) -> float:
        if not self.needed:
            return 1.0
        return len(self.covered) / len(self.needed)


class PassiveMonitor:
    """Accumulates plan-point cardinalities across runs."""

    def __init__(self, analysis: BlockAnalysis):
        self.analysis = analysis
        self.known: dict[AnySE, int] = {}

    def absorb(self, run: WorkflowRun) -> None:
        """Record every cardinality the executed plan exposed."""
        self.known.update(run.se_sizes)

    def coverage(self) -> PassiveCoverage:
        needed: list[SubExpression] = []
        for block in self.analysis.blocks:
            needed.extend(block.universe())
        return PassiveCoverage(known=dict(self.known), needed=needed)

    def cardinality(self, se: AnySE) -> int | None:
        return self.known.get(se)
