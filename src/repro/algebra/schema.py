"""Schema metadata: attributes, domains, relations, keys.

The paper (Section 3.1) works with a handful of schema-level facts:

- ``||a||`` -- the *domain size* of an attribute over all relations.  This is
  the conservative memory bound for a histogram bucket count (Section 5.4).
- ``|a_T|`` -- the number of distinct values of ``a`` actually present in a
  relation ``T`` (used by the group-by rule G1).
- join keys -- the paper writes ``J_ij`` for the join attribute between
  ``T_i`` and ``T_j``.  We model join keys as *shared attribute names*:
  relations that can join on a key both carry a column with that attribute
  name.  This makes the identity ``H_{T_1}^{J_12} = H_{T_1}^{J_13}`` (when
  ``J_12 = J_13``) fall out naturally, which is exactly the cost-amortization
  effect exploited in Section 5.
- foreign keys -- metadata that lets the optimizer treat a join as a lookup
  (``|T_1 join T_2| = |T_1|``) and prune the plan space (Section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SchemaError(ValueError):
    """Raised for inconsistent schema definitions."""


@dataclass(frozen=True)
class Attribute:
    """A named attribute with a global domain size.

    ``domain_size`` is ``||a||`` from the paper: the number of possible
    distinct values of the attribute over all relations.  It is the
    conservative estimate used for histogram memory costing.
    """

    name: str
    domain_size: int = 1024

    def __post_init__(self) -> None:
        if self.domain_size <= 0:
            raise SchemaError(
                f"attribute {self.name!r} must have a positive domain size"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attribute({self.name!r}, ||{self.name}||={self.domain_size})"


@dataclass(frozen=True)
class ForeignKey:
    """Foreign key: ``child.attr`` references ``parent.attr``.

    A join between ``child`` and ``parent`` on ``attr`` is then a *lookup*:
    every child row matches exactly one parent row, so the join cardinality
    equals the child cardinality.  The optimizer uses this to prune SEs
    (Section 3.2.2) and the baseline uses it to shrink coverage requirements.
    """

    child: str
    parent: str
    attr: str


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with an ordered set of attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in relation {self.name!r}")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")


@dataclass
class Catalog:
    """All schema-level metadata known to the framework.

    The catalog is what an ETL engine would extract from the workflow design
    document: relation shapes, global attribute domains and key metadata.  It
    deliberately carries *no data statistics* -- the whole point of the paper
    is that those must be observed.
    """

    relations: dict[str, RelationSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    _attributes: dict[str, Attribute] = field(default_factory=dict)

    def add_attribute(self, name: str, domain_size: int) -> Attribute:
        """Register (or fetch) a global attribute definition."""
        existing = self._attributes.get(name)
        if existing is not None:
            if existing.domain_size != domain_size:
                raise SchemaError(
                    f"attribute {name!r} registered twice with different "
                    f"domain sizes ({existing.domain_size} vs {domain_size})"
                )
            return existing
        attr = Attribute(name, domain_size)
        self._attributes[name] = attr
        return attr

    def add_relation(self, name: str, attrs: dict[str, int]) -> RelationSchema:
        """Register a relation given ``{attribute_name: domain_size}``."""
        if name in self.relations:
            raise SchemaError(f"relation {name!r} already registered")
        attributes = tuple(
            self.add_attribute(attr_name, size) for attr_name, size in attrs.items()
        )
        rel = RelationSchema(name, attributes)
        self.relations[name] = rel
        return rel

    def add_foreign_key(self, child: str, parent: str, attr: str) -> ForeignKey:
        for rel_name in (child, parent):
            if rel_name not in self.relations:
                raise SchemaError(f"unknown relation {rel_name!r} in foreign key")
            if not self.relations[rel_name].has_attribute(attr):
                raise SchemaError(
                    f"relation {rel_name!r} has no attribute {attr!r} for foreign key"
                )
        fk = ForeignKey(child, parent, attr)
        self.foreign_keys.append(fk)
        return fk

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def domain_size(self, attr: str) -> int:
        """``||a||`` -- the domain size of an attribute over all relations."""
        return self.attribute(attr).domain_size

    def is_lookup_join(self, child: str, parent: str, attr: str) -> bool:
        """True if joining ``child`` to ``parent`` on ``attr`` is a FK lookup."""
        return any(
            fk.child == child and fk.parent == parent and fk.attr == attr
            for fk in self.foreign_keys
        )

    def derive_attribute(self, base: str, transform: str) -> Attribute:
        """Register a derived attribute produced by a UDF on ``base``.

        The derived attribute's domain is conservatively the same size as the
        base attribute's domain (a UDF can at most preserve distinctness).
        """
        base_attr = self.attribute(base)
        name = f"{transform}({base})"
        return self.add_attribute(name, base_attr.domain_size)
