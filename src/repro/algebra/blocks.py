"""Optimizable-block analysis (Section 3.2.1).

The workflow DAG is cut into *optimizable blocks* -- maximal regions inside
which joins may be re-ordered.  Boundaries appear at:

- **materialized intermediate results**: :class:`Materialize` nodes, targets,
  and joins whose reject link is materialized (re-ordering would change the
  reject contents);
- **transformation operators** whose result is derived from a join of
  multiple relations *and* later used as a join key (the Figure 3 ``B_2``
  case);
- **aggregate UDF operators** and group-bys, which are blocking;
- any node whose output is consumed by more than one downstream operator
  (a shared intermediate result is implicitly materialized).

Inside a block, unary operators are *anchored*: the analysis pushes filters
(and single-origin transforms not touching join keys) down to the block
input whose attribute they reference.  This is ordinary predicate push-down
-- a canonicalization every cost-based optimizer performs before join
enumeration -- and it is what makes each block input a *stage chain*
``raw -> filter -> transform -> ...`` whose statistics the rule set of
Section 4 (S1/S2, P1/P2, U1/U2) can relate to raw-source statistics.

Transformation operators that genuinely depend on several inputs stay
*floating* above their anchor SE; if a later join uses their result as a
key, the cluster built so far is sealed into a block exactly as the paper
prescribes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.algebra.enumeration import JoinEdge, JoinGraph
from repro.algebra.expressions import RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Node,
    Project,
    Source,
    Target,
    Transform,
    Workflow,
    WorkflowError,
)
from repro.algebra.plans import JoinNode, Leaf, PlanTree, tree_ses


@dataclass(frozen=True)
class Step:
    """One anchored unary operator in a stage chain."""

    kind: str  # "filter" | "transform" | "project"
    node_id: int
    attrs: tuple[str, ...]
    result_attr: Optional[str]
    payload: str  # predicate / udf name, or "" for project
    out_attrs: tuple[str, ...]
    node: Node = field(compare=False, hash=False, repr=False, default=None)

    @property
    def is_filter(self) -> bool:
        return self.kind == "filter"

    @property
    def is_transform(self) -> bool:
        return self.kind == "transform"


@dataclass(frozen=True)
class UpstreamLink:
    """Provenance of a block input that is another block's (post-boundary)
    output; enables the cross-block rules (G1/G2, pass-through)."""

    block_name: str
    kind: str  # "aggregate" | "aggregate_udf" | "materialize" | "shared" | "output"
    output_se: SubExpression
    output_attrs: tuple[str, ...]
    group_attrs: tuple[str, ...] = ()


class _InputHandle:
    """Mutable in-progress block input; named at block finalize time."""

    def __init__(
        self,
        base_name: str,
        base_node: Node,
        steps: tuple[Step, ...],
        upstream: Optional[UpstreamLink],
    ):
        self.base_name = base_name
        self.base_node = base_node
        self.steps = list(steps)
        self.upstream = upstream

    @property
    def out_attrs(self) -> tuple[str, ...]:
        if self.steps:
            return self.steps[-1].out_attrs
        return tuple(self.base_node.output_attrs())

    @property
    def filtered(self) -> bool:
        return any(s.is_filter for s in self.steps)

    def final_name(self) -> str:
        if not self.steps:
            return self.base_name
        return f"{self.base_name}@{self.steps[-1].node_id}"

    def copy(self) -> "_InputHandle":
        return _InputHandle(
            self.base_name, self.base_node, tuple(self.steps), self.upstream
        )


@dataclass(frozen=True)
class BlockInput:
    """A finalized block input: a base feed plus its anchored stage chain."""

    name: str
    base_name: str
    steps: tuple[Step, ...]
    out_attrs: tuple[str, ...]
    raw_attrs: tuple[str, ...] = ()
    upstream: Optional[UpstreamLink] = None

    @property
    def filtered(self) -> bool:
        return any(s.is_filter for s in self.steps)

    def stage_names(self) -> list[str]:
        """Names of every stage, raw feed first, final (= ``name``) last."""
        names = [self.base_name]
        for step in self.steps[:-1]:
            names.append(f"{self.base_name}@{step.node_id}")
        if self.steps:
            names.append(self.name)
        return names

    def stage_ses(self) -> list[SubExpression]:
        return [SubExpression.of(n) for n in self.stage_names()]

    def stage_attrs(self, index: int) -> tuple[str, ...]:
        """Output attributes available at stage ``index`` (0 = raw)."""
        if index == 0:
            return self.raw_attrs if self.raw_attrs else self.out_attrs
        return self.steps[index - 1].out_attrs


@dataclass(frozen=True)
class FloatingOp:
    """A transform/project that could not be anchored to a single input.

    ``anchor`` is the smallest input set whose join the op must follow.
    Floating ops are cardinality-neutral (rules U1/P1), so join enumeration
    ignores them; the engine applies them once the anchor is joined.
    """

    step: Step
    anchor: frozenset[str]


@dataclass
class Block:
    """One optimizable block: inputs, join graph, and the initial plan."""

    name: str
    inputs: dict[str, BlockInput]
    graph: JoinGraph
    initial_tree: PlanTree
    floating: tuple[FloatingOp, ...] = ()
    post_steps: tuple[Step, ...] = ()
    materialized_rejects: tuple[RejectSE, ...] = ()
    pinned: bool = False

    # ------------------------------------------------------------------
    @property
    def output_name(self) -> str:
        return f"{self.name}.out"

    @property
    def join_se(self) -> SubExpression:
        """The SE of the full join (before post-steps)."""
        return SubExpression(frozenset(self.inputs))

    def post_stage_names(self) -> list[str]:
        return [f"{self.name}:post@{s.node_id}" for s in self.post_steps]

    def post_stage_ses(self) -> list[SubExpression]:
        return [SubExpression.of(n) for n in self.post_stage_names()]

    @property
    def output_se(self) -> SubExpression:
        stages = self.post_stage_ses()
        return stages[-1] if stages else self.join_se

    @property
    def output_attrs(self) -> tuple[str, ...]:
        if self.post_steps:
            return self.post_steps[-1].out_attrs
        attrs: list[str] = []
        for inp in self.inputs.values():
            for a in inp.out_attrs:
                if a not in attrs:
                    attrs.append(a)
        for op in self.floating:
            for a in op.step.out_attrs:
                if a not in attrs:
                    attrs.append(a)
        return tuple(sorted(attrs))

    # ------------------------------------------------------------------
    def join_ses(self) -> list[SubExpression]:
        """ℰ restricted to joins: all connected input subsets."""
        return self.graph.enumerate_ses()

    def stage_ses(self) -> list[SubExpression]:
        """SEs of every input stage chain plus output post stages."""
        out: list[SubExpression] = []
        for name in sorted(self.inputs):
            out.extend(self.inputs[name].stage_ses())
        out.extend(self.post_stage_ses())
        return out

    def universe(self) -> list[SubExpression]:
        """Every SE whose cardinality the optimizer must be able to cost."""
        seen: set[SubExpression] = set()
        ordered: list[SubExpression] = []
        for se in self.stage_ses() + self.join_ses():
            if se not in seen:
                seen.add(se)
                ordered.append(se)
        return ordered

    def observable_ses(self) -> set[SubExpression]:
        """SEs produced by the *initial* plan (instrumentable points)."""
        out = set(self.stage_ses())
        out.update(tree_ses(self.initial_tree))
        return out

    def se_attrs(self, se: SubExpression) -> tuple[str, ...]:
        """Attributes available on an SE's rows."""
        post_names = self.post_stage_names()
        if se.is_base and se.base_name in post_names:
            idx = post_names.index(se.base_name)
            return self.post_steps[idx].out_attrs
        attrs: set[str] = set()
        for rel in se.relations:
            inp = self.inputs.get(rel)
            if inp is not None:
                attrs.update(inp.out_attrs)
            else:
                attrs.update(self._stage_attrs_by_name(rel))
        for op in self.floating:
            if op.anchor <= se.relations:
                attrs.update(op.step.out_attrs)
        return tuple(sorted(attrs))

    def _stage_attrs_by_name(self, name: str) -> tuple[str, ...]:
        for inp in self.inputs.values():
            stage_names = inp.stage_names()
            if name in stage_names:
                return inp.stage_attrs(stage_names.index(name))
        raise WorkflowError(f"unknown SE member {name!r} in block {self.name}")

    def input_for_attr(self, attr: str) -> list[str]:
        """Names of inputs carrying ``attr`` (join-key owners)."""
        return [n for n, inp in sorted(self.inputs.items()) if attr in inp.out_attrs]

    @property
    def n_way(self) -> int:
        return len(self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block({self.name}, inputs={sorted(self.inputs)}, "
            f"joins={len(self.graph.edges)}, pinned={self.pinned})"
        )


@dataclass(frozen=True)
class BoundaryOp:
    """A blocking/materializing operator between blocks."""

    node: Node
    input_name: str
    output_name: str


@dataclass
class BlockAnalysis:
    """The full decomposition of a workflow into blocks and boundaries."""

    workflow: Workflow
    blocks: list[Block]
    boundaries: list[BoundaryOp]
    targets: dict[str, str] = field(default_factory=dict)  # target name -> env name

    def block(self, name: str) -> Block:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(name)

    def block_of_output(self, env_name: str) -> Optional[Block]:
        for blk in self.blocks:
            if blk.output_name == env_name:
                return blk
        return None

    def max_join_arity(self) -> int:
        return max((blk.n_way for blk in self.blocks), default=0)

    def describe(self) -> str:
        lines = [f"Analysis of {self.workflow.name!r}: {len(self.blocks)} block(s)"]
        for blk in self.blocks:
            lines.append(
                f"  {blk.name}: {blk.n_way}-way"
                f" inputs={sorted(blk.inputs)} pinned={blk.pinned}"
                f" plan={blk.initial_tree!r}"
            )
        for b in self.boundaries:
            lines.append(f"  boundary {b.node.label}: {b.input_name} -> {b.output_name}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# analysis implementation
# ---------------------------------------------------------------------------


class _TLeaf:
    def __init__(self, handle: _InputHandle):
        self.handle = handle


class _TJoin:
    def __init__(self, left, right, attrs: tuple[str, ...]):
        self.left = left
        self.right = right
        self.attrs = tuple(attrs)


class _Cluster:
    """An in-progress optimizable block."""

    def __init__(self):
        self.handles: list[_InputHandle] = []
        self.edges: list[tuple[_InputHandle, _InputHandle, str]] = []
        self.tree = None  # _TLeaf / _TJoin
        self.floating: list[tuple[Step, frozenset]] = []  # (step, anchor handles ids)
        self.rejects: list[tuple] = []  # (side_tree, attr, other_tree)

    def out_attrs(self) -> tuple[str, ...]:
        attrs: list[str] = []
        for h in self.handles:
            for a in h.out_attrs:
                if a not in attrs:
                    attrs.append(a)
        for step, _anchor in self.floating:
            for a in step.out_attrs:
                if a not in attrs:
                    attrs.append(a)
        return tuple(attrs)

    def owner_of(self, attr: str) -> Optional[_InputHandle]:
        owners = [h for h in self.handles if attr in h.out_attrs]
        if not owners:
            return None
        owners.sort(key=lambda h: h.base_name)
        return owners[0]

    def join_key_attrs(self) -> set[str]:
        return {attr for _u, _v, attr in self.edges}

    def floating_result_attrs(self) -> set[str]:
        return {
            step.result_attr
            for step, _ in self.floating
            if step.is_transform and step.result_attr
        }


_Feed = Union[_InputHandle, _Cluster]


class _Analyzer:
    def __init__(self, workflow: Workflow):
        self.workflow = workflow
        self.blocks: list[Block] = []
        self.boundaries: list[BoundaryOp] = []
        self.targets: dict[str, str] = {}
        self._feeds: dict[int, _Feed] = {}
        self._counter = itertools.count(1)
        self._consumers = {
            nid: len(nodes) for nid, nodes in workflow.consumers().items()
        }
        # workflow-local node ids: identical workflows analyze to identical
        # stage / boundary names regardless of global construction order
        self._local_ids = {
            node.node_id: i for i, node in enumerate(workflow.nodes())
        }

    # -- feed helpers ---------------------------------------------------
    def _next_block_name(self) -> str:
        return f"B{next(self._counter)}"

    def _leaf_cluster(self, handle: _InputHandle) -> _Cluster:
        # copy the handle: source feeds are memoized and may be shared by
        # several blocks; push-down must not leak across them
        handle = handle.copy()
        cluster = _Cluster()
        cluster.handles.append(handle)
        cluster.tree = _TLeaf(handle)
        return cluster

    def _finalize(self, feed: _Feed) -> tuple[Block, _InputHandle]:
        """Seal a feed into a Block; return the block and its output handle."""
        cluster = feed if isinstance(feed, _Cluster) else self._leaf_cluster(feed)
        name = self._next_block_name()

        # assign final names
        names: dict[int, str] = {}
        used: set[str] = set()
        for handle in cluster.handles:
            candidate = handle.final_name()
            while candidate in used:
                candidate = candidate + "'"
            used.add(candidate)
            names[id(handle)] = candidate

        inputs = {
            names[id(h)]: BlockInput(
                name=names[id(h)],
                base_name=h.base_name,
                steps=tuple(h.steps),
                out_attrs=tuple(h.out_attrs),
                raw_attrs=tuple(h.base_node.output_attrs()),
                upstream=h.upstream,
            )
            for h in cluster.handles
        }

        def to_tree(t) -> PlanTree:
            if isinstance(t, _TLeaf):
                return Leaf(names[id(t.handle)])
            return JoinNode(to_tree(t.left), to_tree(t.right), t.attrs)

        tree = to_tree(cluster.tree)
        edges = {
            JoinEdge(names[id(u)], names[id(v)], attr)
            for u, v, attr in cluster.edges
        }
        # Equi-join transitive closure: the *declared* join predicates induce
        # equivalence classes of (input, attr) columns; inputs inside one
        # class can join pairwise.  Same-named columns that no predicate
        # equates (e.g. two unrelated status_id foreign keys) stay apart.
        for attr in {e.attr for e in edges}:
            adjacency: dict[str, set[str]] = {}
            for e in edges:
                if e.attr != attr:
                    continue
                adjacency.setdefault(e.u, set()).add(e.v)
                adjacency.setdefault(e.v, set()).add(e.u)
            seen: set[str] = set()
            for start in sorted(adjacency):
                if start in seen:
                    continue
                component = {start}
                frontier = [start]
                while frontier:
                    for nxt in adjacency[frontier.pop()] - component:
                        component.add(nxt)
                        frontier.append(nxt)
                seen |= component
                for u, v in itertools.combinations(sorted(component), 2):
                    edges.add(JoinEdge(u, v, attr))
        graph = JoinGraph(sorted(inputs), sorted(edges, key=lambda e: (e.u, e.v, e.attr)))

        floating = tuple(
            FloatingOp(step, frozenset(names[hid] for hid in anchor))
            for step, anchor in cluster.floating
        )
        rejects = tuple(
            RejectSE(to_tree(side).se, attr, to_tree(other).se)
            for side, attr, other in cluster.rejects
        )

        block = Block(
            name=name,
            inputs=inputs,
            graph=graph,
            initial_tree=tree,
            floating=floating,
            materialized_rejects=rejects,
            pinned=bool(rejects),
        )
        self.blocks.append(block)
        out_handle = _InputHandle(
            base_name=block.output_name,
            base_node=_BlockOutputNode(block),
            steps=(),
            upstream=UpstreamLink(
                block_name=block.name,
                kind="output",
                output_se=block.output_se,
                output_attrs=block.output_attrs,
            ),
        )
        return block, out_handle

    # -- node visitors ----------------------------------------------------
    def feed(self, node: Node) -> _Feed:
        if node.node_id in self._feeds:
            return self._feeds[node.node_id]
        feed = self._compute_feed(node)
        # shared intermediate results are implicit materialization points
        if self._consumers.get(node.node_id, 0) > 1 and not isinstance(node, Source):
            block, handle = self._finalize(feed)
            feed = handle
        self._feeds[node.node_id] = feed
        return feed

    def _compute_feed(self, node: Node) -> _Feed:
        if isinstance(node, Source):
            return _InputHandle(node.name, node, (), None)
        if isinstance(node, (Filter, Transform, Project)):
            return self._unary(node)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, (Aggregate, AggregateUDF, Materialize, Target)):
            return self._boundary(node)
        raise WorkflowError(f"unknown node type {type(node).__name__}")

    def _make_step(self, node: Node) -> Step:
        local_id = self._local_ids[node.node_id]
        if isinstance(node, Filter):
            return Step(
                "filter", local_id, (node.attr,), None,
                node.predicate.name, tuple(node.output_attrs()), node,
            )
        if isinstance(node, Transform):
            return Step(
                "transform", local_id, node.input_attrs, node.result_attr,
                node.udf.name, tuple(node.output_attrs()), node,
            )
        if isinstance(node, Project):
            return Step(
                "project", local_id, tuple(node.attrs), None,
                "", tuple(node.output_attrs()), node,
            )
        raise WorkflowError(f"not a unary step: {node.label}")

    def _unary(self, node: Union[Filter, Transform, Project]) -> _Feed:
        upstream = self.feed(node.inputs[0])
        step = self._make_step(node)

        if isinstance(upstream, _InputHandle):
            return _InputHandle(
                upstream.base_name,
                upstream.base_node,
                tuple(upstream.steps) + (step,),
                upstream.upstream,
            )

        cluster = upstream
        if isinstance(node, Filter):
            owner = cluster.owner_of(node.attr)
            if owner is not None and not cluster.floating:
                # predicate push-down onto the owning input
                owner.steps.append(self._rescoped_step(step, owner))
                return cluster
            cluster.floating.append((step, self._anchor(cluster, step.attrs)))
            return cluster
        if isinstance(node, Transform):
            owners = {cluster.owner_of(a) for a in node.input_attrs}
            owners.discard(None)
            single = len(owners) == 1
            owner = next(iter(owners)) if single else None
            touches_join_key = bool(set(node.input_attrs) & cluster.join_key_attrs())
            if single and not touches_join_key and not cluster.floating:
                owner.steps.append(self._rescoped_step(step, owner))
                return cluster
            cluster.floating.append((step, self._anchor(cluster, step.attrs)))
            return cluster
        # Project over a cluster: cardinality-neutral, keep floating
        cluster.floating.append((step, self._anchor(cluster, step.attrs)))
        return cluster

    def _rescoped_step(self, step: Step, owner: _InputHandle) -> Step:
        """Re-scope a pushed-down step's output attrs to the owning input."""
        base = list(owner.out_attrs)
        if step.is_transform and step.result_attr and step.result_attr not in base:
            base.append(step.result_attr)
        if step.kind == "project":
            base = [a for a in base if a in step.attrs]
        return replace(step, out_attrs=tuple(base))

    def _anchor(self, cluster: _Cluster, attrs: tuple[str, ...]) -> frozenset:
        anchor: set[int] = set()
        for attr in attrs:
            for h in cluster.handles:
                if attr in h.out_attrs:
                    anchor.add(id(h))
                    break
        if not anchor:
            anchor = {id(h) for h in cluster.handles}
        return frozenset(anchor)

    def _join(self, node: Join) -> _Feed:
        left = self.feed(node.left)
        right = self.feed(node.right)

        key_attrs = tuple(node.key_attrs)
        left = self._seal_if_key_derived(left, key_attrs)
        right = self._seal_if_key_derived(right, key_attrs)
        rej_key = key_attrs[0] if len(key_attrs) == 1 else key_attrs

        if node.has_materialized_reject:
            # Pinned join: seal both sides, build a 2-input block.
            left_h = (
                left.copy()
                if isinstance(left, _InputHandle)
                else self._finalize(left)[1]
            )
            right_h = (
                right.copy()
                if isinstance(right, _InputHandle)
                else self._finalize(right)[1]
            )
            cluster = _Cluster()
            cluster.handles = [left_h, right_h]
            cluster.edges = [
                (left_h, right_h, attr) for attr in key_attrs
            ]
            lt, rt = _TLeaf(left_h), _TLeaf(right_h)
            cluster.tree = _TJoin(lt, rt, key_attrs)
            if node.reject_left:
                cluster.rejects.append((lt, rej_key, rt))
            if node.reject_right:
                cluster.rejects.append((rt, rej_key, lt))
            _block, handle = self._finalize(cluster)
            return handle

        left_c = left if isinstance(left, _Cluster) else self._leaf_cluster(left)
        right_c = right if isinstance(right, _Cluster) else self._leaf_cluster(right)

        merged = _Cluster()
        merged.handles = left_c.handles + right_c.handles
        merged.edges = left_c.edges + right_c.edges
        for attr in key_attrs:
            left_owner = left_c.owner_of(attr)
            right_owner = right_c.owner_of(attr)
            if left_owner is None or right_owner is None:
                raise WorkflowError(
                    f"join attribute {attr!r} is not anchored to any input"
                )
            merged.edges.append((left_owner, right_owner, attr))
        merged.floating = left_c.floating + right_c.floating
        merged.rejects = left_c.rejects + right_c.rejects
        merged.tree = _TJoin(left_c.tree, right_c.tree, key_attrs)
        return merged

    def _seal_if_key_derived(
        self, feed: _Feed, key_attrs: tuple[str, ...]
    ) -> _Feed:
        """Seal a cluster whose floating transform derives a join key
        (Section 3.2.1, the Figure 3 ``B_2`` boundary)."""
        if isinstance(feed, _Cluster) and (
            set(key_attrs) & feed.floating_result_attrs()
        ):
            # floating ops become post-steps of the sealed block
            post = tuple(step for step, _anchor in feed.floating)
            feed.floating = []
            _block, handle = self._finalize_with_post(feed, post)
            return handle
        return feed

    def _finalize_with_post(
        self, cluster: _Cluster, post: tuple[Step, ...]
    ) -> tuple[Block, _InputHandle]:
        block, handle = self._finalize(cluster)
        if post:
            sealed = replace_block_post(block, post)
            self.blocks[self.blocks.index(block)] = sealed
            handle.base_node = _BlockOutputNode(sealed)
            handle.upstream = UpstreamLink(
                block_name=sealed.name,
                kind="output",
                output_se=sealed.output_se,
                output_attrs=sealed.output_attrs,
            )
            return sealed, handle
        return block, handle

    def _boundary(self, node: Node) -> _Feed:
        upstream = self.feed(node.inputs[0])
        if isinstance(upstream, _Cluster):
            post = tuple(step for step, _ in upstream.floating)
            upstream.floating = []
            block, handle = self._finalize_with_post(upstream, post)
        else:
            block, handle = self._finalize(upstream)
        in_name = block.output_name

        if isinstance(node, Target):
            self.targets[node.name] = in_name
            self.boundaries.append(BoundaryOp(node, in_name, f"target:{node.name}"))
            return handle

        out_name = f"{node.label}#{self._local_ids[node.node_id]}"
        self.boundaries.append(BoundaryOp(node, in_name, out_name))
        kind = {
            Aggregate: "aggregate",
            AggregateUDF: "aggregate_udf",
            Materialize: "materialize",
        }[type(node)]
        upstream_link = UpstreamLink(
            block_name=block.name,
            kind=kind,
            output_se=block.output_se,
            output_attrs=block.output_attrs,
            group_attrs=getattr(node, "group_attrs", ()),
        )
        return _InputHandle(out_name, node, (), upstream_link)

    def run(self) -> BlockAnalysis:
        for target in self.workflow.targets:
            self.feed(target)
        return BlockAnalysis(
            workflow=self.workflow,
            blocks=self.blocks,
            boundaries=self.boundaries,
            targets=self.targets,
        )


class _BlockOutputNode(Node):
    """Synthetic node standing for a finalized block's output feed."""

    def __init__(self, block: Block):
        super().__init__([])
        self.block = block

    def output_attrs(self) -> tuple[str, ...]:
        return self.block.output_attrs

    def origin_relations(self) -> frozenset[str]:
        return frozenset({self.block.output_name})

    @property
    def label(self) -> str:
        return f"BlockOutput({self.block.name})"


def replace_block_post(block: Block, post: tuple[Step, ...]) -> Block:
    """Return a copy of ``block`` with ``post`` appended as post-steps."""
    return Block(
        name=block.name,
        inputs=block.inputs,
        graph=block.graph,
        initial_tree=block.initial_tree,
        floating=block.floating,
        post_steps=block.post_steps + post,
        materialized_rejects=block.materialized_rejects,
        pinned=block.pinned,
    )


def analyze(workflow: Workflow) -> BlockAnalysis:
    """Decompose a workflow into optimizable blocks (Section 3.2.1)."""
    return _Analyzer(workflow).run()


def with_plans(
    analysis: BlockAnalysis, trees: dict[str, PlanTree]
) -> BlockAnalysis:
    """Re-bind the *initial* plan of each block to a chosen join tree.

    The framework's cycle repeats with whatever plan the optimizer chose
    (Section 3.2 / Section 1): observability, union-division patterns and
    reject links must then be derived from the plan actually executed.
    Pinned blocks keep their plan; unknown block names are rejected.
    """
    from repro.algebra.plans import leaves as tree_leaves

    known = {block.name for block in analysis.blocks}
    unknown = set(trees) - known
    if unknown:
        raise WorkflowError(f"unknown blocks in plan override: {sorted(unknown)}")
    blocks: list[Block] = []
    for block in analysis.blocks:
        tree = trees.get(block.name)
        if tree is None or block.pinned or tree == block.initial_tree:
            blocks.append(block)
            continue
        if {leaf.name for leaf in tree_leaves(tree)} != set(block.inputs):
            raise WorkflowError(
                f"plan override for {block.name} does not cover its inputs"
            )
        blocks.append(
            Block(
                name=block.name,
                inputs=block.inputs,
                graph=block.graph,
                initial_tree=tree,
                floating=block.floating,
                post_steps=block.post_steps,
                materialized_rejects=block.materialized_rejects,
                pinned=block.pinned,
            )
        )
    return BlockAnalysis(
        workflow=analysis.workflow,
        blocks=blocks,
        boundaries=analysis.boundaries,
        targets=analysis.targets,
    )
