"""GraphViz DOT rendering for workflows, blocks and plan trees.

Debugging and documentation aid: render the designer's DAG, the optimizable
block decomposition or a join tree as ``dot`` source (pipe through
``dot -Tsvg`` to visualize).  Pure string generation, no GraphViz
dependency.
"""

from __future__ import annotations

from repro.algebra.blocks import BlockAnalysis
from repro.algebra.operators import Join, Node, Source, Target, Workflow
from repro.algebra.plans import Leaf, PlanTree


def _esc(text: str) -> str:
    return text.replace('"', '\\"')


def workflow_to_dot(workflow: Workflow) -> str:
    """The designer's DAG: one node per operator, edges follow data flow."""
    lines = [
        "digraph workflow {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for node in workflow.nodes():
        shape = "box"
        if isinstance(node, Source):
            shape = "cylinder"
        elif isinstance(node, Target):
            shape = "doubleoctagon"
        elif isinstance(node, Join):
            shape = "diamond"
        lines.append(
            f'  n{node.node_id} [label="{_esc(node.label)}", shape={shape}];'
        )
        for child in node.inputs:
            lines.append(f"  n{child.node_id} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(tree: PlanTree, name: str = "plan") -> str:
    """A join tree: leaves are block inputs, inner nodes are keyed joins."""
    lines = [
        f"digraph {name} {{",
        "  rankdir=BT;",
        '  node [fontname="Helvetica"];',
    ]
    counter = [0]

    def visit(node: PlanTree) -> str:
        node_id = f"p{counter[0]}"
        counter[0] += 1
        if isinstance(node, Leaf):
            lines.append(f'  {node_id} [label="{_esc(node.name)}", shape=box];')
            return node_id
        label = "\\u22c8 " + ",".join(node.key)
        lines.append(f'  {node_id} [label="{_esc(label)}", shape=ellipse];')
        for child in (node.left, node.right):
            child_id = visit(child)
            lines.append(f"  {child_id} -> {node_id};")
        return node_id

    visit(tree)
    lines.append("}")
    return "\n".join(lines)


def analysis_to_dot(analysis: BlockAnalysis) -> str:
    """The block decomposition: clusters per block, boundary operators
    between them."""
    lines = [
        "digraph blocks {",
        "  rankdir=BT;",
        "  compound=true;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for i, block in enumerate(analysis.blocks):
        lines.append(f"  subgraph cluster_{i} {{")
        pin = " (pinned)" if block.pinned else ""
        lines.append(f'    label="{_esc(block.name + pin)}";')
        for name in sorted(block.inputs):
            lines.append(
                f'    "{_esc(block.name)}:{_esc(name)}" '
                f'[label="{_esc(name)}"];'
            )
        lines.append(
            f'    "{_esc(block.output_name)}" '
            f'[label="{_esc(block.output_name)}", shape=ellipse];'
        )
        for name in sorted(block.inputs):
            lines.append(
                f'    "{_esc(block.name)}:{_esc(name)}" -> '
                f'"{_esc(block.output_name)}";'
            )
        lines.append("  }")
    # wire block outputs / boundary ops to downstream inputs
    feeds: dict[str, str] = {}
    for block in analysis.blocks:
        feeds[block.output_name] = block.output_name
    for boundary in analysis.boundaries:
        label = boundary.node.label
        if boundary.output_name.startswith("target:"):
            lines.append(
                f'  "{_esc(boundary.output_name)}" '
                f'[label="{_esc(label)}", shape=doubleoctagon];'
            )
        else:
            lines.append(
                f'  "{_esc(boundary.output_name)}" '
                f'[label="{_esc(label)}", shape=hexagon];'
            )
        lines.append(
            f'  "{_esc(boundary.input_name)}" -> "{_esc(boundary.output_name)}";'
        )
    for block in analysis.blocks:
        for name, inp in sorted(block.inputs.items()):
            if inp.base_name in feeds or any(
                b.output_name == inp.base_name for b in analysis.boundaries
            ):
                lines.append(
                    f'  "{_esc(inp.base_name)}" -> '
                    f'"{_esc(block.name)}:{_esc(name)}";'
                )
    lines.append("}")
    return "\n".join(lines)
