"""Join-graph analysis: SE enumeration and plan-space generation.

Section 3.2.2: *"The next step is to identify all possible SEs for each
optimizable block ... for a join on multiple relations, there are many
different join orders possible and each join order would generate a set of
SEs."*  Following the paper (and any sane optimizer), only *connected*
subsets of the join graph become SEs -- cross products are never planned.

The module provides:

- :class:`JoinGraph` -- inputs + equi-join edges, connectivity tests and
  crossing-key lookup;
- ``enumerate_ses`` -- the set ℰ restricted to one block;
- ``splits_for`` -- the plan set ``P_e`` for each SE (csg/cmp pairs);
- ``enumerate_trees`` -- every join tree (bushy included), used by the
  pay-as-you-go baseline to search coverage schedules;
- ``count_trees`` -- plan-space size without materializing it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.algebra.expressions import SubExpression
from repro.algebra.plans import JoinNode, JoinSplit, Leaf, PlanTree


class JoinGraphError(ValueError):
    """Raised for malformed join graphs or disconnected requests."""


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge between two block inputs on ``attr``."""

    u: str
    v: str
    attr: str

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise JoinGraphError(f"self-join edge on {self.u!r}")
        if self.v < self.u:
            u, v = self.v, self.u
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "v", v)

    def other(self, name: str) -> str:
        if name == self.u:
            return self.v
        if name == self.v:
            return self.u
        raise JoinGraphError(f"{name!r} is not an endpoint of {self!r}")

    def touches(self, name: str) -> bool:
        return name in (self.u, self.v)


class JoinGraph:
    """The join graph of one optimizable block."""

    def __init__(self, inputs: list[str], edges: list[JoinEdge]):
        if len(set(inputs)) != len(inputs):
            raise JoinGraphError("duplicate block inputs")
        self.inputs = tuple(sorted(inputs))
        self.edges = tuple(edges)
        known = set(self.inputs)
        for edge in edges:
            if edge.u not in known or edge.v not in known:
                raise JoinGraphError(f"edge {edge} references unknown input")
        self._adjacency: dict[str, set[str]] = {name: set() for name in inputs}
        for edge in edges:
            self._adjacency[edge.u].add(edge.v)
            self._adjacency[edge.v].add(edge.u)

    # ------------------------------------------------------------------
    def neighbors(self, name: str) -> frozenset[str]:
        return frozenset(self._adjacency[name])

    def is_connected(self, names: frozenset[str]) -> bool:
        if not names:
            return False
        names = frozenset(names)
        seen = {next(iter(names))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for nxt in self._adjacency[current] & names:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen == names

    def crossing_key(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[str, ...]:
        """Join key between two disjoint input sets: all crossing edge attrs."""
        attrs = {
            edge.attr
            for edge in self.edges
            if (edge.u in left and edge.v in right)
            or (edge.u in right and edge.v in left)
        }
        return tuple(sorted(attrs))

    def join_key(self, left: SubExpression, right: SubExpression) -> tuple[str, ...]:
        key = self.crossing_key(left.relations, right.relations)
        if not key:
            raise JoinGraphError(f"no join edge between {left!r} and {right!r}")
        return key

    # ------------------------------------------------------------------
    def enumerate_ses(self) -> list[SubExpression]:
        """All connected subsets of inputs, smallest first (the block's ℰ)."""
        found: set[frozenset[str]] = {frozenset({name}) for name in self.inputs}
        frontier = list(found)
        while frontier:
            current = frontier.pop()
            reachable = set()
            for name in current:
                reachable |= self._adjacency[name]
            for nxt in reachable - current:
                grown = current | {nxt}
                if grown not in found:
                    found.add(grown)
                    frontier.append(grown)
        return sorted((SubExpression(s) for s in found))

    def splits_for(self, se: SubExpression) -> list[JoinSplit]:
        """Plan set ``P_e``: all (connected, connected) partitions with a
        crossing join edge.  Empty for base SEs."""
        names = sorted(se.relations)
        if len(names) < 2:
            return []
        pivot = names[0]
        rest = names[1:]
        splits: list[JoinSplit] = []
        for r in range(len(rest) + 1):
            for combo in itertools.combinations(rest, r):
                left = frozenset((pivot, *combo))
                right = se.relations - left
                if not right:
                    continue
                if not self.is_connected(left) or not self.is_connected(right):
                    continue
                key = self.crossing_key(left, right)
                if not key:
                    continue
                splits.append(
                    JoinSplit(SubExpression(left), SubExpression(right), key)
                )
        return sorted(splits, key=lambda s: (s.left, s.right))

    def plan_space(self) -> dict[SubExpression, list[JoinSplit]]:
        """``{(e, P_e)}`` over the whole block (Section 4, Algorithm 1 input)."""
        return {se: self.splits_for(se) for se in self.enumerate_ses()}

    # ------------------------------------------------------------------
    def enumerate_trees(
        self, se: SubExpression | None = None, limit: int | None = None
    ) -> list[PlanTree]:
        """Every join tree (bushy included) producing ``se``.

        With ``limit`` set, enumeration stops once that many trees exist --
        the baseline's schedule search uses this to stay tractable on
        8-way-join blocks.
        """
        if se is None:
            se = SubExpression(frozenset(self.inputs))
        if not self.is_connected(se.relations):
            raise JoinGraphError(f"{se!r} is not connected; it has no plans")
        memo: dict[frozenset[str], list[PlanTree]] = {}

        def build(names: frozenset[str]) -> list[PlanTree]:
            if names in memo:
                return memo[names]
            if len(names) == 1:
                result: list[PlanTree] = [Leaf(next(iter(names)))]
            else:
                result = []
                for split in self.splits_for(SubExpression(names)):
                    for left in build(split.left.relations):
                        for right in build(split.right.relations):
                            result.append(JoinNode(left, right, split.key))
                            if limit is not None and len(result) >= limit:
                                break
                        if limit is not None and len(result) >= limit:
                            break
                    if limit is not None and len(result) >= limit:
                        break
            memo[names] = result
            return result

        return build(se.relations)

    def count_trees(self, se: SubExpression | None = None) -> int:
        """Plan-space size for ``se`` without materializing the trees."""
        if se is None:
            se = SubExpression(frozenset(self.inputs))
        memo: dict[frozenset[str], int] = {}

        def count(names: frozenset[str]) -> int:
            if len(names) == 1:
                return 1
            if names in memo:
                return memo[names]
            total = 0
            for split in self.splits_for(SubExpression(names)):
                total += count(split.left.relations) * count(split.right.relations)
            memo[names] = total
            return total

        return count(se.relations)

    def random_tree(self, rng, se: SubExpression | None = None) -> PlanTree:
        """Sample a join tree uniformly-ish (used by the baseline search)."""
        if se is None:
            se = SubExpression(frozenset(self.inputs))

        def build(names: frozenset[str]) -> PlanTree:
            if len(names) == 1:
                return Leaf(next(iter(names)))
            splits = self.splits_for(SubExpression(names))
            split = splits[rng.randrange(len(splits))]
            return JoinNode(
                build(split.left.relations), build(split.right.relations), split.key
            )

        return build(se.relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        edges = ", ".join(f"{e.u}-{e.attr}-{e.v}" for e in self.edges)
        return f"JoinGraph({','.join(self.inputs)}; {edges})"
