"""Logical ETL workflow DAG: nodes, edges and schema propagation.

An ETL workflow (Section 1) is a DAG whose input nodes are source
record-sets, output nodes are targets, and intermediate nodes are
transformation / cleansing / join activities.  This module models that DAG at
the logical level, exactly as an ETL designer export (e.g. the DataStage XML
the paper consumed) would describe it:

- :class:`Source` -- a base record-set (relation).
- :class:`Filter` -- a selection ``sigma_a(T)`` with a named predicate.
- :class:`Project` -- a projection ``pi_attrs(T)``.
- :class:`Transform` -- a (black-box) UDF ``U(T, a)`` rewriting attribute
  ``a``; optionally producing a *derived* attribute.
- :class:`Join` -- an equi-join on a shared attribute, with optional
  *materialized* reject links (the diagnostics pattern of Section 1).
- :class:`Aggregate` -- a group-by ``G(T, a)``.
- :class:`AggregateUDF` -- a custom blocking operator whose semantics are
  opaque to the optimizer (Section 3.2.1).
- :class:`Materialize` -- an explicit intermediate materialization point.
- :class:`Target` -- a workflow output.

Every node knows its output attributes (propagated from sources) and the set
of base relations its rows originate from -- both are needed by block
analysis (Section 3.2.1) and by the rule engine (Section 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algebra.schema import Catalog, SchemaError


class WorkflowError(ValueError):
    """Raised for malformed workflow graphs."""


@dataclass(frozen=True)
class Predicate:
    """A named selection predicate on a single attribute.

    Equality and hashing use only the name, so plans built from the same
    workflow definition compare equal; ``fn`` is used by the execution
    engine.
    """

    name: str
    fn: Callable[[object], bool] = field(compare=False, hash=False, default=lambda v: True)

    def __call__(self, value: object) -> bool:
        return self.fn(value)


@dataclass(frozen=True)
class UdfSpec:
    """A named per-value transformation function (black box to the optimizer)."""

    name: str
    fn: Callable[[object], object] = field(compare=False, hash=False, default=lambda v: v)

    def __call__(self, value: object) -> object:
        return self.fn(value)


_node_ids = itertools.count()


class Node:
    """Base class for workflow DAG nodes."""

    def __init__(self, inputs: list["Node"]):
        self.node_id = next(_node_ids)
        self.inputs = list(inputs)

    # subclasses override -------------------------------------------------
    def output_attrs(self) -> tuple[str, ...]:
        raise NotImplementedError

    def origin_relations(self) -> frozenset[str]:
        """Names of the base sources whose rows flow into this node."""
        out: set[str] = set()
        for node in self.inputs:
            out |= node.origin_relations()
        return frozenset(out)

    @property
    def label(self) -> str:
        return f"{type(self).__name__}#{self.node_id}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


class Source(Node):
    """A base record-set; the relation name must exist in the catalog."""

    def __init__(self, catalog: Catalog, name: str):
        super().__init__([])
        self.name = name
        self.schema = catalog.relation(name)

    def output_attrs(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def origin_relations(self) -> frozenset[str]:
        return frozenset({self.name})

    @property
    def label(self) -> str:
        return f"Source({self.name})"


class _Unary(Node):
    def __init__(self, input_node: Node):
        super().__init__([input_node])

    @property
    def input(self) -> Node:
        return self.inputs[0]


class Filter(_Unary):
    """``sigma_{attr}(input)`` with a named predicate."""

    def __init__(self, input_node: Node, attr: str, predicate: Predicate):
        super().__init__(input_node)
        if attr not in input_node.output_attrs():
            raise WorkflowError(
                f"filter attribute {attr!r} not produced by {input_node.label}"
            )
        self.attr = attr
        self.predicate = predicate

    def output_attrs(self) -> tuple[str, ...]:
        return self.input.output_attrs()

    @property
    def label(self) -> str:
        return f"Filter({self.attr}:{self.predicate.name})"


class Project(_Unary):
    """``pi_{attrs}(input)``."""

    def __init__(self, input_node: Node, attrs: tuple[str, ...]):
        super().__init__(input_node)
        missing = set(attrs) - set(input_node.output_attrs())
        if missing:
            raise WorkflowError(f"project attributes {sorted(missing)} not available")
        self.attrs = tuple(attrs)

    def output_attrs(self) -> tuple[str, ...]:
        return self.attrs

    @property
    def label(self) -> str:
        return f"Project({','.join(self.attrs)})"


class Transform(_Unary):
    """``U(input, attr)``: a UDF rewriting ``attr``.

    With ``output_attr`` set, the UDF *derives* a new attribute instead of
    rewriting in place (the Figure 3 pattern where the derived attribute
    later serves as a join key, forcing a block boundary).
    """

    def __init__(
        self,
        input_node: Node,
        attr: str | tuple[str, ...],
        udf: UdfSpec,
        output_attr: Optional[str] = None,
    ):
        super().__init__(input_node)
        attrs = (attr,) if isinstance(attr, str) else tuple(attr)
        if not attrs:
            raise WorkflowError("transform needs at least one input attribute")
        for a in attrs:
            if a not in input_node.output_attrs():
                raise WorkflowError(
                    f"transform attribute {a!r} not produced by {input_node.label}"
                )
        if len(attrs) > 1 and output_attr is None:
            raise WorkflowError(
                "a multi-attribute transform must name its output attribute"
            )
        self.input_attrs = attrs
        self.attr = attrs[0]
        self.udf = udf
        self.output_attr = output_attr

    @property
    def result_attr(self) -> str:
        """The attribute holding the UDF result."""
        return self.output_attr if self.output_attr is not None else self.attr

    def output_attrs(self) -> tuple[str, ...]:
        attrs = self.input.output_attrs()
        if self.output_attr is not None and self.output_attr not in attrs:
            return attrs + (self.output_attr,)
        return attrs

    @property
    def label(self) -> str:
        return f"Transform({self.udf.name}:{self.attr}->{self.result_attr})"


class Join(Node):
    """Equi-join of two inputs on a shared attribute.

    ``reject_left`` / ``reject_right`` mark *materialized* reject links: the
    non-joining rows of that side are collected into a side output.  A
    materialized reject link pins the join in place (Section 3.2.1), because
    reordering would change the reject contents.
    """

    def __init__(
        self,
        left: Node,
        right: Node,
        attr: str,
        reject_left: bool = False,
        reject_right: bool = False,
    ):
        super().__init__([left, right])
        for side in (left, right):
            if attr not in side.output_attrs():
                raise WorkflowError(
                    f"join attribute {attr!r} not produced by {side.label}"
                )
        if left.origin_relations() & right.origin_relations():
            raise WorkflowError("join inputs share base relations; not a valid DAG")
        self.attr = attr
        # Natural-join discipline: attributes are global identities, so any
        # attribute name both sides carry is the *same* logical attribute
        # and joins implicitly (otherwise "which side's column survives"
        # would make downstream cardinalities depend on join order).
        shared = set(left.output_attrs()) & set(right.output_attrs())
        self.key_attrs = tuple(sorted(shared | {attr}))
        self.reject_left = reject_left
        self.reject_right = reject_right

    @property
    def left(self) -> Node:
        return self.inputs[0]

    @property
    def right(self) -> Node:
        return self.inputs[1]

    @property
    def has_materialized_reject(self) -> bool:
        return self.reject_left or self.reject_right

    def output_attrs(self) -> tuple[str, ...]:
        left = self.left.output_attrs()
        extra = tuple(a for a in self.right.output_attrs() if a not in left)
        return left + extra

    @property
    def label(self) -> str:
        flags = ""
        if self.reject_left:
            flags += " rej<-"
        if self.reject_right:
            flags += " rej->"
        return f"Join({self.attr}{flags})"


class Aggregate(_Unary):
    """Group-by ``G(input, group_attrs)`` with named aggregate outputs.

    ``aggregates`` maps an output attribute name to ``(agg_fn, input_attr)``
    where ``agg_fn`` is one of ``count / sum / min / max``.
    """

    SUPPORTED = ("count", "sum", "min", "max")

    def __init__(
        self,
        input_node: Node,
        group_attrs: tuple[str, ...],
        aggregates: Optional[dict[str, tuple[str, str]]] = None,
    ):
        super().__init__(input_node)
        available = set(input_node.output_attrs())
        missing = set(group_attrs) - available
        if missing:
            raise WorkflowError(f"group-by attributes {sorted(missing)} not available")
        aggregates = dict(aggregates or {})
        for out_attr, (fn, in_attr) in aggregates.items():
            if fn not in self.SUPPORTED:
                raise WorkflowError(f"unsupported aggregate function {fn!r}")
            if fn != "count" and in_attr not in available:
                raise WorkflowError(f"aggregate input {in_attr!r} not available")
        self.group_attrs = tuple(group_attrs)
        self.aggregates = aggregates

    def output_attrs(self) -> tuple[str, ...]:
        return self.group_attrs + tuple(self.aggregates)

    @property
    def label(self) -> str:
        return f"Aggregate({','.join(self.group_attrs)})"


class AggregateUDF(_Unary):
    """A custom blocking operator; a black box that may shrink its input.

    ``fn`` receives and returns a list of row dicts.  Because its semantics
    are opaque, block analysis always places a boundary here
    (Section 3.2.1).
    """

    def __init__(self, input_node: Node, name: str, fn: Optional[Callable] = None):
        super().__init__(input_node)
        self.name = name
        self.fn = fn if fn is not None else (lambda rows: rows)

    def output_attrs(self) -> tuple[str, ...]:
        return self.input.output_attrs()

    @property
    def label(self) -> str:
        return f"AggregateUDF({self.name})"


class Materialize(_Unary):
    """Explicitly materialize the intermediate result under ``name``."""

    def __init__(self, input_node: Node, name: str):
        super().__init__(input_node)
        self.name = name

    def output_attrs(self) -> tuple[str, ...]:
        return self.input.output_attrs()

    @property
    def label(self) -> str:
        return f"Materialize({self.name})"


class Target(_Unary):
    """A workflow output record-set."""

    def __init__(self, input_node: Node, name: str):
        super().__init__(input_node)
        self.name = name

    def output_attrs(self) -> tuple[str, ...]:
        return self.input.output_attrs()

    @property
    def label(self) -> str:
        return f"Target({self.name})"


class Workflow:
    """A complete ETL workflow: a catalog plus one or more target nodes."""

    def __init__(self, name: str, catalog: Catalog, targets: list[Target]):
        if not targets:
            raise WorkflowError("a workflow needs at least one target")
        self.name = name
        self.catalog = catalog
        self.targets = list(targets)
        self._validate()

    def _validate(self) -> None:
        for node in self.nodes():
            node.output_attrs()  # forces schema propagation errors early
            if isinstance(node, Source) and node.name not in self.catalog.relations:
                raise SchemaError(f"source {node.name!r} missing from catalog")

    def nodes(self) -> list[Node]:
        """All nodes in topological order (inputs before consumers)."""
        seen: set[int] = set()
        order: list[Node] = []

        def visit(node: Node) -> None:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            for child in node.inputs:
                visit(child)
            order.append(node)

        for target in self.targets:
            visit(target)
        return order

    def sources(self) -> list[Source]:
        return [n for n in self.nodes() if isinstance(n, Source)]

    def source_names(self) -> list[str]:
        return sorted({s.name for s in self.sources()})

    def consumers(self) -> dict[int, list[Node]]:
        """Map node-id -> nodes that consume its output."""
        out: dict[int, list[Node]] = {}
        for node in self.nodes():
            for child in node.inputs:
                out.setdefault(child.node_id, []).append(node)
        return out

    def describe(self) -> str:
        """A human-readable multi-line summary of the DAG."""
        lines = [f"Workflow {self.name!r}"]
        for node in self.nodes():
            inputs = ", ".join(child.label for child in node.inputs)
            lines.append(f"  {node.label}" + (f" <- [{inputs}]" if inputs else ""))
        return "\n".join(lines)
