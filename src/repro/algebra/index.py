"""A shared index over a workflow's sub-expressions.

Several subsystems (the CSS generator, the plan instrumenter and the
statistics calculator) need to answer the same questions: which block owns
an SE, which attributes are live on it, which join splits produce it, and
whether the initial plan makes it observable.  :class:`SEIndex` computes
those maps once per analysis.
"""

from __future__ import annotations

from repro.algebra.blocks import Block, BlockAnalysis, BlockInput
from repro.algebra.expressions import AnySE, RejectJoinSE, RejectSE, SubExpression
from repro.algebra.plans import JoinNode, JoinSplit, subtrees


class SEIndex:
    """Resolves sub-expressions to blocks, attributes and plan context."""

    def __init__(self, analysis: BlockAnalysis):
        self.analysis = analysis
        self.join_block: dict[SubExpression, Block] = {}
        self.splits: dict[SubExpression, list[JoinSplit]] = {}
        self.stage: dict[str, tuple[Block, BlockInput, int]] = {}
        self.post: dict[str, tuple[Block, int]] = {}
        self.observable: dict[str, set[SubExpression]] = {}
        self.tree_joins: dict[str, list[JoinNode]] = {}

        for block in analysis.blocks:
            for se, se_splits in block.graph.plan_space().items():
                if len(se) > 1:
                    self.join_block.setdefault(se, block)
                    self.splits.setdefault(se, se_splits)
            for inp in block.inputs.values():
                for idx, name in enumerate(inp.stage_names()):
                    self.stage.setdefault(name, (block, inp, idx))
            for idx, name in enumerate(block.post_stage_names()):
                self.post.setdefault(name, (block, idx))
            self.observable[block.name] = block.observable_ses()
            self.tree_joins[block.name] = [
                n for n in subtrees(block.initial_tree) if isinstance(n, JoinNode)
            ]

    # ------------------------------------------------------------------
    def block_of(self, se: AnySE) -> Block:
        if isinstance(se, RejectSE):
            return self.block_of(se.source)
        if isinstance(se, RejectJoinSE):
            return self.block_of(se.reject)
        if len(se) > 1:
            return self.join_block[se]
        name = se.base_name
        if name in self.stage:
            return self.stage[name][0]
        if name in self.post:
            return self.post[name][0]
        raise KeyError(f"no block owns {se!r}")

    def se_attrs(self, se: AnySE) -> tuple[str, ...]:
        if isinstance(se, RejectSE):
            return self.block_of(se.source).se_attrs(se.source)
        if isinstance(se, RejectJoinSE):
            block = self.block_of(se.reject.source)
            attrs = set(block.se_attrs(se.reject.source))
            attrs.update(block.se_attrs(se.other))
            return tuple(sorted(attrs))
        return self.block_of(se).se_attrs(se)

    def is_join_se(self, se: AnySE) -> bool:
        return isinstance(se, SubExpression) and len(se) > 1

    def reject_join_node(self, se: RejectSE) -> JoinNode | None:
        """The initial-plan join node realizing this reject link, if any."""
        block = self.block_of(se)
        want_key = (se.key,) if isinstance(se.key, str) else tuple(se.key)
        for node in self.tree_joins[block.name]:
            if (
                {node.left.se, node.right.se} == {se.source, se.against}
                and tuple(node.key) == want_key
            ):
                return node
        return None

    def se_observable(self, se: AnySE) -> bool:
        """Is the SE itself a point of the initial plan?"""
        if isinstance(se, RejectJoinSE):
            return False
        if isinstance(se, RejectSE):
            return self.reject_join_node(se) is not None
        block = self.block_of(se)
        return se in self.observable[block.name]
