"""Workflow serialization: JSON round-trip and DataStage-flavoured XML.

Section 7: *"all the workflows were exported as XMLs from DataStage to be
consumed by our module"*.  This module plays that role for the library: a
workflow (catalog + DAG) can be exported to a JSON document or to an XML
dialect shaped like an ETL designer export, and re-imported into live
:class:`~repro.algebra.operators.Workflow` objects.

Because predicates and UDFs are code, they cannot travel inside a document;
imports resolve them by *name* from a caller-supplied registry (defaulting
to pass-through semantics), mirroring how an engine binds stage types by
name at run time.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Node,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
    WorkflowError,
)
from repro.algebra.schema import Catalog


class SerializationError(ValueError):
    """Raised for malformed workflow documents."""


@dataclass
class FunctionRegistry:
    """Resolves predicate / UDF / blocking-UDF names to callables."""

    predicates: dict[str, Callable] = field(default_factory=dict)
    udfs: dict[str, Callable] = field(default_factory=dict)
    aggregate_udfs: dict[str, Callable] = field(default_factory=dict)

    def predicate(self, name: str) -> Predicate:
        return Predicate(name, self.predicates.get(name, lambda v: True))

    def udf(self, name: str) -> UdfSpec:
        return UdfSpec(name, self.udfs.get(name, lambda v: v))

    def aggregate_udf(self, name: str) -> Callable:
        return self.aggregate_udfs.get(name, lambda rows: rows)


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def workflow_to_dict(workflow: Workflow) -> dict:
    """A JSON-ready description of the catalog and the DAG."""
    nodes = workflow.nodes()
    ids = {node.node_id: f"n{i}" for i, node in enumerate(nodes)}

    def describe(node: Node) -> dict:
        base = {
            "id": ids[node.node_id],
            "kind": type(node).__name__,
            "inputs": [ids[child.node_id] for child in node.inputs],
        }
        if isinstance(node, Source):
            base["relation"] = node.name
        elif isinstance(node, Filter):
            base["attr"] = node.attr
            base["predicate"] = node.predicate.name
        elif isinstance(node, Project):
            base["attrs"] = list(node.attrs)
        elif isinstance(node, Transform):
            base["attrs"] = list(node.input_attrs)
            base["udf"] = node.udf.name
            if node.output_attr is not None:
                base["output_attr"] = node.output_attr
        elif isinstance(node, Join):
            base["attr"] = node.attr
            base["reject_left"] = node.reject_left
            base["reject_right"] = node.reject_right
        elif isinstance(node, Aggregate):
            base["group_attrs"] = list(node.group_attrs)
            base["aggregates"] = {
                out: list(spec) for out, spec in node.aggregates.items()
            }
        elif isinstance(node, (AggregateUDF, Materialize, Target)):
            base["name"] = node.name
        return base

    catalog = workflow.catalog
    return {
        "name": workflow.name,
        "catalog": {
            "relations": {
                name: {
                    attr.name: attr.domain_size for attr in rel.attributes
                }
                for name, rel in sorted(catalog.relations.items())
            },
            "attributes": {
                name: attr.domain_size
                for name, attr in sorted(catalog._attributes.items())
            },
            "foreign_keys": [
                [fk.child, fk.parent, fk.attr] for fk in catalog.foreign_keys
            ],
        },
        "nodes": [describe(node) for node in nodes],
        "targets": [ids[t.node_id] for t in workflow.targets],
    }


def workflow_to_json(workflow: Workflow, indent: int = 2) -> str:
    """Serialize a workflow (catalog + DAG) to a JSON document.

    Keys are sorted so the same workflow always renders byte-identical
    output -- exports are diffable and safe to keep under version control.
    """
    return json.dumps(workflow_to_dict(workflow), indent=indent, sort_keys=True)


def workflow_to_xml(workflow: Workflow) -> str:
    """A designer-export-flavoured XML rendering of the same document."""
    doc = workflow_to_dict(workflow)
    root = ET.Element("etl-workflow", name=doc["name"])
    catalog_el = ET.SubElement(root, "catalog")
    for rel, attrs in doc["catalog"]["relations"].items():
        rel_el = ET.SubElement(catalog_el, "relation", name=rel)
        for attr, domain in attrs.items():
            ET.SubElement(rel_el, "attribute", name=attr, domain=str(domain))
    for name, domain in doc["catalog"]["attributes"].items():
        relations_attrs = {
            a for attrs in doc["catalog"]["relations"].values() for a in attrs
        }
        if name not in relations_attrs:
            ET.SubElement(
                catalog_el, "derived-attribute", name=name, domain=str(domain)
            )
    for child, parent, attr in doc["catalog"]["foreign_keys"]:
        ET.SubElement(
            catalog_el, "foreign-key", child=child, parent=parent, attr=attr
        )
    stages = ET.SubElement(root, "stages")
    for node in doc["nodes"]:
        stage = ET.SubElement(stages, "stage", id=node["id"], kind=node["kind"])
        for key, value in node.items():
            if key in ("id", "kind", "inputs"):
                continue
            prop = ET.SubElement(stage, "property", name=key)
            prop.text = json.dumps(value)
        for input_id in node["inputs"]:
            ET.SubElement(stage, "link", source=input_id)
    targets = ET.SubElement(root, "targets")
    for target_id in doc["targets"]:
        ET.SubElement(targets, "target", ref=target_id)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# ---------------------------------------------------------------------------
# import
# ---------------------------------------------------------------------------


def workflow_from_dict(
    doc: dict, registry: Optional[FunctionRegistry] = None
) -> Workflow:
    """Rebuild a workflow from its dictionary form; functions resolve by
    name through ``registry``."""
    registry = registry or FunctionRegistry()
    try:
        catalog_doc = doc["catalog"]
        node_docs = doc["nodes"]
        target_ids = doc["targets"]
        name = doc["name"]
    except KeyError as exc:
        raise SerializationError(f"missing workflow section: {exc}") from exc

    catalog = Catalog()
    for rel, attrs in catalog_doc.get("relations", {}).items():
        catalog.add_relation(rel, dict(attrs))
    for attr, domain in catalog_doc.get("attributes", {}).items():
        catalog.add_attribute(attr, domain)
    for child, parent, attr in catalog_doc.get("foreign_keys", []):
        catalog.add_foreign_key(child, parent, attr)

    built: dict[str, Node] = {}
    for node_doc in node_docs:
        node_id = node_doc.get("id")
        kind = node_doc.get("kind")
        inputs = [built[i] for i in node_doc.get("inputs", [])]
        try:
            built[node_id] = _build_node(kind, node_doc, inputs, catalog, registry)
        except (KeyError, WorkflowError) as exc:
            raise SerializationError(
                f"invalid node {node_id!r} ({kind}): {exc}"
            ) from exc

    targets = []
    for target_id in target_ids:
        node = built.get(target_id)
        if not isinstance(node, Target):
            raise SerializationError(f"target ref {target_id!r} is not a Target")
        targets.append(node)
    return Workflow(name, catalog, targets)


def _build_node(kind, doc, inputs, catalog, registry) -> Node:
    if kind == "Source":
        return Source(catalog, doc["relation"])
    if kind == "Filter":
        return Filter(inputs[0], doc["attr"], registry.predicate(doc["predicate"]))
    if kind == "Project":
        return Project(inputs[0], tuple(doc["attrs"]))
    if kind == "Transform":
        return Transform(
            inputs[0],
            tuple(doc["attrs"]),
            registry.udf(doc["udf"]),
            output_attr=doc.get("output_attr"),
        )
    if kind == "Join":
        return Join(
            inputs[0],
            inputs[1],
            doc["attr"],
            reject_left=doc.get("reject_left", False),
            reject_right=doc.get("reject_right", False),
        )
    if kind == "Aggregate":
        aggregates = {
            out: (spec[0], spec[1])
            for out, spec in doc.get("aggregates", {}).items()
        }
        return Aggregate(inputs[0], tuple(doc["group_attrs"]), aggregates)
    if kind == "AggregateUDF":
        return AggregateUDF(
            inputs[0], doc["name"], registry.aggregate_udf(doc["name"])
        )
    if kind == "Materialize":
        return Materialize(inputs[0], doc["name"])
    if kind == "Target":
        return Target(inputs[0], doc["name"])
    raise SerializationError(f"unknown node kind {kind!r}")


def workflow_from_json(
    text: str, registry: Optional[FunctionRegistry] = None
) -> Workflow:
    """Parse a JSON workflow document (see :func:`workflow_to_json`)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return workflow_from_dict(doc, registry)


def workflow_from_xml(
    text: str, registry: Optional[FunctionRegistry] = None
) -> Workflow:
    """Parse a designer-export-flavoured XML workflow document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid XML: {exc}") from exc
    if root.tag != "etl-workflow":
        raise SerializationError(f"unexpected root element {root.tag!r}")

    relations: dict[str, dict[str, int]] = {}
    attributes: dict[str, int] = {}
    foreign_keys = []
    catalog_el = root.find("catalog")
    if catalog_el is not None:
        for rel_el in catalog_el.findall("relation"):
            relations[rel_el.get("name")] = {
                a.get("name"): int(a.get("domain"))
                for a in rel_el.findall("attribute")
            }
        for attr_el in catalog_el.findall("derived-attribute"):
            attributes[attr_el.get("name")] = int(attr_el.get("domain"))
        for fk_el in catalog_el.findall("foreign-key"):
            foreign_keys.append(
                [fk_el.get("child"), fk_el.get("parent"), fk_el.get("attr")]
            )

    nodes = []
    stages_el = root.find("stages")
    for stage in (stages_el.findall("stage") if stages_el is not None else []):
        node_doc = {
            "id": stage.get("id"),
            "kind": stage.get("kind"),
            "inputs": [link.get("source") for link in stage.findall("link")],
        }
        for prop in stage.findall("property"):
            node_doc[prop.get("name")] = json.loads(prop.text or "null")
        nodes.append(node_doc)

    targets_el = root.find("targets")
    targets = [
        t.get("ref") for t in (targets_el.findall("target") if targets_el is not None else [])
    ]
    doc = {
        "name": root.get("name", "workflow"),
        "catalog": {
            "relations": relations,
            "attributes": attributes,
            "foreign_keys": foreign_keys,
        },
        "nodes": nodes,
        "targets": targets,
    }
    return workflow_from_dict(doc, registry)
