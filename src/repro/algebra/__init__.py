"""Workflow algebra: schema, DAG operators, sub-expressions, plans, blocks."""

from repro.algebra.blocks import BlockAnalysis, Block, BlockInput, analyze
from repro.algebra.enumeration import JoinEdge, JoinGraph
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
    WorkflowError,
)
from repro.algebra.plans import JoinNode, JoinSplit, Leaf, PlanTree
from repro.algebra.schema import Attribute, Catalog, ForeignKey, RelationSchema, SchemaError

__all__ = [
    "Aggregate", "AggregateUDF", "analyze", "Attribute", "Block",
    "BlockAnalysis", "BlockInput", "Catalog", "Filter", "ForeignKey",
    "Join", "JoinEdge", "JoinGraph", "JoinNode", "JoinSplit", "Leaf",
    "Materialize", "PlanTree", "Predicate", "Project", "RejectJoinSE",
    "RejectSE", "RelationSchema", "SchemaError", "Source", "SubExpression",
    "Target", "Transform", "UdfSpec", "Workflow", "WorkflowError",
]
