"""Sub-expressions (SEs): the logical results at intermediate plan stages.

Section 3.1: *"a sub-expression (SE) logically denotes the result at an
intermediate stage of the plan"*.  Within one optimizable block, an SE is
fully identified by the subset of the block's inputs that have been joined,
since unary operators (filters, projections, UDFs) are anchored to the input
they apply to.

Two extra SE forms exist only to support the paper's union-division method
(Section 4.1.2, rules J4/J5):

- :class:`RejectSE` -- ``rej(T_1, J_13, T_3)``, the rows of ``T_1`` rejected
  by its join with ``T_3`` (written ``\\overline{T}_1^{J_13}`` in the paper).
- :class:`RejectJoinSE` -- ``rej(T_1, J_13, T_3) join T_2``, the side join of
  a reject link with another SE.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Union


@total_ordering
@dataclass(frozen=True)
class SubExpression:
    """A join of a subset of block inputs.

    ``relations`` holds input names; a singleton SE is a (possibly filtered /
    transformed) base input, the full set is the block output.
    """

    relations: frozenset[str]

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError("a sub-expression must contain at least one relation")
        if not isinstance(self.relations, frozenset):
            object.__setattr__(self, "relations", frozenset(self.relations))

    @classmethod
    def of(cls, *relations: str) -> "SubExpression":
        return cls(frozenset(relations))

    @property
    def is_base(self) -> bool:
        return len(self.relations) == 1

    @property
    def base_name(self) -> str:
        if not self.is_base:
            raise ValueError(f"{self} is not a base sub-expression")
        return next(iter(self.relations))

    def union(self, other: "SubExpression") -> "SubExpression":
        return SubExpression(self.relations | other.relations)

    def contains(self, other: "SubExpression") -> bool:
        return other.relations <= self.relations

    def overlaps(self, other: "SubExpression") -> bool:
        return bool(self.relations & other.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def _sort_key(self) -> tuple:
        return (len(self.relations), tuple(sorted(self.relations)))

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, SubExpression):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:
        return "SE(" + "*".join(sorted(self.relations)) + ")"


@dataclass(frozen=True)
class RejectSE:
    """Rows of ``source`` rejected by its join with ``against`` on ``key``.

    The paper writes this as ``\\overline{T}_i^{J_ij}``.  It is observable by
    instrumenting (or adding) a reject link after the join in the initial
    plan (Section 4.1.2).
    """

    source: SubExpression
    key: str
    against: SubExpression

    def __repr__(self) -> str:
        return f"Rej({self.source!r}, {self.key}, {self.against!r})"


@dataclass(frozen=True)
class RejectJoinSE:
    """The side join ``reject join_{key} other`` used by rules J4/J5."""

    reject: RejectSE
    key: str
    other: SubExpression

    def __repr__(self) -> str:
        return f"RejJoin({self.reject!r} |x|_{self.key} {self.other!r})"


AnySE = Union[SubExpression, RejectSE, RejectJoinSE]


def se_sort_key(se: AnySE) -> tuple:
    """Stable ordering across the three SE flavours (for determinism)."""
    if isinstance(se, SubExpression):
        return (0, se._sort_key())
    if isinstance(se, RejectSE):
        return (1, se.source._sort_key(), se.key, se.against._sort_key())
    if isinstance(se, RejectJoinSE):
        return (2, se_sort_key(se.reject), se.key, se.other._sort_key())
    raise TypeError(f"not a sub-expression: {se!r}")
