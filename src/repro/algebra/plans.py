"""Join-plan trees and the per-SE plan sets of Definition 1.

A *plan* for an SE specifies how to evaluate it from smaller SEs:
``p_e : op(e_1, ..., e_k)`` (Definition 1).  For joins inside an optimizable
block this is a binary tree whose leaves are block inputs.  We keep two
representations:

- :class:`PlanTree` / :class:`Leaf` -- a concrete join tree (used for the
  initial plan, for executing re-ordered plans and for the baseline's
  coverage schedules);
- :class:`JoinSplit` -- one way of composing an SE from two smaller SEs with
  a join key (the optimizer's dynamic-programming view, ``P_e``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.algebra.expressions import SubExpression


@dataclass(frozen=True)
class Leaf:
    """A block input occurrence in a join tree."""

    name: str

    @property
    def se(self) -> SubExpression:
        return SubExpression.of(self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class JoinNode:
    """An inner join-tree node joining two subtrees on ``key`` attributes."""

    left: "PlanTree"
    right: "PlanTree"
    key: tuple[str, ...]

    @property
    def se(self) -> SubExpression:
        return self.left.se.union(self.right.se)

    def __repr__(self) -> str:
        key = ",".join(self.key)
        return f"({self.left!r} |x|_{key} {self.right!r})"


PlanTree = Union[Leaf, JoinNode]


@dataclass(frozen=True)
class JoinSplit:
    """One plan for an SE: join ``left`` and ``right`` on ``key``.

    ``left`` and ``right`` are canonicalized so that ``left < right`` in SE
    order; an equi-join is symmetric so nothing is lost.
    """

    left: SubExpression
    right: SubExpression
    key: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.right < self.left:
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
        object.__setattr__(self, "key", tuple(sorted(self.key)))

    @property
    def se(self) -> SubExpression:
        return self.left.union(self.right)

    def __repr__(self) -> str:
        return f"{self.left!r} |x|_{','.join(self.key)} {self.right!r}"


def subtrees(tree: PlanTree) -> Iterator[PlanTree]:
    """All subtrees, leaves included, in post-order."""
    if isinstance(tree, JoinNode):
        yield from subtrees(tree.left)
        yield from subtrees(tree.right)
    yield tree


def tree_ses(tree: PlanTree) -> list[SubExpression]:
    """The SEs produced at every stage of the tree (the observable SEs)."""
    return [node.se for node in subtrees(tree)]


def internal_ses(tree: PlanTree) -> list[SubExpression]:
    """SEs of the inner join nodes only (excluding leaves)."""
    return [node.se for node in subtrees(tree) if isinstance(node, JoinNode)]


def tree_joins(tree: PlanTree) -> list[JoinNode]:
    """All inner join nodes of the tree, post-order."""
    return [node for node in subtrees(tree) if isinstance(node, JoinNode)]


def leaves(tree: PlanTree) -> list[Leaf]:
    """The tree's leaves (block inputs), left to right."""
    return [node for node in subtrees(tree) if isinstance(node, Leaf)]


def tree_splits(tree: PlanTree) -> list[JoinSplit]:
    """The :class:`JoinSplit` realized at every join node of the tree."""
    return [
        JoinSplit(node.left.se, node.right.se, node.key)
        for node in tree_joins(tree)
    ]


def left_deep(order: list[str], key_fn) -> PlanTree:
    """Build a left-deep tree over ``order``; ``key_fn(left_se, right_se)``
    supplies the join key for each step."""
    if not order:
        raise ValueError("cannot build a plan over zero inputs")
    tree: PlanTree = Leaf(order[0])
    for name in order[1:]:
        right = Leaf(name)
        tree = JoinNode(tree, right, tuple(key_fn(tree.se, right.se)))
    return tree


def find_node(tree: PlanTree, se: SubExpression) -> PlanTree | None:
    """Locate the subtree producing ``se``, if any."""
    for node in subtrees(tree):
        if node.se == se:
            return node
    return None
