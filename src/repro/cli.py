"""Command-line interface.

Entry points (``python -m repro.cli <command>`` or the ``repro-etl``
console script):

- ``analyze <workflow.json|.xml>`` -- print the optimizable-block
  decomposition of a serialized workflow;
- ``identify <workflow.json|.xml>`` -- run statistics identification
  (Algorithm 1 + the Section 5 selection) and print the chosen set;
- ``run --number N`` -- execute a suite workflow end to end on a chosen
  execution backend (``--backend columnar|streaming|vectorized|
  multiprocess``, ``--workers W`` for the parallel block scheduler,
  ``--shards K`` for multi-process row sharding, which implies the
  multiprocess backend) and print the observe-and-optimize report.  Resilience flags: ``--faults spec.json``
  injects a deterministic chaos plan, ``--max-retries N`` and
  ``--block-timeout S`` configure the scheduler's retry/deadline policy,
  ``--resume checkpoint.json`` journals per-block progress to (and, if
  the file exists, resumes from) a run checkpoint, ``--prior-stats
  stats.json`` backfills a failed block's estimates from a previous
  night's persisted statistics, and ``--save-stats stats.json`` persists
  tonight's observations for exactly that purpose.  Observability:
  ``--trace [trace.json]`` records a span tree for the run (rendered to
  stdout; persisted when a path is given) and ``--metrics-out out.prom``
  exports the run's metric series (Prometheus text for ``.prom`` /
  ``.txt`` / ``.metrics`` suffixes, JSON otherwise);
- ``suite [--number N]`` -- describe the built-in 30-workflow benchmark;
- ``experiments <data|fig9|fig10|fig11|fig12>`` -- regenerate a Section 7
  table/figure and print it;
- ``export --number N --format json|xml`` -- dump a suite workflow as a
  document other tools (or the ``analyze``/``identify`` commands)
  consume; JSON output is byte-deterministic (sorted keys, stable node
  ordering) so exports diff cleanly in git;
- ``catalog <show|gc|import|export|plan-fleet>`` -- manage the shared
  statistics catalog: inspect entries with provenance and quality,
  garbage-collect expired/stale/low-quality entries, merge catalogs or
  sign a persisted statistics file into one, print the deterministic
  JSON document, or compute the combined nightly observation plan that
  observes each statistic shared across suite workflows exactly once;
- ``serve --catalog CATALOG.JSON [--listen host:port|unix:///p.sock]`` --
  run the crash-safe statistics-catalog server: every write lands in a
  checksummed write-ahead log before it is acknowledged, snapshots are
  written behind and the WAL truncated, and a SIGKILL'd server replays
  the log on restart without losing an acknowledged entry.  Point runs
  at it with ``run --catalog http://host:port`` (or the unix URL); an
  unreachable server degrades the run to the local view
  (``--catalog-fallback``) with plan confidence demoted one rung.  For
  high availability start a second server with ``--replicate-from URL``
  (a warm standby tailing the primary's WAL stream) and give runs both
  endpoints: ``run --catalog http://primary,http://standby`` fails
  writes over to whichever server is primary, promoting the standby
  (epoch-fenced against the old primary resurrecting) when needed;
- ``trace show <trace.json>`` -- render a persisted run trace as an
  indented span tree, with the slowest blocks and the worst
  estimated-vs-actual row errors summarized below it;
- ``quality <infer|report>`` -- bootstrap source contracts from a suite
  workflow's clean sources, or summarize a quarantine dead-letter
  directory written by ``run --quarantine-dir``.

Data quality: ``run --contracts CONTRACTS.JSON`` arms the quality gate
(schema drift reconciled under ``--on-drift strict|coerce|ignore-extra``,
invalid rows quarantined before any block executes, so every observed
statistic excludes them); ``--quarantine-dir DIR`` persists the
dead-letter rows with structured violation records.

``run`` and ``identify`` accept ``--catalog CATALOG.JSON``: statistics
already in the catalog enter selection at zero cost (Section 6.2) and are
consumed instead of re-observed; after a ``run`` the catalog is
reconciled (drift-checked) and saved back.

Operational errors -- an unknown workflow number, an unreadable or corrupt
workflow/fault/checkpoint/trace file, a bad backend name -- exit with a
one-line message on stderr and status 1, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.algebra.blocks import analyze
from repro.algebra.operators import WorkflowError
from repro.algebra.serialize import (
    workflow_from_json,
    workflow_from_xml,
    workflow_to_json,
    workflow_to_xml,
)
from repro.core.costs import CostModel
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.greedy import solve_greedy
from repro.core.ilp import solve_ilp
from repro.core.persistence import PersistenceError
from repro.core.selection import build_problem
from repro.engine.backend import available_backends
from repro.engine.faults import FaultError
from repro.quality import QualityError
from repro.workloads import case, suite


class CliError(Exception):
    """An operational error reported as one line on stderr, exit status 1."""


def _load_workflow(path: str):
    try:
        text = Path(path).read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise CliError(f"cannot read workflow file {path}: {exc}") from exc
    try:
        if path.endswith(".xml"):
            return workflow_from_xml(text)
        return workflow_from_json(text)
    except (ValueError, KeyError, TypeError, SyntaxError, WorkflowError) as exc:
        raise CliError(f"corrupt workflow file {path}: {exc}") from exc


def _case(number: int):
    try:
        return case(number)
    except KeyError as exc:
        raise CliError(
            f"unknown workflow number {number}; the suite has wf01..wf30 "
            "(see `repro-etl suite`)"
        ) from exc


def _cmd_analyze(args) -> int:
    workflow = _load_workflow(args.workflow)
    analysis = analyze(workflow)
    print(analysis.describe())
    for block in analysis.blocks:
        universe = block.universe()
        print(
            f"\n{block.name}: {len(universe)} sub-expressions, "
            f"{block.graph.count_trees()} join trees"
        )
        for se in universe:
            print(f"  {se!r}")
    return 0


def _open_catalog(path: str, must_exist: bool = False, fallback: str | None = None):
    from pathlib import Path

    from repro.catalog import StatisticsCatalog
    from repro.serve.client import CatalogClient, is_catalog_url

    if is_catalog_url(path):
        return CatalogClient(path, fallback=fallback)
    if must_exist and not Path(path).exists():
        raise CliError(f"catalog file not found: {path}")
    return StatisticsCatalog.open(path)


def _cmd_identify(args) -> int:
    workflow = _load_workflow(args.workflow)
    analysis = analyze(workflow)
    options = GeneratorOptions(
        union_division=not args.no_union_division,
        fk_rules=not args.no_fk,
    )
    catalog = generate_css(analysis, options)
    counts = catalog.counts()
    print(
        f"identified {counts['statistics']} statistics, "
        f"{counts['css']} candidate statistics sets "
        f"({counts['required']} cardinalities to cover)"
    )
    free_statistics = set()
    if args.catalog:
        from repro.catalog import WorkflowSigner

        stats_catalog = _open_catalog(args.catalog)
        hits = stats_catalog.lookup(
            WorkflowSigner(analysis), catalog.all_statistics, count_hits=False
        )
        free_statistics = hits.free
        print(
            f"catalog {args.catalog}: {len(hits.free)} statistics already "
            "available at zero cost"
        )
    cost_model = CostModel(workflow.catalog)
    if args.budget is not None:
        from repro.core.resource import plan_constrained

        schedule = plan_constrained(
            analysis, catalog, cost_model, budget=args.budget,
            solver=args.solver,
        )
        print(
            f"memory budget {args.budget:g}: {schedule.executions} "
            f"execution(s), peak memory {schedule.peak_memory:g}"
        )
        for i, step in enumerate(schedule.steps, start=1):
            print(f"  run {i}: observe {len(step.observe)} statistics "
                  f"({step.memory:g} units)")
            for name, tree in sorted(step.trees.items()):
                print(f"    {name}: {tree}")
        return 0
    problem = build_problem(catalog, cost_model, free_statistics=free_statistics)
    if args.solver == "greedy":
        result = solve_greedy(problem)
    else:
        result = solve_ilp(problem, time_limit=args.time_limit)
    print(result.describe())
    if args.verbose:
        print()
        print(catalog.describe())
    return 0


def _cmd_run(args) -> int:
    from repro.engine.faults import FaultPlan
    from repro.engine.scheduler import RetryPolicy
    from repro.framework.pipeline import StatisticsPipeline
    from repro.framework.recovery import RunCheckpoint

    wfcase = _case(args.number)
    workflow = wfcase.build()
    sources = wfcase.tables(scale=args.scale, seed=args.seed)
    if args.shards is not None:
        import os

        if args.shards < 1:
            raise CliError(
                f"--shards must be a positive integer, got {args.shards}"
            )
        cap = (os.cpu_count() or 1) * 8
        if args.shards > cap:
            raise CliError(
                f"--shards {args.shards} exceeds {cap} "
                f"(8 x the {os.cpu_count() or 1} available CPUs); "
                "that many row shards would only add merge overhead"
            )
    if args.sketch_precision is not None:
        from repro.estimation.sketches import MAX_PRECISION, MIN_PRECISION

        if args.distinct_sketch != "hll":
            raise CliError(
                "--sketch-precision only applies with --distinct-sketch hll"
            )
        if not MIN_PRECISION <= args.sketch_precision <= MAX_PRECISION:
            raise CliError(
                f"--sketch-precision must be in "
                f"[{MIN_PRECISION}, {MAX_PRECISION}], "
                f"got {args.sketch_precision}"
            )
    pipeline = StatisticsPipeline(
        workflow,
        solver=args.solver,
        backend=args.backend,
        workers=args.workers,
        shards=args.shards,
        compile=False if args.no_compile else None,
        distinct_sketch=args.distinct_sketch,
        sketch_precision=args.sketch_precision,
    )

    faults = FaultPlan.from_file(args.faults) if args.faults else None
    retry = None
    if args.max_retries or args.block_timeout is not None or faults is not None:
        retry = RetryPolicy(
            max_retries=args.max_retries,
            block_timeout=args.block_timeout,
            seed=args.seed,
        )
    checkpoint = None
    if args.resume:
        checkpoint = RunCheckpoint.open(
            args.resume, workflow=workflow.name, backend=args.backend
        )
        if checkpoint.completed:
            print(
                f"resuming from {args.resume}: "
                f"{', '.join(sorted(checkpoint.completed))} already done"
            )
    prior = None
    prior_observed_at = None
    if args.prior_stats:
        from repro.core.persistence import load_statistics

        prior = load_statistics(args.prior_stats)
        try:
            prior_observed_at = Path(args.prior_stats).stat().st_mtime
        except OSError:  # pragma: no cover - just read it
            prior_observed_at = None
    stats_catalog = (
        _open_catalog(args.catalog, fallback=args.catalog_fallback)
        if args.catalog
        else None
    )

    contracts = None
    quarantine = None
    if args.quarantine_dir and not args.contracts:
        raise CliError(
            "--quarantine-dir needs --contracts to arm the quality gate"
        )
    if args.contracts:
        from repro.quality import ContractSet, QuarantineStore

        contracts_path = Path(args.contracts)
        if contracts_path.exists():
            contracts = ContractSet.from_file(contracts_path)
        else:
            # first clean run: infer the contracts from tonight's sources
            # and persist them as the baseline future runs are held to
            contracts = ContractSet.infer(sources)
            contracts.save(contracts_path)
            print(
                f"contracts inferred from tonight's sources and saved to "
                f"{args.contracts} ({len(contracts)} source(s))"
            )
        quarantine = QuarantineStore()

    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    metrics = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()

    report = pipeline.run_once(
        sources,
        faults=faults,
        retry=retry,
        checkpoint=checkpoint,
        prior_statistics=prior,
        prior_observed_at=prior_observed_at,
        stats_catalog=stats_catalog,
        run_id=f"wf{wfcase.number:02d}-seed{args.seed}",
        tracer=tracer,
        metrics=metrics,
        contracts=contracts,
        on_drift=args.on_drift,
        quarantine=quarantine,
    )
    total_in = sum(t.num_rows for t in sources.values())
    sharded = f" shards={pipeline.shards}" if pipeline.shards else ""
    sketched = (
        f" sketch=hll(p={pipeline.sketch_spec.precision})"
        if pipeline.sketch_spec.mode == "hll"
        else ""
    )
    print(
        f"wf{wfcase.number:02d} {wfcase.name} on backend={pipeline.backend} "
        f"workers={args.workers}{sharded}{sketched} "
        f"({total_in} source rows)"
    )
    for name in sorted(report.run.targets):
        print(f"  target {name}: {report.run.targets[name].num_rows} rows")
    print(report.describe())
    print(
        "timings: "
        + ", ".join(f"{k} {v * 1e3:.1f}ms" for k, v in report.timings.items())
    )
    if stats_catalog is not None:
        print(
            f"catalog {args.catalog}: {report.catalog_hits} reused, "
            f"{len(report.tapped)} observed fresh, "
            f"{len(stats_catalog.entries)} entries after reconcile"
        )
        close = getattr(stats_catalog, "close", None)
        if close is not None:
            close()
    if contracts is not None:
        print(
            f"quality gate: {report.rows_quarantined} row(s) quarantined, "
            f"{len(report.violations)} violation(s), "
            f"{len(report.schema_drift)} schema drift event(s)"
        )
        if args.quarantine_dir:
            written = quarantine.save(args.quarantine_dir)
            if written:
                print(
                    f"dead letter: {len(written)} artifact(s) written to "
                    f"{args.quarantine_dir}"
                )
            else:
                print(
                    f"dead letter: all sources clean, nothing written to "
                    f"{args.quarantine_dir}"
                )
    if args.save_stats:
        from repro.core.persistence import save_statistics

        save_statistics(report.run.observations, args.save_stats)
        print(f"statistics saved to {args.save_stats}")
    if tracer is not None:
        from repro.obs import render_trace, write_trace

        print()
        print(render_trace(tracer.root, top=args.top))
        if args.trace:
            write_trace(tracer, args.trace)
            print(f"trace written to {args.trace}")
    if metrics is not None:
        from repro.obs import write_metrics

        fmt = write_metrics(metrics, args.metrics_out)
        print(f"metrics ({fmt}) written to {args.metrics_out}")
    if report.failures:
        print(
            f"degraded run: {len(report.failures)} task(s) failed or were "
            f"skipped; plan confidence: "
            + ", ".join(f"{k}={v}" for k, v in sorted(report.plan_confidence.items()))
        )
        return 1
    return 0


def _cmd_suite(args) -> int:
    if args.number is not None:
        wfcase = _case(args.number)
        workflow = wfcase.build()
        print(f"wf{wfcase.number:02d} {wfcase.name}: {wfcase.description}")
        print(workflow.describe())
        print()
        print(analyze(workflow).describe())
        return 0
    for wfcase in suite():
        analysis = analyze(wfcase.build())
        arities = "/".join(str(b.n_way) for b in analysis.blocks)
        print(
            f"wf{wfcase.number:02d} {wfcase.name:24s} "
            f"blocks={len(analysis.blocks)} arities={arities:8s} "
            f"{wfcase.description}"
        )
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import (
        SuiteContext,
        data_characteristics_rows,
        fig9_rows,
        fig10_rows,
        fig11_rows,
        fig12_rows,
        format_rows,
    )

    if args.figure == "data":
        header, rows = data_characteristics_rows()
    else:
        context = SuiteContext.build(args.workflows)
        if args.figure == "fig9":
            header, rows = fig9_rows(context)
        elif args.figure == "fig10":
            header, rows = fig10_rows(context, time_limit=args.time_limit)
        elif args.figure == "fig11":
            header, rows = fig11_rows(context, time_limit=args.time_limit)
        else:
            header, rows = fig12_rows(context)
    print(format_rows(header, rows))
    return 0


def _cmd_export(args) -> int:
    workflow = _case(args.number).build()
    if args.format == "xml":
        print(workflow_to_xml(workflow))
    else:
        print(workflow_to_json(workflow))
    return 0


# ---------------------------------------------------------------------------
# catalog command group
# ---------------------------------------------------------------------------


def _cmd_catalog_show(args) -> int:
    catalog = _open_catalog(args.path, must_exist=True)
    print(catalog.describe(stale_only=args.stale))
    return 0


def _cmd_catalog_gc(args) -> int:
    catalog = _open_catalog(args.path, must_exist=True)
    before = len(catalog.entries)
    removed = catalog.gc(
        ttl=args.ttl,
        min_quality=args.min_quality,
        drop_stale=not args.keep_stale,
    )
    # merge=False: a merging save would re-adopt the just-dropped entries
    # from the on-disk file and undo the collection
    try:
        catalog.save(merge=False)
    except OSError as exc:
        raise CliError(f"cannot write catalog {args.path}: {exc}") from exc
    print(f"gc: removed {removed} of {before} entries, {len(catalog.entries)} kept")
    return 0


def _cmd_catalog_export(args) -> int:
    import json as _json

    catalog = _open_catalog(args.path, must_exist=True)
    print(_json.dumps(catalog.to_dict(), indent=1, sort_keys=True))
    return 0


def _cmd_catalog_import(args) -> int:
    catalog = _open_catalog(args.path)
    imported = 0
    if args.stats:
        # sign a persisted statistics store against a suite workflow --
        # the Section 6.2 "pre-existing source statistics" entry point
        if args.number is None:
            raise CliError("--stats needs --number to sign the statistics")
        from repro.catalog import SignatureError, WorkflowSigner
        from repro.core.persistence import load_statistics

        wfcase = _case(args.number)
        signer = WorkflowSigner(analyze(wfcase.build()))
        store = load_statistics(args.stats)
        for stat, value in store.items():
            try:
                key = signer.statistic_key(stat)
                se_key = signer.se_key(stat.se)
            except SignatureError as exc:
                raise CliError(
                    f"statistic {stat!r} does not belong to workflow "
                    f"wf{args.number:02d}: {exc}"
                ) from exc
            catalog.record(
                key, se_key, stat, value,
                workflow=f"wf{wfcase.number:02d}", run_id="import",
            )
            imported += 1
    for source in args.sources:
        imported += catalog.merge(_open_catalog(source, must_exist=True))
    try:
        catalog.save()
    except OSError as exc:
        raise CliError(f"cannot write catalog {args.path}: {exc}") from exc
    print(f"imported {imported} entries; catalog has {len(catalog.entries)}")
    return 0


def _cmd_catalog_plan_fleet(args) -> int:
    from repro.catalog import plan_fleet

    catalog = _open_catalog(args.path) if args.path else None
    numbers = args.numbers or [c.number for c in suite()]
    workflows = [_case(n).build() for n in numbers]
    plan = plan_fleet(workflows, catalog, solver=args.solver)
    print(plan.describe())
    return 0


# ---------------------------------------------------------------------------
# catalog server
# ---------------------------------------------------------------------------


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.core.persistence import PersistenceError
    from repro.serve.server import make_server

    try:
        server = make_server(
            args.listen,
            args.catalog,
            wal_path=args.wal,
            log_path=args.log,
            snapshot_every=args.snapshot_every,
            snapshot_interval=args.snapshot_interval,
            gc_interval=args.gc_interval,
            lease_ttl=args.lease_ttl,
            fsync=not args.no_fsync,
            replicate_from=args.replicate_from,
            auto_promote_after=args.auto_promote_after,
        )
    except (OSError, PersistenceError) as exc:
        raise CliError(f"cannot start catalog server: {exc}") from exc
    service = server.service
    print(
        f"catalog server [{service.role}]: {args.listen} serving "
        f"{args.catalog} ({len(service.all_entries())} entries, "
        f"{service.replayed_records} WAL record(s) replayed)",
        flush=True,
    )

    def _term(signum, frame):
        # SIGTERM drains gracefully: stop accepting, let in-flight
        # requests finish replying, take a final snapshot, release the
        # WAL lock, exit 0.  shutdown() blocks until serve_forever
        # returns, so it must not run on this (main) thread's signal
        # frame -- hand it to a helper and fall through to the drain.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.drain(10.0)
        server.server_close()
        server.shutdown_service()
    print("catalog server stopped: snapshot taken, WAL truncated")
    return 0


# ---------------------------------------------------------------------------
# quality command group
# ---------------------------------------------------------------------------


def _cmd_quality_infer(args) -> int:
    from repro.quality import ContractSet

    wfcase = _case(args.number)
    sources = wfcase.tables(scale=args.scale, seed=args.seed)
    contracts = ContractSet.infer(sources)
    contracts.save(args.out)
    print(
        f"contracts for wf{wfcase.number:02d} ({len(contracts)} "
        f"source(s)) inferred and saved to {args.out}"
    )
    print(contracts.describe())
    return 0


def _cmd_quality_report(args) -> int:
    from repro.quality import QuarantineStore

    store = QuarantineStore.load_dir(args.directory)
    print(store.describe())
    return 0


# ---------------------------------------------------------------------------
# trace command group
# ---------------------------------------------------------------------------


def _cmd_trace_show(args) -> int:
    from repro.obs import load_trace, render_trace

    doc = load_trace(args.path)
    header = []
    if doc.workflow:
        header.append(doc.workflow)
    if doc.run_id:
        header.append(f"run {doc.run_id}")
    if header:
        print(f"trace of {' '.join(header)} ({args.path})")
    print(render_trace(doc.root, top=args.top, verbose=args.verbose))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro-etl argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro-etl",
        description="Essential-statistics identification for ETL workflows "
        "(EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="decompose a workflow into blocks")
    p.add_argument("workflow", help="path to a .json or .xml workflow export")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("identify", help="select the optimal statistics set")
    p.add_argument("workflow")
    p.add_argument("--solver", choices=("ilp", "greedy"), default="ilp")
    p.add_argument("--time-limit", type=float, default=30.0)
    p.add_argument("--no-union-division", action="store_true")
    p.add_argument("--no-fk", action="store_true")
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="observation-memory budget; schedules multiple executions "
        "when the optimum does not fit (Section 6.1)",
    )
    p.add_argument(
        "--catalog",
        default=None,
        metavar="CATALOG.JSON",
        help="shared statistics catalog; entries it covers enter the "
        "selection problem at zero cost (Section 6.2)",
    )
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_identify)

    p = sub.add_parser(
        "run", help="execute a suite workflow on a chosen backend"
    )
    p.add_argument("--number", type=int, required=True)
    p.add_argument(
        "--backend",
        choices=available_backends(),
        default="columnar",
        help="execution backend for the instrumented run",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel block-scheduler width (1 = serial)",
    )
    p.add_argument(
        "--distinct-sketch",
        choices=("exact", "hll"),
        default="exact",
        help="distinct-tap implementation: exact value sets (default) or "
        "mergeable HyperLogLog sketches",
    )
    p.add_argument(
        "--sketch-precision",
        type=int,
        default=None,
        help="HLL precision p (2^p one-byte registers); requires "
        "--distinct-sketch hll",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="row shards per block for the multiprocess backend "
        "(implies --backend multiprocess)",
    )
    p.add_argument(
        "--no-compile",
        action="store_true",
        help="skip plan compilation and run the backend's interpreter",
    )
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--solver", choices=("ilp", "greedy"), default="greedy")
    p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC.JSON",
        help="fault-injection plan for a deterministic chaos run",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retries per block for transient failures (exponential backoff)",
    )
    p.add_argument(
        "--block-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt deadline; a hung block counts as a transient failure",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="CHECKPOINT.JSON",
        help="run-checkpoint file: progress is journaled here after every "
        "block, and an existing file resumes the run (finished blocks are "
        "restored, not re-executed)",
    )
    p.add_argument(
        "--prior-stats",
        default=None,
        metavar="STATS.JSON",
        help="previous run's persisted statistics, used to backfill "
        "estimates for blocks that permanently fail",
    )
    p.add_argument(
        "--save-stats",
        default=None,
        metavar="STATS.JSON",
        help="persist tonight's observed statistics here (feed them back "
        "via --prior-stats on a later run)",
    )
    p.add_argument(
        "--catalog",
        default=None,
        metavar="CATALOG.JSON|URL",
        help="shared statistics catalog: covered statistics are consumed "
        "at zero cost instead of re-observed; the run reconciles "
        "(drift-checks) and saves the catalog afterwards.  A "
        "http://host:port or unix:///path.sock URL talks to a "
        "`repro-etl serve` daemon instead of a local file; a "
        "comma-separated URL list (primary,standby,...) fails writes "
        "over to whichever endpoint is primary",
    )
    p.add_argument(
        "--catalog-fallback",
        default=None,
        metavar="CATALOG.JSON",
        help="local catalog file a URL --catalog degrades to when the "
        "server is unreachable (the run completes either way)",
    )
    p.add_argument(
        "--contracts",
        default=None,
        metavar="CONTRACTS.JSON",
        help="source-contract file arming the data-quality gate; a missing "
        "file is bootstrapped by inferring contracts from tonight's "
        "sources and saving them here",
    )
    p.add_argument(
        "--quarantine-dir",
        default=None,
        metavar="DIR",
        help="write one dead-letter artifact per unclean source here "
        "(inspect with `repro-etl quality report`); needs --contracts",
    )
    p.add_argument(
        "--on-drift",
        choices=("strict", "coerce", "ignore-extra"),
        default=None,
        help="schema-drift policy for contracted sources "
        "(default: coerce)",
    )
    p.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="TRACE.JSON",
        help="record a span tree for the run and render it; with a path, "
        "also persist it for `repro-etl trace show`",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="OUT",
        help="export the run's metric series here (Prometheus text for "
        ".prom/.txt/.metrics suffixes, JSON otherwise)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=5,
        help="rows in the slowest-blocks / worst-estimates tables (--trace)",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("suite", help="describe the 30-workflow benchmark")
    p.add_argument("--number", type=int, default=None)
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("experiments", help="regenerate a Section 7 figure")
    p.add_argument(
        "figure", choices=("data", "fig9", "fig10", "fig11", "fig12")
    )
    p.add_argument("--time-limit", type=float, default=15.0)
    p.add_argument(
        "--workflows",
        type=int,
        nargs="*",
        default=None,
        help="restrict to these workflow numbers",
    )
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("export", help="dump a suite workflow as json/xml")
    p.add_argument("--number", type=int, required=True)
    p.add_argument("--format", choices=("json", "xml"), default="json")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser(
        "serve",
        help="run the crash-safe statistics-catalog server "
        "(point clients at it with `run --catalog URL`)",
    )
    p.add_argument(
        "--listen",
        default="127.0.0.1:8642",
        metavar="HOST:PORT|unix:///PATH.sock",
        help="address to serve on (unix sockets give the lowest latency)",
    )
    p.add_argument(
        "--catalog",
        required=True,
        metavar="CATALOG.JSON",
        help="the catalog snapshot file; created if missing",
    )
    p.add_argument(
        "--wal",
        default=None,
        metavar="WAL",
        help="write-ahead log path (default: <catalog>.wal)",
    )
    p.add_argument(
        "--log",
        default=None,
        metavar="LOG",
        help="append request/error lines to this file",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="write-behind snapshot + WAL truncation cadence in records",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="writer-lease lifetime before another client may take over",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-record fsync (faster, loses crash durability)",
    )
    p.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="background snapshot+GC daemon cadence (default 30s); the "
        "write path only flags snapshot debt, the daemon pays it",
    )
    p.add_argument(
        "--gc-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire aged catalog entries on the snapshot daemon at this "
        "cadence (primary only; default: never)",
    )
    p.add_argument(
        "--replicate-from",
        default=None,
        metavar="URL",
        help="start as a warm standby of this primary: tail its WAL "
        "stream, answer reads, refuse writes with a redirect, and "
        "promote (epoch-fenced) if the primary goes silent",
    )
    p.add_argument(
        "--auto-promote-after",
        type=int,
        default=None,
        metavar="N",
        help="standby self-promotes after N consecutive failed stream "
        "polls (0 disables; promotion then needs POST /promote)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "catalog", help="manage the shared cross-workflow statistics catalog"
    )
    catalog_sub = p.add_subparsers(dest="catalog_command", required=True)

    c = catalog_sub.add_parser("show", help="list entries with provenance")
    c.add_argument("path", help="catalog file")
    c.add_argument("--stale", action="store_true", help="stale entries only")
    c.set_defaults(fn=_cmd_catalog_show)

    c = catalog_sub.add_parser(
        "gc", help="drop expired, stale and low-quality entries"
    )
    c.add_argument("path")
    c.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="expire entries older than this (default: the catalog TTL)",
    )
    c.add_argument(
        "--min-quality", type=float, default=None, metavar="Q",
        help="drop entries whose quality score is below Q",
    )
    c.add_argument(
        "--keep-stale", action="store_true",
        help="keep drift-marked entries (they still never match lookups)",
    )
    c.set_defaults(fn=_cmd_catalog_gc)

    c = catalog_sub.add_parser(
        "export", help="print the deterministic catalog document"
    )
    c.add_argument("path")
    c.set_defaults(fn=_cmd_catalog_export)

    c = catalog_sub.add_parser(
        "import", help="merge other catalogs or sign a statistics file in"
    )
    c.add_argument("path", help="destination catalog file")
    c.add_argument(
        "sources", nargs="*", help="other catalog files to merge in"
    )
    c.add_argument(
        "--stats", default=None, metavar="STATS.JSON",
        help="a persisted statistics store (from `run --save-stats`) to "
        "sign into the catalog; needs --number",
    )
    c.add_argument(
        "--number", type=int, default=None,
        help="suite workflow the --stats file was observed on",
    )
    c.set_defaults(fn=_cmd_catalog_import)

    c = catalog_sub.add_parser(
        "plan-fleet",
        help="one combined nightly observation plan across suite workflows",
    )
    c.add_argument(
        "path", nargs="?", default=None,
        help="catalog file contributing zero-cost entries (optional)",
    )
    c.add_argument(
        "--numbers", type=int, nargs="*", default=None,
        help="suite workflow numbers (default: all 30)",
    )
    c.add_argument("--solver", choices=("ilp", "greedy"), default="greedy")
    c.set_defaults(fn=_cmd_catalog_plan_fleet)

    p = sub.add_parser(
        "quality", help="source contracts and quarantine dead letters"
    )
    quality_sub = p.add_subparsers(dest="quality_command", required=True)

    q = quality_sub.add_parser(
        "infer", help="bootstrap contracts from a suite workflow's sources"
    )
    q.add_argument("--number", type=int, required=True)
    q.add_argument("--scale", type=float, default=0.1)
    q.add_argument("--seed", type=int, default=7)
    q.add_argument(
        "--out", required=True, metavar="CONTRACTS.JSON",
        help="where to save the inferred contract set",
    )
    q.set_defaults(fn=_cmd_quality_infer)

    q = quality_sub.add_parser(
        "report", help="summarize a quarantine dead-letter directory"
    )
    q.add_argument(
        "directory", help="directory written by `run --quarantine-dir`"
    )
    q.set_defaults(fn=_cmd_quality_report)

    p = sub.add_parser("trace", help="inspect persisted run traces")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    t = trace_sub.add_parser(
        "show", help="render a trace file as an indented span tree"
    )
    t.add_argument("path", help="trace file written by `run --trace`")
    t.add_argument(
        "--top",
        type=int,
        default=5,
        help="rows in the slowest-blocks / worst-estimates tables",
    )
    t.add_argument(
        "--verbose", action="store_true",
        help="show every operator point (no per-block elision)",
    )
    t.set_defaults(fn=_cmd_trace_show)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (CliError, FaultError, PersistenceError, QualityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # the reader went away (e.g. piped into `head`); exit quietly --
        # point stdout at devnull so the interpreter's final flush does
        # not raise a second time
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
