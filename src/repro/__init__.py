"""repro -- essential statistics for cost-based ETL workflow optimization.

A faithful, executable reproduction of *"Determining Essential Statistics
for Cost Based Optimization of an ETL Workflow"* (EDBT 2014): given an ETL
workflow that runs repeatedly, determine the cheapest set of statistics to
observe during one run so that a cost-based optimizer can cost **every**
alternative plan for all subsequent runs.

Typical entry points:

- build a workflow DAG with :class:`Catalog`, :class:`Source`,
  :class:`Join`, :class:`Filter`, :class:`Transform`, :class:`Aggregate`,
  :class:`Target` and wrap it in :class:`Workflow`;
- run the whole Figure-2 loop with :class:`StatisticsPipeline` /
  :class:`EtlSession`;
- or drive the stages directly: :func:`analyze` (optimizable blocks),
  :func:`generate_css` (Algorithm 1), :func:`build_problem` +
  :func:`solve_ilp` / :func:`solve_greedy` (Section 5),
  :class:`~repro.engine.instrumentation.TapSet` +
  :class:`~repro.engine.executor.Executor` (instrumented runs), and
  :class:`~repro.estimation.estimator.CardinalityEstimator` +
  :class:`~repro.estimation.optimizer.PlanOptimizer` (Step 7).
"""

from repro.algebra.blocks import Block, BlockAnalysis, analyze
from repro.algebra.expressions import RejectJoinSE, RejectSE, SubExpression
from repro.algebra.operators import (
    Aggregate,
    AggregateUDF,
    Filter,
    Join,
    Materialize,
    Predicate,
    Project,
    Source,
    Target,
    Transform,
    UdfSpec,
    Workflow,
)
from repro.algebra.schema import Catalog
from repro.catalog import (
    StatisticsCatalog,
    WorkflowSigner,
    plan_fleet,
    reconcile_run,
)
from repro.core.costs import CostModel
from repro.core.css import CSS, CssCatalog
from repro.core.generator import GeneratorOptions, generate_css
from repro.core.greedy import solve_greedy
from repro.core.histogram import Histogram
from repro.core.ilp import solve_ilp
from repro.core.persistence import SessionState, load_statistics, save_statistics
from repro.core.resource import ConstrainedSchedule, plan_constrained
from repro.core.selection import SelectionResult, build_problem
from repro.core.statistics import StatKind, Statistic, StatisticsStore
from repro.engine.backend import (
    BackendExecutor,
    ExecutionBackend,
    available_backends,
    get_backend,
)
from repro.engine.executor import Executor, WorkflowRun, execute_workflow
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.instrumentation import TapSet
from repro.engine.scheduler import ParallelScheduler, RetryPolicy, RunFailure
from repro.engine.table import Table
from repro.estimation.estimator import CardinalityEstimator
from repro.estimation.optimizer import PlanOptimizer, optimize_workflow
from repro.framework.pipeline import PipelineReport, StatisticsPipeline
from repro.framework.recovery import RunCheckpoint
from repro.framework.session import EtlSession

__version__ = "1.0.0"

__all__ = [
    "Aggregate", "AggregateUDF", "analyze", "available_backends",
    "BackendExecutor", "Block", "BlockAnalysis",
    "build_problem", "CardinalityEstimator", "Catalog",
    "ConstrainedSchedule", "CostModel", "CSS", "CssCatalog", "EtlSession",
    "execute_workflow", "ExecutionBackend", "Executor", "FaultPlan",
    "FaultSpec", "Filter",
    "generate_css", "get_backend", "ParallelScheduler",
    "GeneratorOptions", "Histogram", "Join", "Materialize",
    "optimize_workflow", "PipelineReport", "plan_constrained",
    "plan_fleet", "PlanOptimizer", "Predicate", "Project",
    "reconcile_run", "RejectJoinSE", "RejectSE",
    "RetryPolicy", "RunCheckpoint", "RunFailure",
    "save_statistics", "SelectionResult", "SessionState", "load_statistics",
    "solve_greedy", "solve_ilp", "Source", "StatKind",
    "Statistic", "StatisticsCatalog", "StatisticsPipeline",
    "StatisticsStore", "SubExpression",
    "Table", "TapSet", "Target", "Transform", "UdfSpec", "Workflow",
    "WorkflowRun", "WorkflowSigner",
]
