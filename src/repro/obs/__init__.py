"""Observability: structured run tracing and cross-run metrics.

The missing layer after PRs 1-3: the parallel backends, the fault-
tolerant scheduler and the shared statistics catalog all make decisions
mid-run (plan choice, retries, zero-cost catalog hits) that were
previously visible only as stdout prose.  This package records them as
data:

- :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.Span` --
  one span tree per run (phases, blocks, operators, taps, failures);
- :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges and
  histograms aggregated across the runs of a session;
- :mod:`repro.obs.export` -- atomic JSON and Prometheus-text artifacts
  with the repository's ``format_version`` conventions;
- :mod:`repro.obs.render` -- the ``repro-etl trace show`` rendering
  (span tree, slowest blocks, worst estimation errors);
- :func:`~repro.obs.record.record_run_metrics` -- the standard series
  recorded from every :class:`~repro.framework.pipeline.PipelineReport`.

Tracing is zero-cost when disabled: every hook takes ``tracer=None`` and
hot paths guard on it; :data:`~repro.obs.trace.NULL_TRACER` serves cold
paths that prefer unconditional calls.
"""

from repro.obs.export import (
    TraceDocument,
    load_trace,
    trace_to_dict,
    write_metrics,
    write_metrics_json,
    write_metrics_prometheus,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.record import record_run_metrics
from repro.obs.render import estimation_errors, render_trace, render_tree, slowest
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceDocument",
    "Tracer",
    "as_tracer",
    "estimation_errors",
    "load_trace",
    "record_run_metrics",
    "render_trace",
    "render_tree",
    "slowest",
    "trace_to_dict",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_trace",
]
