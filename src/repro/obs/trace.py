"""Structured run tracing: a span tree per observe-and-optimize cycle.

The paper's framework (Figure 2) chains workflow analysis -> SE/CSS
enumeration -> statistics selection -> instrumented execution -> catalog
reconciliation -> re-optimization.  Each of those stages has its own
failure and performance modes, and after the parallel backends (PR 1),
the fault-tolerant scheduler (PR 2) and the shared statistics catalog
(PR 3) a single run touches all of them.  A :class:`Tracer` records the
whole cycle as one tree of :class:`Span` objects:

- **phase spans** -- enumerate / selection / execution / reconcile /
  optimization, opened by the pipeline;
- **block and boundary spans** -- one per scheduled task, opened by the
  scheduler, annotated with attempts, retries, timeouts and failure
  kinds;
- **operator points** -- zero-duration child spans for every plan point a
  block materializes, carrying the actual row count, the estimated row
  count when a prior prediction existed (previous cycle or catalog), and
  whether a tap fired there;
- **catalog annotations** -- hits consumed at zero cost, entries
  refreshed, SEs drifted.

Tracing is strictly opt-in and zero-cost when off: every integration
point takes ``tracer=None`` by default and guards its hot-path work with
``tracer is None or not tracer.enabled``.  The :class:`NullTracer`
singleton (:data:`NULL_TRACER`) carries ``enabled = False`` and turns
every call into a no-op returning :data:`NULL_SPAN`, so cold paths may
call it unconditionally.

Clocks are injectable: ``clock`` supplies monotonic span timings and
``wall_clock`` the document timestamp, so tests drive traces with fake
clocks and assert exact durations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: version written into exported trace documents (see repro.obs.export)
TRACE_FORMAT_VERSION = 1


class Span:
    """One timed node of the trace tree.

    ``kind`` classifies the node (``run``, ``phase``, ``block``,
    ``boundary``, ``operator``, ``failure`` ...); ``attrs`` is a flat
    JSON-able annotation dict.  ``end`` stays ``None`` until the span is
    closed; operator *points* are instant (``end == start``).
    """

    __slots__ = ("name", "kind", "start", "end", "attrs", "children")

    def __init__(
        self,
        name: str,
        kind: str = "phase",
        start: float = 0.0,
        attrs: dict | None = None,
    ):
        self.name = name
        self.kind = kind
        self.start = start
        self.end: float | None = None
        self.attrs: dict = attrs or {}
        self.children: list[Span] = []

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str | None = None, name: str | None = None) -> list["Span"]:
        """Descendant spans (including self) matching kind and/or name."""
        return [
            span
            for span in self.walk()
            if (kind is None or span.kind == kind)
            and (name is None or span.name == name)
        ]

    def first(self, kind: str | None = None, name: str | None = None) -> "Span | None":
        matches = self.find(kind=kind, name=name)
        return matches[0] if matches else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        from repro.core.persistence import PersistenceError

        if not isinstance(doc, dict) or "name" not in doc:
            raise PersistenceError(
                f"corrupt trace span: expected an object with a name, "
                f"got {doc!r}"
            )
        span = cls(
            str(doc["name"]),
            kind=str(doc.get("kind", "phase")),
            start=float(doc.get("start", 0.0)),
            attrs=dict(doc.get("attrs", {})),
        )
        end = doc.get("end")
        span.end = None if end is None else float(end)
        span.children = [cls.from_dict(c) for c in doc.get("children", [])]
        return span

    def __repr__(self) -> str:
        ms = self.duration * 1e3
        return f"Span({self.kind}:{self.name}, {ms:.2f}ms, {len(self.children)} child)"


class Tracer:
    """Builds one span tree per run; thread-safe, thread-aware parenting.

    Spans opened on a scheduler worker thread parent under whatever span
    that thread last activated (:meth:`activate` / :meth:`start`), so a
    block's operator points land under the block's task span even though
    the pipeline's execution phase span was opened on the main thread.
    """

    #: hot paths check this before doing any tracing work
    enabled = True

    def __init__(
        self,
        name: str = "run",
        clock: Callable[[], float] = time.perf_counter,
        wall_clock: Callable[[], float] = time.time,
        **attrs,
    ):
        self.clock = clock
        self.started_at = wall_clock()
        self.root = Span(name, kind="run", start=clock(), attrs=dict(attrs))
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span:
        """The innermost open span on this thread (the root otherwise)."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    # ------------------------------------------------------------------
    def start(self, name: str, kind: str = "phase", parent: Span | None = None,
              **attrs) -> Span:
        """Open a span under ``parent`` (default: this thread's current)."""
        parent = parent if parent is not None else self.current()
        span = Span(name, kind=kind, start=self.clock(), attrs=attrs)
        with self._lock:
            parent.children.append(span)
        self._stack().append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        span.end = self.clock()
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        return span

    @contextmanager
    def span(self, name: str, kind: str = "phase", parent: Span | None = None,
             **attrs) -> Iterator[Span]:
        span = self.start(name, kind=kind, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def point(self, name: str, kind: str = "operator",
              parent: Span | None = None, **attrs) -> Span:
        """An instant child span (start == end); never pushed on the stack."""
        parent = parent if parent is not None else self.current()
        now = self.clock()
        span = Span(name, kind=kind, start=now, attrs=attrs)
        span.end = now
        with self._lock:
            parent.children.append(span)
        return span

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` this thread's current parent without re-timing it."""
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            if stack and stack[-1] is span:
                stack.pop()

    # ------------------------------------------------------------------
    def finish(self, **attrs) -> Span:
        """Close the root span (idempotent) and return it."""
        if self.root.end is None or attrs:
            self.root.end = self.clock()
            self.root.attrs.update(attrs)
        return self.root

    def find(self, kind: str | None = None, name: str | None = None) -> list[Span]:
        return self.root.find(kind=kind, name=name)

    def to_dict(self) -> dict:
        """The exportable trace document (see :mod:`repro.obs.export`)."""
        self.finish()
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "kind": "trace",
            "started_at": self.started_at,
            "root": self.root.to_dict(),
        }


class _NullSpan(Span):
    """The do-nothing span every :class:`NullTracer` call returns."""

    __slots__ = ()

    def __init__(self):
        super().__init__("null", kind="null")

    def annotate(self, **attrs) -> "Span":
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer whose every operation is a no-op.

    ``enabled`` is False, so hot paths skip their annotation work
    entirely; cold paths may still call any :class:`Tracer` method --
    everything returns :data:`NULL_SPAN` and records nothing.
    """

    enabled = False

    def __init__(self):  # deliberately no per-instance state
        pass

    @property
    def root(self) -> Span:  # type: ignore[override]
        return NULL_SPAN

    def current(self) -> Span:
        return NULL_SPAN

    def start(self, name, kind="phase", parent=None, **attrs) -> Span:
        return NULL_SPAN

    def end(self, span, **attrs) -> Span:
        return NULL_SPAN

    @contextmanager
    def span(self, name, kind="phase", parent=None, **attrs) -> Iterator[Span]:
        yield NULL_SPAN

    def point(self, name, kind="operator", parent=None, **attrs) -> Span:
        return NULL_SPAN

    @contextmanager
    def activate(self, span) -> Iterator[Span]:
        yield NULL_SPAN

    def finish(self, **attrs) -> Span:
        return NULL_SPAN

    def find(self, kind=None, name=None) -> list[Span]:
        return []

    def to_dict(self) -> dict:
        raise ValueError("a NullTracer records nothing; there is no trace")


NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | None") -> Tracer:
    """``tracer`` itself, or the shared no-op tracer for ``None``.

    Lets cold-path code call tracer methods unconditionally while hot
    paths keep the cheaper ``tracer is None`` guard.
    """
    return tracer if tracer is not None else NULL_TRACER


__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "as_tracer",
]
