"""Standard metric names, recorded from one pipeline report.

One place defines what the framework exports, so the single-run CLI path
(``repro-etl run --metrics-out``) and the multi-run
:class:`~repro.framework.session.EtlSession` aggregate the *same* series
and dashboards built against one work against the other.

Everything is duck-typed against
:class:`~repro.framework.pipeline.PipelineReport` to keep this module
import-light (the pipeline imports :mod:`repro.obs`, not vice versa).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: bucket bounds for relative estimation error (unitless ratios)
ERROR_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0)


def record_run_metrics(
    registry: MetricsRegistry,
    report,
    workflow: str = "",
    backend: str = "",
) -> None:
    """Fold one observe-and-optimize cycle into the registry.

    Counters: ``etl_runs_total``, ``etl_run_failures_total`` (labelled by
    failure kind), ``etl_statistics_tapped_total``,
    ``etl_catalog_hits_total``, ``etl_plans_improved_total``,
    ``etl_rows_quarantined_total`` (per source) and
    ``etl_schema_drift_events_total`` (per source and drift kind).  Gauges:
    ``etl_plan_cost``, ``etl_selection_cost``.  Histograms:
    ``etl_phase_seconds`` (labelled by phase) and, when the report's
    trace carries estimated-vs-actual rows, ``etl_estimation_rel_error``.
    A sharded run additionally exports the ``etl_shard_*`` series
    (shard count, dispatched/retried tasks, merged rows, shm bytes).
    """
    labels = {}
    if workflow:
        labels["workflow"] = workflow
    if backend:
        labels["backend"] = backend

    registry.counter(
        "etl_runs_total", "observe-and-optimize cycles completed"
    ).inc(**labels)
    if report.failures:
        failures = registry.counter(
            "etl_run_failures_total", "failed or skipped tasks across runs"
        )
        for failure in report.failures.values():
            failures.inc(kind=failure.kind, **labels)
    registry.counter(
        "etl_statistics_tapped_total", "statistics instrumented fresh"
    ).inc(len(report.tapped), **labels)
    if report.catalog_hits:
        registry.counter(
            "etl_catalog_hits_total",
            "statistics consumed from the shared catalog at zero cost",
        ).inc(report.catalog_hits, **labels)
    improved = sum(1 for plan in report.plans.values() if plan.improved)
    if improved:
        registry.counter(
            "etl_plans_improved_total", "blocks whose plan changed"
        ).inc(improved, **labels)
    if getattr(report, "catalog_degraded", False):
        registry.counter(
            "etl_catalog_degraded_total",
            "runs that lost the catalog server and fell back to local state",
        ).inc(**labels)
    failovers = getattr(report, "catalog_failovers", 0)
    if failovers:
        registry.counter(
            "catalog_failovers_total",
            "catalog endpoint failovers the HA client performed",
        ).inc(failovers, **labels)

    # plan-compilation cache activity (per-cycle deltas from the report, so
    # a shared long-lived cache still yields per-run series)
    for field_name, metric, help_text in (
        ("plan_cache_hits", "etl_plan_cache_hits_total",
         "compiled block programs reused from the plan cache"),
        ("plan_cache_misses", "etl_plan_cache_misses_total",
         "blocks lowered because no cached program matched"),
        ("plan_cache_invalidations", "etl_plan_cache_invalidations_total",
         "cached programs evicted by schema drift"),
    ):
        amount = getattr(report, field_name, 0)
        if amount:
            registry.counter(metric, help_text).inc(amount, **labels)

    # sharded execution (multiprocess backend): empty dict for the
    # single-process backends, so these series only exist when sharding ran
    shard_stats = getattr(report, "shard_stats", None)
    if shard_stats:
        registry.gauge(
            "etl_shard_count", "row shards per block in the last sharded run"
        ).set(shard_stats.get("shards", 0), **labels)
        registry.gauge(
            "etl_shard_shm_bytes",
            "shared-memory bytes shipped to workers in the last run",
        ).set(shard_stats.get("shm_bytes", 0), **labels)
        for field_name, metric, help_text in (
            ("tasks", "etl_shard_tasks_total",
             "shard tasks dispatched to worker processes"),
            ("retries", "etl_shard_retries_total",
             "shard tasks re-dispatched after a worker died or hung"),
            ("rows_out", "etl_shard_rows_total",
             "block output rows merged back from shard workers"),
        ):
            amount = shard_stats.get(field_name, 0)
            if amount:
                registry.counter(metric, help_text).inc(amount, **labels)

    registry.gauge(
        "etl_plan_cost", "total estimated cost of the chosen plans"
    ).set(report.total_estimated_cost, **labels)
    registry.gauge(
        "etl_selection_cost", "observation cost of the selected statistics"
    ).set(report.selection.total_cost, **labels)

    phases = registry.histogram(
        "etl_phase_seconds", "wall time per pipeline phase"
    )
    for phase, seconds in report.timings.items():
        phases.observe(seconds, phase=phase, **labels)

    quarantined = getattr(report, "quarantined", None)
    if quarantined:
        rows = registry.counter(
            "etl_rows_quarantined_total",
            "source rows diverted to dead-letter tables by contracts",
        )
        for source, table in sorted(quarantined.items()):
            rows.inc(table.num_rows, source=source, **labels)
    schema_drift = getattr(report, "schema_drift", None)
    if schema_drift:
        events = registry.counter(
            "etl_schema_drift_events_total",
            "schema drift events resolved by the quality gate",
        )
        for event in schema_drift:
            events.inc(source=event.source, kind=event.kind, **labels)

    # distinct-sketch taps (mode "hll"): accumulator bytes the run held,
    # and catalog corrections the feedback loop applied
    if getattr(report, "sketch_mode", "exact") != "exact":
        registry.gauge(
            "etl_sketch_bytes",
            "distinct-sketch accumulator bytes held/shipped by the last run",
        ).set(getattr(report, "sketch_bytes", 0), **labels)
    corrections = getattr(report, "corrections", 0)
    if corrections:
        registry.counter(
            "etl_catalog_corrections_total",
            "catalog entries corrected in place by the feedback loop",
        ).inc(corrections, **labels)

    drift = getattr(report, "drift", None)
    if drift is not None:
        registry.counter(
            "etl_catalog_refreshed_total", "catalog entries refreshed by runs"
        ).inc(len(drift.refreshed) + len(drift.added), **labels)
        if drift.drifted:
            registry.counter(
                "etl_catalog_drifted_total", "SEs whose catalog prediction drifted"
            ).inc(len(drift.drifted), **labels)

    trace = getattr(report, "trace", None)
    if trace is not None and getattr(trace, "enabled", False):
        from repro.obs.render import estimation_errors

        errors = registry.histogram(
            "etl_estimation_rel_error",
            "relative error of prior row predictions vs observed rows",
            buckets=ERROR_BUCKETS,
        )
        for err, _span in estimation_errors(trace.root):
            errors.observe(err, **labels)


__all__ = ["ERROR_BUCKETS", "record_run_metrics"]
