"""Human-readable rendering of a run trace.

``repro-etl trace show`` turns a persisted span tree back into the
operator's view of a run: the indented phase/block/operator tree with
durations and row counts, the top-N slowest blocks (where the night's
wall time went), and the worst estimation errors (which plan points the
optimizer mispredicted -- the signal that a join is being costed from a
drifted or missing statistic).
"""

from __future__ import annotations

from repro.obs.trace import Span

#: operator points below a phase are elided beyond this many per parent
#: unless ``verbose`` rendering is requested
MAX_OPERATORS_SHOWN = 8


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def _span_suffix(span: Span) -> str:
    parts = []
    rows = span.attrs.get("rows")
    if rows is not None:
        parts.append(f"rows={rows:g}" if isinstance(rows, float) else f"rows={rows}")
    est = span.attrs.get("estimated_rows")
    if est is not None:
        parts.append(f"est={est:g}")
    tapped = span.attrs.get("tapped")
    if tapped:
        # operator points carry a boolean flag; the selection span a count
        parts.append("tapped" if tapped is True else f"tapped={tapped}")
    attempts = span.attrs.get("attempts")
    if attempts is not None and attempts != 1:
        parts.append(f"attempts={attempts}")
    outcome = span.attrs.get("outcome")
    if outcome is not None and outcome != "ok":
        parts.append(f"outcome={outcome}")
    for key in ("method", "observed", "catalog_hits", "refreshed", "drifted"):
        value = span.attrs.get(key)
        if value not in (None, 0, ""):
            parts.append(f"{key}={value}")
    # compile-phase spans: always show hit/miss (0 is meaningful -- an
    # all-hits warm run has cache_misses=0 and that is the headline);
    # invalidations only when drift actually evicted something
    if span.name == "compile" and "cache_hits" in span.attrs:
        for key in ("fused_ops", "cache_hits", "cache_misses"):
            value = span.attrs.get(key)
            if value is not None:
                parts.append(f"{key}={value}")
        if span.attrs.get("cache_invalidations"):
            parts.append(
                f"cache_invalidations={span.attrs['cache_invalidations']}"
            )
    error = span.attrs.get("error")
    if error:
        parts.append(f"error={error}")
    return f"  [{', '.join(parts)}]" if parts else ""


def estimation_errors(root: Span) -> list[tuple[float, Span]]:
    """(relative error, span) for every point carrying est + actual rows.

    Relative error follows the drift detector's convention:
    ``|actual - estimated| / max(|estimated|, 1)``.
    """
    out = []
    for span in root.walk():
        est = span.attrs.get("estimated_rows")
        rows = span.attrs.get("rows")
        if est is None or rows is None:
            continue
        err = abs(float(rows) - float(est)) / max(abs(float(est)), 1.0)
        out.append((err, span))
    out.sort(key=lambda pair: (-pair[0], pair[1].name))
    return out


def slowest(root: Span, kind: str = "block", top: int = 5) -> list[Span]:
    """The ``top`` longest spans of the given kind, slowest first."""
    spans = [s for s in root.walk() if s.kind == kind]
    spans.sort(key=lambda s: (-s.duration, s.name))
    return spans[:top]


def render_tree(root: Span, verbose: bool = False) -> str:
    """The indented span tree with durations and annotations."""
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        duration = "" if span.end is None else f" {_fmt_ms(span.duration)}"
        if span.kind == "operator":
            duration = ""  # points are instant; the time lives on the block
        lines.append(
            f"{'  ' * depth}{span.kind}:{span.name}{duration}"
            f"{_span_suffix(span)}"
        )
        children = span.children
        if not verbose:
            operators = [c for c in children if c.kind == "operator"]
            if len(operators) > MAX_OPERATORS_SHOWN:
                keep = set(
                    id(s)
                    for _, s in estimation_errors(span)[:MAX_OPERATORS_SHOWN]
                )
                shown = 0
                pruned: list[Span] = []
                for child in children:
                    if child.kind != "operator":
                        pruned.append(child)
                    elif id(child) in keep or shown < MAX_OPERATORS_SHOWN:
                        pruned.append(child)
                        shown += 1
                elided = len(children) - len(pruned)
                children = pruned
                if elided:
                    children = children + [
                        Span(f"... {elided} more operator point(s)", kind="note")
                    ]
        for child in children:
            if child.kind == "note":
                lines.append(f"{'  ' * (depth + 1)}{child.name}")
            else:
                emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def render_trace(root: Span, top: int = 5, verbose: bool = False) -> str:
    """The full ``trace show`` document: tree + hotspots + misestimates."""
    lines = [render_tree(root, verbose=verbose)]

    blocks = slowest(root, kind="block", top=top)
    if blocks:
        lines.append("")
        lines.append(f"slowest blocks (top {min(top, len(blocks))}):")
        for span in blocks:
            lines.append(f"  {span.name}: {_fmt_ms(span.duration)}"
                         f"{_span_suffix(span)}")

    errors = [pair for pair in estimation_errors(root) if pair[0] > 0]
    if errors:
        lines.append("")
        lines.append(f"worst estimation errors (top {min(top, len(errors))}):")
        for err, span in errors[:top]:
            lines.append(
                f"  {span.name}: estimated {span.attrs['estimated_rows']:g} "
                f"rows, saw {span.attrs['rows']:g} "
                f"(rel. error {err:.2f})"
            )
    return "\n".join(lines) + "\n"


__all__ = [
    "MAX_OPERATORS_SHOWN",
    "estimation_errors",
    "render_trace",
    "render_tree",
    "slowest",
]
