"""Run metrics: counters, gauges and histograms aggregated across runs.

Where a trace (:mod:`repro.obs.trace`) answers "where did *this* run
spend its time", the :class:`MetricsRegistry` answers "how is the fleet
doing" -- it accumulates across every run of an
:class:`~repro.framework.session.EtlSession` (and across workflows when
sessions share a registry), in the three classic shapes:

- :class:`Counter` -- monotonically increasing totals (runs, failures,
  retries, catalog hits, statistics tapped);
- :class:`Gauge` -- last-written values (current drift, plan cost,
  catalog size);
- :class:`Histogram` -- bucketed distributions (phase latencies,
  estimation errors), with cumulative buckets in the Prometheus style.

All three support flat string labels (``counter.inc(workflow="wf03")``),
so one registry can serve many workflows.  Export goes two ways:
:meth:`MetricsRegistry.to_dict` for the versioned JSON document and
:meth:`MetricsRegistry.render_prometheus` for the text exposition format
scrape endpoints and ``promtool`` understand.

The registry is thread-safe (blocks execute on scheduler threads) and
deliberately dependency-free.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable

#: version written into exported metrics documents
METRICS_FORMAT_VERSION = 1

#: default latency buckets, in seconds (powers of ~4 from 1ms to 60s)
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

LabelKey = tuple[tuple[str, str], ...]


class MetricError(ValueError):
    """Raised for metric misuse (name reuse across types, bad values)."""


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = sorted((*key, *extra))
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Metric:
    """Shared naming/label plumbing for the three metric shapes."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def label_keys(self) -> list[LabelKey]:
        raise NotImplementedError

    def sample_lines(self) -> list[str]:
        """Prometheus exposition lines for every labelled sample."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total per label set."""

    type_name = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._samples: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name} can only increase (got {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._samples.values())

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._samples)

    def sample_lines(self) -> list[str]:
        return [
            f"{self.name}{_render_labels(key)} {value:g}"
            for key, value in sorted(self._samples.items())
        ]

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._samples.items())
            ],
        }


class Gauge(Metric):
    """A last-written value per label set."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._samples: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._samples)

    sample_lines = Counter.sample_lines
    to_dict = Counter.to_dict


class Histogram(Metric):
    """A cumulative-bucket distribution per label set."""

    type_name = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise MetricError(f"histogram {self.name} needs at least one bucket")
        # per label set: [per-bucket counts..., +Inf count], sum
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels) -> int:
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._counts)

    def sample_lines(self) -> list[str]:
        lines: list[str] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            running = 0
            for bound, n in zip(self.buckets, counts):
                running += n
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', f'{bound:g}'),))} {running}"
                )
            running += counts[-1]
            lines.append(
                f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} "
                f"{running}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{self._sums[key]:g}")
            lines.append(f"{self.name}_count{_render_labels(key)} {running}")
        return lines

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "help": self.help,
            "buckets": list(self.buckets),
            "samples": [
                {
                    "labels": dict(key),
                    "counts": list(self._counts[key]),
                    "sum": self._sums[key],
                }
                for key in sorted(self._counts)
            ],
        }


class MetricsRegistry:
    """Named metrics, created on first use, exported deterministically."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, expected_type: type) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, expected_type):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{metric.type_name}, not {expected_type.type_name}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda: Histogram(name, help, buckets), Histogram)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The versioned JSON metrics document."""
        return {
            "format_version": METRICS_FORMAT_VERSION,
            "kind": "metrics",
            "metrics": {m.name: m.to_dict() for m in self},
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4), sorted by name."""
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            lines.extend(metric.sample_lines())
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT_VERSION",
    "MetricError",
    "Metric",
    "MetricsRegistry",
]
