"""Exporters and loaders for traces and metrics.

Both artifact families ride on the persistence conventions every other
document in this repository follows (:mod:`repro.core.persistence`):
atomic rename-into-place writes, sorted keys for byte-stable diffs, a
``format_version`` field, and validating loaders that raise a one-line
:class:`~repro.core.persistence.PersistenceError` for missing, corrupt or
future-versioned files instead of a traceback deep in a renderer.

- traces   -> JSON (``write_trace`` / ``load_trace``), the document the
  ``repro-etl trace show`` command renders;
- metrics  -> JSON (``write_metrics_json``) or the Prometheus text
  exposition format (``write_metrics_prometheus``), picked by file
  extension in :func:`write_metrics`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.persistence import PersistenceError, atomic_write_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_FORMAT_VERSION, Span, Tracer

#: metrics file suffixes rendered as Prometheus text instead of JSON
PROMETHEUS_SUFFIXES = (".prom", ".txt", ".metrics")


@dataclass
class TraceDocument:
    """A loaded trace: the span tree plus its document metadata."""

    root: Span
    started_at: float = 0.0
    attrs: dict | None = None

    @property
    def workflow(self) -> str:
        return str(self.root.attrs.get("workflow", ""))

    @property
    def run_id(self) -> str:
        return str(self.root.attrs.get("run_id", ""))


def trace_to_dict(trace: "Tracer | Span") -> dict:
    """The exportable document for a tracer or a bare span tree."""
    if isinstance(trace, Tracer):
        return trace.to_dict()
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "kind": "trace",
        "started_at": 0.0,
        "root": trace.to_dict(),
    }


def write_trace(trace: "Tracer | Span", path: str | Path) -> None:
    """Persist a trace document atomically (sorted keys, rename in place)."""
    atomic_write_json(trace_to_dict(trace), path)


def _load_document(path: str | Path, kind: str, version: int) -> dict:
    try:
        text = Path(path).read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"cannot read {kind} file {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid {kind} file {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise PersistenceError(
            f"corrupt {kind} document: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
    got = doc.get("format_version")
    if not isinstance(got, int) or not 1 <= got <= version:
        raise PersistenceError(
            f"{kind} document has unsupported format_version {got!r}; "
            f"this build reads versions 1..{version}"
        )
    if doc.get("kind", kind) != kind:
        raise PersistenceError(
            f"{path} is a {doc.get('kind')!r} document, not a {kind}"
        )
    return doc


def load_trace(path: str | Path) -> TraceDocument:
    """Load and shape-check a persisted trace document."""
    doc = _load_document(path, "trace", TRACE_FORMAT_VERSION)
    if "root" not in doc:
        raise PersistenceError(f"corrupt trace document {path}: no root span")
    root = Span.from_dict(doc["root"])
    return TraceDocument(
        root=root,
        started_at=float(doc.get("started_at", 0.0)),
        attrs=dict(root.attrs),
    )


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> None:
    """Persist the versioned JSON metrics document atomically."""
    atomic_write_json(registry.to_dict(), path)


def _atomic_write_text(text: str, path: str | Path) -> None:
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_metrics_prometheus(registry: MetricsRegistry, path: str | Path) -> None:
    """Persist the Prometheus text exposition rendering atomically."""
    _atomic_write_text(registry.render_prometheus(), path)


def write_metrics(registry: MetricsRegistry, path: str | Path) -> str:
    """Write metrics in the format the file extension implies.

    ``.prom`` / ``.txt`` / ``.metrics`` get the Prometheus text format,
    anything else the JSON document.  Returns the format written.
    """
    if Path(path).suffix in PROMETHEUS_SUFFIXES:
        write_metrics_prometheus(registry, path)
        return "prometheus"
    write_metrics_json(registry, path)
    return "json"


__all__ = [
    "PROMETHEUS_SUFFIXES",
    "TraceDocument",
    "load_trace",
    "trace_to_dict",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_trace",
]
