"""Source contracts: what a source table is supposed to look like.

The paper's premise (Section 1) is that ETL sources are flat files and
foreign DBMSs *outside the engine's control* -- nothing guarantees that
tonight's extract has the declared columns, types, or value domains.  Yet
every statistic the framework taps (and every catalog entry it shares
fleet-wide) is observed over exactly those sources, so a single malformed
extract can silently poison the cost model for every workflow that trusts
the catalog.

A :class:`SourceContract` is the trust boundary: per-column expectations
(:class:`ColumnContract`: type, nullability, an optional domain predicate)
that the execution core checks *before* any observation point fires.  Rows
that violate the contract are diverted to a dead-letter table
(:mod:`repro.quality.quarantine`) instead of failing the block; structural
mismatches -- added/dropped/renamed/retyped columns -- are resolved by the
per-source drift policy (:mod:`repro.quality.drift`).

Contracts are declared in a versioned JSON file (the same
``format_version`` machinery as every other persisted document) or
inferred from the first clean run (:meth:`ContractSet.infer`): column
types and nullability are derived from the observed values, which is how
a fleet bootstraps contracts without hand-writing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    _load_json,
    atomic_write_json,
)
from repro.engine.table import Table

#: column types a contract may declare; "any" disables the type check
COLUMN_TYPES = ("any", "int", "float", "str", "bool")

#: python types accepted per declared type (bool is NOT an int here:
#: ``type(v)`` identity keeps True out of integer columns)
_TYPE_SETS: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}

#: violation codes, in the order :meth:`ColumnContract.classify` checks them
VIOLATION_CODES = ("null", "type", "domain")


class QualityError(ValueError):
    """Raised for malformed contracts and unresolvable schema drift."""


def _type_name(value) -> str:
    kind = type(value)
    if kind is bool:
        return "bool"
    if kind is int:
        return "int"
    if kind is float:
        return "float"
    if kind is str:
        return "str"
    return "any"


def _is_number(value) -> bool:
    return type(value) in (int, float)


def _compile_domain(domain: str) -> "Callable[[object], bool] | None":
    """Compile the small domain DSL into one predicate.

    Clauses are comma-separated and all must hold: ``min:N`` / ``max:N``
    (numeric bounds), ``in:a|b|c`` (membership, compared as strings), and
    ``nonempty`` (non-empty string).  An empty domain means no constraint.
    """
    clauses: list[Callable[[object], bool]] = []
    for raw in domain.split(","):
        part = raw.strip()
        if not part:
            continue
        if part.startswith("min:"):
            try:
                bound = float(part[4:])
            except ValueError as exc:
                raise QualityError(f"bad domain clause {part!r}: {exc}") from exc
            clauses.append(lambda v, b=bound: _is_number(v) and v >= b)
        elif part.startswith("max:"):
            try:
                bound = float(part[4:])
            except ValueError as exc:
                raise QualityError(f"bad domain clause {part!r}: {exc}") from exc
            clauses.append(lambda v, b=bound: _is_number(v) and v <= b)
        elif part.startswith("in:"):
            allowed = frozenset(part[3:].split("|"))
            clauses.append(lambda v, a=allowed: str(v) in a)
        elif part == "nonempty":
            clauses.append(lambda v: v != "")
        else:
            raise QualityError(
                f"unknown domain clause {part!r}; expected min:N, max:N, "
                "in:a|b|c or nonempty"
            )
    if not clauses:
        return None
    if len(clauses) == 1:
        return clauses[0]

    def all_of(value, _clauses=tuple(clauses)) -> bool:
        return all(clause(value) for clause in _clauses)

    return all_of


@dataclass(frozen=True)
class ColumnContract:
    """Expectations for one source column."""

    name: str
    type: str = "any"
    nullable: bool = True
    domain: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise QualityError("a column contract needs a name")
        if self.type not in COLUMN_TYPES:
            raise QualityError(
                f"unknown column type {self.type!r}; expected one of "
                f"{COLUMN_TYPES}"
            )
        _compile_domain(self.domain)  # validate eagerly

    # ------------------------------------------------------------------
    def checker(self) -> Callable[[object], bool]:
        """One fast per-value predicate combining every check.

        Specialized for the common shapes so screening a fully clean
        column stays a tight loop (the quarantine-overhead benchmark
        budgets the whole gate at 5% of a run).
        """
        types = _TYPE_SETS.get(self.type)
        domain_ok = _compile_domain(self.domain)
        nullable = self.nullable
        if domain_ok is None:
            if types is None:
                return (lambda v: True) if nullable else (lambda v: v is not None)
            if nullable:
                return lambda v, t=types: v is None or type(v) in t
            return lambda v, t=types: type(v) in t

        def ok(value) -> bool:
            if value is None:
                return nullable
            if types is not None and type(value) not in types:
                return False
            return domain_ok(value)

        return ok

    def bulk_clean(self, values: Sequence) -> bool:
        """Whole-column screen at C speed; ``True`` proves every value
        passes, ``False`` sends the caller to the per-value slow path.

        The clean extract is the overwhelmingly common case, and per-value
        python calls are what the quarantine-overhead budget cannot
        afford: this uses ``set(map(type, ...))``, ``min``/``max`` and
        containment scans -- all C loops -- and only a column that fails
        one of them pays for exact row-level attribution.
        """
        pytypes = set(map(type, values))
        if type(None) in pytypes:
            if not self.nullable:
                return False
            pytypes.discard(type(None))
            nonnull = [v for v in values if v is not None]
        else:
            nonnull = values
        allowed = _TYPE_SETS.get(self.type)
        if allowed is not None and not pytypes.issubset(allowed):
            return False
        if not self.domain or not nonnull:
            return True
        for raw in self.domain.split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith(("min:", "max:")):
                if not pytypes.issubset((int, float)):
                    return False  # non-numeric values: slow path decides
                bound = float(part[4:])
                if part.startswith("min:"):
                    if min(nonnull) < bound:
                        return False
                elif max(nonnull) > bound:
                    return False
            elif part.startswith("in:"):
                if not set(map(str, nonnull)).issubset(part[3:].split("|")):
                    return False
            elif part == "nonempty":
                if "" in nonnull:
                    return False
        return True

    def classify(self, value) -> tuple[str, str]:
        """Violation code + message for a value the checker rejected."""
        if value is None:
            return "null", f"column {self.name!r} is not nullable"
        types = _TYPE_SETS.get(self.type)
        if types is not None and type(value) not in types:
            return "type", (
                f"column {self.name!r} expects {self.type}, "
                f"got {_type_name(value)} ({value!r})"
            )
        return "domain", (
            f"column {self.name!r} value {value!r} violates domain "
            f"{self.domain!r}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc: dict = {"name": self.name}
        if self.type != "any":
            doc["type"] = self.type
        if not self.nullable:
            doc["nullable"] = False
        if self.domain:
            doc["domain"] = self.domain
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ColumnContract":
        if not isinstance(doc, dict):
            raise QualityError(f"column contract must be an object, got {doc!r}")
        unknown = set(doc) - {"name", "type", "nullable", "domain"}
        if unknown:
            raise QualityError(
                f"unknown column contract field(s): {sorted(unknown)}"
            )
        try:
            return cls(
                name=doc["name"],
                type=doc.get("type", "any"),
                nullable=bool(doc.get("nullable", True)),
                domain=doc.get("domain", ""),
            )
        except KeyError as exc:
            raise QualityError(
                f"column contract missing required field {exc}"
            ) from exc

    @classmethod
    def infer(cls, name: str, values: Sequence) -> "ColumnContract":
        """Derive a contract from one clean column's observed values."""
        nullable = False
        seen: set[str] = set()
        for value in values:
            if value is None:
                nullable = True
            else:
                seen.add(_type_name(value))
        if len(seen) == 1:
            inferred = seen.pop()
        elif seen == {"int", "float"}:
            inferred = "float"
        else:
            inferred = "any"
        return cls(name=name, type=inferred, nullable=nullable)


@dataclass(frozen=True)
class SourceContract:
    """The declared shape of one source table."""

    source: str
    columns: tuple[ColumnContract, ...]

    def __post_init__(self) -> None:
        if not self.source:
            raise QualityError("a source contract needs a source name")
        if not self.columns:
            raise QualityError(
                f"source contract {self.source!r} declares no columns"
            )
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise QualityError(
                f"source contract {self.source!r} declares duplicate columns"
            )

    @property
    def column_map(self) -> dict[str, ColumnContract]:
        return {c.name: c for c in self.columns}

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "columns": [c.to_dict() for c in self.columns],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SourceContract":
        if not isinstance(doc, dict):
            raise QualityError(f"source contract must be an object, got {doc!r}")
        columns = doc.get("columns")
        if not isinstance(columns, list):
            raise QualityError(
                f"source contract {doc.get('source')!r}: 'columns' must be a list"
            )
        return cls(
            source=doc.get("source", ""),
            columns=tuple(ColumnContract.from_dict(c) for c in columns),
        )

    @classmethod
    def infer(cls, source: str, table: Table) -> "SourceContract":
        return cls(
            source=source,
            columns=tuple(
                ColumnContract.infer(attr, table.column(attr))
                for attr in table.attrs
            ),
        )


@dataclass
class ContractSet:
    """Every declared source contract, JSON round-trippable."""

    contracts: dict[str, SourceContract] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.contracts)

    def __contains__(self, source: str) -> bool:
        return source in self.contracts

    def get(self, source: str) -> SourceContract | None:
        return self.contracts.get(source)

    def add(self, contract: SourceContract) -> None:
        self.contracts[contract.source] = contract

    def sources(self) -> list[str]:
        return sorted(self.contracts)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "kind": "source-contracts",
            "sources": [
                self.contracts[name].to_dict() for name in sorted(self.contracts)
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ContractSet":
        if doc.get("kind") not in (None, "source-contracts"):
            raise PersistenceError(
                f"expected a source-contracts document, got {doc.get('kind')!r}"
            )
        sources = doc.get("sources", [])
        if not isinstance(sources, list):
            raise PersistenceError(
                "corrupt contracts document: 'sources' is not a list"
            )
        contracts = cls()
        try:
            for entry in sources:
                contracts.add(SourceContract.from_dict(entry))
        except QualityError as exc:
            raise PersistenceError(f"corrupt contracts document: {exc}") from exc
        return contracts

    @classmethod
    def from_file(cls, path: str | Path) -> "ContractSet":
        return cls.from_dict(_load_json(path, "contracts"))

    def save(self, path: str | Path) -> None:
        atomic_write_json(self.to_dict(), path)

    @classmethod
    def infer(cls, sources: dict[str, Table]) -> "ContractSet":
        """Bootstrap contracts from the first clean run's source tables."""
        contracts = cls()
        for name in sorted(sources):
            contracts.add(SourceContract.infer(name, sources[name]))
        return contracts

    def describe(self) -> str:
        lines = [f"contracts: {len(self.contracts)} source(s)"]
        for name in sorted(self.contracts):
            contract = self.contracts[name]
            cols = ", ".join(
                f"{c.name}:{c.type}{'' if c.nullable else '!'}"
                f"{'[' + c.domain + ']' if c.domain else ''}"
                for c in contract.columns
            )
            lines.append(f"  {name}: {cols}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# row-level validation
# ---------------------------------------------------------------------------


def validate_rows(
    table: Table, contract: SourceContract, source: str = ""
) -> "tuple[Table, Table, list]":
    """Split a (schema-reconciled) table into clean and quarantined rows.

    Returns ``(clean, quarantined, violations)``.  A row with any failing
    column lands in the quarantine table exactly once, with one structured
    :class:`~repro.quality.quarantine.Violation` per failing column.  A
    fully clean table is returned unchanged (no copy), which is what keeps
    the contract overhead on healthy data down to one predicate pass.
    """
    from repro.quality.quarantine import Violation

    source = source or contract.source
    bad_rows: set[int] = set()
    violations: list[Violation] = []
    for column in contract.columns:
        values = table.column(column.name)
        if column.bulk_clean(values):
            continue
        check = column.checker()
        for index, value in enumerate(values):
            if check(value):
                continue
            code, message = column.classify(value)
            violations.append(
                Violation(
                    source=source,
                    row=index,
                    column=column.name,
                    code=code,
                    message=message,
                )
            )
            bad_rows.add(index)
    if not bad_rows:
        return table, Table.empty(table.attrs), []
    quarantined, clean = table.partition(sorted(bad_rows))
    violations.sort(key=lambda v: (v.row, v.column, v.code))
    return clean, quarantined, violations


__all__ = [
    "COLUMN_TYPES",
    "VIOLATION_CODES",
    "ColumnContract",
    "ContractSet",
    "QualityError",
    "SourceContract",
    "validate_rows",
]
