"""Data-quality layer: source contracts, quarantine, schema drift.

The trust boundary in front of statistics observation: declared (or
inferred) per-source contracts, row-level validation that diverts invalid
rows to a dead-letter table instead of failing the block, and schema-drift
reconciliation governed by a per-source policy.  Enforced once, in
:class:`~repro.engine.backend.BackendExecutor`, so all three execution
backends observe identical surviving rows.
"""

from repro.quality.contracts import (
    COLUMN_TYPES,
    VIOLATION_CODES,
    ColumnContract,
    ContractSet,
    QualityError,
    SourceContract,
    validate_rows,
)
from repro.quality.drift import (
    DEFAULT_POLICY,
    DRIFT_KINDS,
    DRIFT_POLICIES,
    SchemaDriftError,
    SchemaDriftEvent,
    reconcile_schema,
)
from repro.quality.gate import QualityGate
from repro.quality.quarantine import QuarantineStore, Violation

__all__ = [
    "COLUMN_TYPES",
    "DEFAULT_POLICY",
    "DRIFT_KINDS",
    "DRIFT_POLICIES",
    "VIOLATION_CODES",
    "ColumnContract",
    "ContractSet",
    "QualityError",
    "QualityGate",
    "QuarantineStore",
    "SchemaDriftError",
    "SchemaDriftEvent",
    "SourceContract",
    "Violation",
    "reconcile_schema",
    "validate_rows",
]
