"""The dead letter: quarantined rows, their violations, and persistence.

A contract violation must not fail the block -- the paper's nightly loop
is worth more completed-with-99%-of-the-rows than aborted -- but it must
also never pollute the observed statistics.  The quarantine is where the
diverted rows go: one dead-letter :class:`~repro.engine.table.Table` per
source, each invalid row paired with structured :class:`Violation`
records (which column, which check, which value), plus the schema-drift
events the reconciler resolved on the way in.

:class:`QuarantineStore` persists the dead letter as one JSON artifact
per source (``quarantine-<source>.json``, on the usual ``format_version``
machinery) so a nightly run's rejects can be shipped, inspected
(``repro-etl quality report``), and replayed once the upstream fix lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    _load_json,
    atomic_write_json,
    table_from_dict,
    table_to_dict,
)
from repro.engine.table import Table
from repro.quality.drift import SchemaDriftEvent

#: dead-letter artifact filename pattern
ARTIFACT_PREFIX = "quarantine-"


@dataclass(frozen=True)
class Violation:
    """One failed contract check: (source, row, column) plus the verdict."""

    source: str
    row: int  # index within the source table as it arrived tonight
    column: str
    code: str  # "null" | "type" | "domain"
    message: str = ""

    def to_dict(self) -> dict:
        doc = {
            "source": self.source,
            "row": self.row,
            "column": self.column,
            "code": self.code,
        }
        if self.message:
            doc["message"] = self.message
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Violation":
        try:
            return cls(
                source=doc.get("source", ""),
                row=int(doc["row"]),
                column=doc["column"],
                code=doc["code"],
                message=doc.get("message", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"corrupt violation record {doc!r}: {exc}") from exc


@dataclass
class QuarantineStore:
    """Per-source dead-letter tables with their violation records."""

    tables: dict[str, Table] = field(default_factory=dict)
    violations: dict[str, list[Violation]] = field(default_factory=dict)
    drift: dict[str, list[SchemaDriftEvent]] = field(default_factory=dict)

    def add(
        self,
        source: str,
        table: Table,
        violations: "list[Violation]",
        drift_events: "list[SchemaDriftEvent] | tuple" = (),
    ) -> None:
        self.tables[source] = table
        self.violations[source] = list(violations)
        if drift_events:
            self.drift[source] = list(drift_events)

    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())

    def dead_letter_tables(self) -> dict[str, Table]:
        """Only the sources that actually quarantined rows."""
        return {s: t for s, t in self.tables.items() if t.num_rows}

    def all_violations(self) -> "list[Violation]":
        out: list[Violation] = []
        for source in sorted(self.violations):
            out.extend(self.violations[source])
        return out

    def drift_events(self) -> "list[SchemaDriftEvent]":
        out: list[SchemaDriftEvent] = []
        for source in sorted(self.drift):
            out.extend(self.drift[source])
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> list[Path]:
        """Write one artifact per source with anything to report.

        Sources that screened fully clean (no dead rows, no drift) are
        skipped so a healthy night leaves an empty dead-letter directory.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for source in sorted(self.tables):
            table = self.tables[source]
            violations = self.violations.get(source, [])
            events = self.drift.get(source, [])
            if not table.num_rows and not violations and not events:
                continue
            path = directory / f"{ARTIFACT_PREFIX}{source}.json"
            atomic_write_json(
                {
                    "format_version": FORMAT_VERSION,
                    "kind": "quarantine",
                    "source": source,
                    "rows": table.num_rows,
                    "table": table_to_dict(table),
                    "violations": [v.to_dict() for v in violations],
                    "schema_drift": [e.to_dict() for e in events],
                },
                path,
            )
            written.append(path)
        return written

    @classmethod
    def load_dir(cls, directory: str | Path) -> "QuarantineStore":
        """Read every dead-letter artifact in ``directory``."""
        directory = Path(directory)
        if not directory.is_dir():
            raise PersistenceError(
                f"quarantine directory not found: {directory}"
            )
        store = cls()
        for path in sorted(directory.glob(f"{ARTIFACT_PREFIX}*.json")):
            doc = _load_json(path, "quarantine")
            if doc.get("kind") not in (None, "quarantine"):
                raise PersistenceError(
                    f"{path} is a {doc.get('kind')!r} document, not a quarantine"
                )
            source = doc.get("source") or path.stem[len(ARTIFACT_PREFIX):]
            try:
                table = table_from_dict(doc["table"])
            except KeyError as exc:
                raise PersistenceError(
                    f"corrupt quarantine artifact {path}: no table"
                ) from exc
            violations = doc.get("violations", [])
            if not isinstance(violations, list):
                raise PersistenceError(
                    f"corrupt quarantine artifact {path}: 'violations' "
                    "is not a list"
                )
            events = doc.get("schema_drift", [])
            if not isinstance(events, list):
                raise PersistenceError(
                    f"corrupt quarantine artifact {path}: 'schema_drift' "
                    "is not a list"
                )
            store.add(
                source,
                table,
                [Violation.from_dict(v) for v in violations],
                [SchemaDriftEvent.from_dict(e) for e in events],
            )
        return store

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """The ``repro-etl quality report`` rendering."""
        dead = self.dead_letter_tables()
        n_viol = len(self.all_violations())
        n_drift = len(self.drift_events())
        lines = [
            f"quarantine: {self.total_rows} row(s) across "
            f"{len(dead)} source(s), {n_viol} violation(s), "
            f"{n_drift} schema drift event(s)"
        ]
        for source in sorted(self.tables):
            table = self.tables[source]
            violations = self.violations.get(source, [])
            events = self.drift.get(source, [])
            if not table.num_rows and not violations and not events:
                continue
            lines.append(f"  {source}: {table.num_rows} row(s) quarantined")
            by_check: dict[tuple[str, str], int] = {}
            for violation in violations:
                key = (violation.column, violation.code)
                by_check[key] = by_check.get(key, 0) + 1
            for (column, code), count in sorted(by_check.items()):
                sample = next(
                    v.message
                    for v in violations
                    if v.column == column and v.code == code
                )
                lines.append(f"    {column} [{code}] x{count}: {sample}")
            for event in events:
                lines.append(f"    drift: {event.describe()}")
        return "\n".join(lines)


__all__ = ["ARTIFACT_PREFIX", "QuarantineStore", "Violation"]
