"""The quality gate: the single screening point in front of every backend.

All three execution backends (columnar, streaming, vectorized) enter
through :meth:`~repro.engine.backend.BackendExecutor.run`, which hands the
source map to :meth:`QualityGate.screen_sources` *before* any block task
is built and before any observation point fires.  Screening at that choke
point is what makes enforcement backend-consistent by construction: the
blocks -- and therefore every tap, every materialized SE size and every
ground-truth count -- only ever see the surviving rows, on any backend.

The gate composes the two quality passes per contracted source, in order:

1. :func:`~repro.quality.drift.reconcile_schema` -- structural drift
   resolved by the per-source policy;
2. :func:`~repro.quality.contracts.validate_rows` -- row-level checks,
   with failing rows diverted to the :class:`~repro.quality.quarantine
   .QuarantineStore` dead letter.

Sources without a contract pass through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.table import Table
from repro.quality.contracts import ContractSet, validate_rows
from repro.quality.drift import DEFAULT_POLICY, reconcile_schema
from repro.quality.quarantine import QuarantineStore


@dataclass
class QualityGate:
    """Per-run screening state: contracts, policy, and the dead letter."""

    contracts: ContractSet
    policy: str = DEFAULT_POLICY
    quarantine: QuarantineStore = field(default_factory=QuarantineStore)

    def screen_sources(
        self,
        sources: dict[str, Table],
        tracer=None,
        trace_parent=None,
    ) -> dict[str, Table]:
        """Screen every contracted source; returns the surviving tables.

        Emits one ``quarantine`` trace point per screened source (under
        the execution span) so a traced run shows, next to each block's
        operator points, how many rows the gate diverted before the
        blocks ran.  Raises :class:`~repro.quality.drift.SchemaDriftError`
        when the policy refuses a structural mismatch.
        """
        out = dict(sources)
        trace = tracer is not None and tracer.enabled
        for name in sorted(sources):
            contract = self.contracts.get(name)
            if contract is None:
                continue
            table, events = reconcile_schema(
                sources[name], contract, self.policy, source=name
            )
            clean, dead, violations = validate_rows(table, contract, source=name)
            self.quarantine.add(name, dead, violations, events)
            out[name] = clean
            if trace:
                tracer.point(
                    name,
                    kind="quarantine",
                    parent=trace_parent,
                    rows=clean.num_rows,
                    quarantined=dead.num_rows,
                    violations=len(violations),
                    schema_drift=len(events),
                )
        return out

    # -- results, in the shapes WorkflowRun/PipelineReport carry ---------
    def quarantined_tables(self) -> dict[str, Table]:
        return self.quarantine.dead_letter_tables()

    def all_violations(self) -> list:
        return self.quarantine.all_violations()

    def drift_events(self) -> tuple:
        return tuple(self.quarantine.drift_events())


__all__ = ["QualityGate"]
