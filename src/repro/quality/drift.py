"""Schema drift: reconcile an arriving source against its contract.

Structural drift -- a column added, dropped, renamed or retyped upstream
-- is the failure mode row-level validation cannot express: every single
row "violates" the contract at once.  :func:`reconcile_schema` resolves
it *before* row validation, governed by a per-source policy:

- ``strict`` -- any structural mismatch is a hard
  :class:`SchemaDriftError`; the run refuses to observe statistics over a
  source whose shape changed;
- ``ignore-extra`` -- columns the contract does not declare are dropped
  (recorded as drift events); anything else is still an error;
- ``coerce`` (default) -- the reconciler does its best: extra columns are
  dropped, a missing column is matched to a unique type-compatible
  unknown column and renamed back (the upstream-rename case), a column
  whose *every* non-null value arrived with the wrong type is coerced
  value-by-value (the classic ints-serialized-as-strings extract), and a
  dropped nullable column is refilled with nulls.  Whatever coercion
  cannot fix is left in place for row validation to quarantine.

Every resolution is reported as a :class:`SchemaDriftEvent`; the pipeline
uses those events to invalidate the matching statistics-catalog entries
(yesterday's statistics describe yesterday's schema) and to demote the
catalog's confidence rung in the degraded-statistics fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.table import Table
from repro.quality.contracts import (
    ColumnContract,
    QualityError,
    SourceContract,
)

#: exact-type name map mirroring ``contracts._type_name`` (bool before int
#: never matters here: ``type()`` identity keeps them distinct keys)
_NAME_BY_TYPE = {bool: "bool", int: "int", float: "float", str: "str"}

#: per-source schema-drift policies, strictest first
DRIFT_POLICIES = ("strict", "ignore-extra", "coerce")

#: the policy used when none is declared
DEFAULT_POLICY = "coerce"

#: drift event kinds
DRIFT_KINDS = ("added", "dropped", "renamed", "retyped")


class SchemaDriftError(QualityError):
    """Structural drift the active policy refuses to resolve."""


@dataclass(frozen=True)
class SchemaDriftEvent:
    """One structural mismatch and how it was resolved."""

    source: str
    kind: str  # "added" | "dropped" | "renamed" | "retyped"
    column: str  # the contract-side column name (or the extra column)
    detail: str = ""
    resolution: str = ""  # "dropped-extra" | "renamed-back" | "coerced" | "filled-null"

    def to_dict(self) -> dict:
        doc = {"source": self.source, "kind": self.kind, "column": self.column}
        if self.detail:
            doc["detail"] = self.detail
        if self.resolution:
            doc["resolution"] = self.resolution
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SchemaDriftEvent":
        return cls(
            source=doc.get("source", ""),
            kind=doc.get("kind", ""),
            column=doc.get("column", ""),
            detail=doc.get("detail", ""),
            resolution=doc.get("resolution", ""),
        )

    def describe(self) -> str:
        note = f" ({self.detail})" if self.detail else ""
        fix = f" -> {self.resolution}" if self.resolution else ""
        return f"{self.source}.{self.column}: {self.kind}{note}{fix}"


def _dominant_type(values) -> str | None:
    """The single type of every non-null value, or ``None`` if mixed/empty.

    Requiring unanimity is deliberate: a 99%-ints column with a few
    corrupt strings is *not* a retyped column -- row validation quarantines
    the strays -- whereas a column whose every value arrived as a string
    is a schema-level retype worth coercing wholesale.
    """
    pytypes = set(map(type, values))  # one C-level pass, not N python calls
    pytypes.discard(type(None))
    if len(pytypes) != 1:
        return None
    return _NAME_BY_TYPE.get(pytypes.pop(), "any")


def _coerce_value(value, target: str):
    """Best-effort lossless cast; returns the original value on failure
    (row validation then quarantines it)."""
    try:
        if target == "int":
            if type(value) is str:
                return int(value.strip())
            if type(value) is float and value.is_integer():
                return int(value)
        elif target == "float":
            if type(value) in (str, int):
                return float(value)
        elif target == "str":
            return str(value)
        elif target == "bool":
            if type(value) is str and value.strip().lower() in ("true", "false"):
                return value.strip().lower() == "true"
            if value in (0, 1):
                return bool(value)
    except (TypeError, ValueError):
        return value
    return value


def _type_compatible(declared: ColumnContract, values) -> bool:
    """Could this unknown column plausibly be the declared one, renamed?"""
    if declared.type == "any":
        return True
    dominant = _dominant_type(values)
    if dominant is None:
        return False
    if dominant == declared.type:
        return True
    return declared.type == "float" and dominant == "int"


def reconcile_schema(
    table: Table,
    contract: SourceContract,
    policy: str = DEFAULT_POLICY,
    source: str = "",
) -> tuple[Table, list[SchemaDriftEvent]]:
    """Resolve structural drift between an arriving table and its contract.

    Returns the reconciled table (column set and order match the contract
    whenever any drift was resolved; untouched when none was) plus the
    drift events describing every resolution.  Raises
    :class:`SchemaDriftError` when the policy refuses a mismatch.
    """
    if policy not in DRIFT_POLICIES:
        raise QualityError(
            f"unknown drift policy {policy!r}; expected one of {DRIFT_POLICIES}"
        )
    source = source or contract.source
    expected = contract.column_map
    events: list[SchemaDriftEvent] = []

    missing = [c.name for c in contract.columns if not table.has_column(c.name)]
    extra = [a for a in table.attrs if a not in expected]

    # renamed columns: pair each missing expected column with a unique
    # type-compatible unknown column (coerce only -- a rename is a guess)
    if policy == "coerce" and missing and extra:
        renames: dict[str, str] = {}
        unclaimed = list(extra)
        for name in missing:
            candidates = [
                a for a in unclaimed
                if _type_compatible(expected[name], table.column(a))
            ]
            if len(candidates) == 1:
                renames[candidates[0]] = name
                unclaimed.remove(candidates[0])
        if renames:
            table = table.rename_columns(renames)
            for old in sorted(renames):
                events.append(
                    SchemaDriftEvent(
                        source=source,
                        kind="renamed",
                        column=renames[old],
                        detail=f"arrived as {old!r}",
                        resolution="renamed-back",
                    )
                )
            claimed = set(renames.values())
            missing = [m for m in missing if m not in claimed]
            extra = [e for e in extra if e not in renames]

    # retyped columns: every non-null value arrived with the wrong type
    for declared in contract.columns:
        if declared.type == "any" or not table.has_column(declared.name):
            continue
        values = table.column(declared.name)
        dominant = _dominant_type(values)
        if dominant is None or dominant == declared.type:
            continue
        if declared.type == "float" and dominant == "int":
            continue  # ints are valid floats; not drift
        if policy != "coerce":
            raise SchemaDriftError(
                f"source {source!r}: column {declared.name!r} arrived as "
                f"{dominant}, contract says {declared.type} "
                f"(policy {policy})"
            )
        table = table.with_column(
            declared.name,
            [
                value if value is None else _coerce_value(value, declared.type)
                for value in values
            ],
        )
        events.append(
            SchemaDriftEvent(
                source=source,
                kind="retyped",
                column=declared.name,
                detail=f"arrived as {dominant}",
                resolution="coerced",
            )
        )

    # dropped columns: refill nullable ones with nulls (coerce only)
    for name in missing:
        declared = expected[name]
        if policy == "coerce" and declared.nullable:
            table = table.with_column(name, [None] * table.num_rows)
            events.append(
                SchemaDriftEvent(
                    source=source,
                    kind="dropped",
                    column=name,
                    resolution="filled-null",
                )
            )
        else:
            raise SchemaDriftError(
                f"source {source!r}: expected column {name!r} is missing "
                f"(policy {policy}"
                + (", column is not nullable)" if policy == "coerce" else ")")
            )

    # added columns: drop them unless the policy is strict
    if extra:
        if policy == "strict":
            raise SchemaDriftError(
                f"source {source!r}: unexpected column(s) "
                f"{sorted(extra)} (policy strict)"
            )
        for name in extra:
            events.append(
                SchemaDriftEvent(
                    source=source,
                    kind="added",
                    column=name,
                    resolution="dropped-extra",
                )
            )

    if events:
        # normalize to the contract's column set and order; an undrifted
        # table passes through untouched (and uncopied)
        table = table.select_columns([c.name for c in contract.columns])
    return table, events


__all__ = [
    "DEFAULT_POLICY",
    "DRIFT_KINDS",
    "DRIFT_POLICIES",
    "SchemaDriftError",
    "SchemaDriftEvent",
    "reconcile_schema",
]
