"""Run checkpoints and degraded-statistics fallback.

Two halves of surviving a bad night:

**Checkpoints.** A nightly observe-and-optimize cycle is long, and a crash
near the end used to forfeit every block already executed.
:class:`RunCheckpoint` persists, after each block completes, the block's
output table, the run's SE sizes and the statistics gathered so far --
atomically, so a killed process never leaves a half-written file.  A
resumed :class:`~repro.engine.backend.BackendExecutor` run restores the
recorded blocks (their outputs feed downstream blocks and boundaries
directly) and re-executes only the unfinished remainder.

**Degradation.** When a block *permanently* fails, its statistics are
partial for the night.  Rather than abandoning optimization wholesale --
the paper's premise is that stale or approximate statistics still beat
none -- :func:`degraded_cardinalities` fills the failed blocks' SE
cardinalities from, in order of trust:

1. the shared statistics catalog (:mod:`repro.catalog`): its entries are
   drift-checked every night and carry observation timestamps, so they
   rank just below tonight's own observations;
2. a prior run's persisted statistics (the data usually drifts slowly
   between nightly loads) -- when the caller knows the prior store is
   *fresher* than the matching catalog entries (``prefer_prior=True``,
   e.g. a ``--prior-stats`` file written after the catalog's last
   refresh), the two rungs swap;
3. the textbook independence baseline
   (:mod:`repro.baselines.independence`) computed from whatever inputs
   did load tonight;
4. nothing -- the block is reported unoptimizable and keeps its current
   plan.

The provenance is returned alongside the filled cardinalities, per block
*and* per SE, so :class:`~repro.framework.pipeline.PipelineReport` can
annotate each plan with the confidence of the estimates behind it and
report exactly which source satisfied each gap.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algebra.blocks import Block, BlockAnalysis
from repro.algebra.expressions import AnySE
from repro.core.css import CssCatalog
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    atomic_write_json,
    se_from_dict,
    se_to_dict,
    store_from_dict,
    store_to_dict,
    table_from_dict,
    table_to_dict,
    validate_document,
)
from repro.core.statistics import StatisticsStore
from repro.engine.backend import WorkflowRun
from repro.engine.table import Table

#: plan-confidence labels, strongest first
CONFIDENCE_OBSERVED = "observed"
CONFIDENCE_CATALOG = "catalog"
CONFIDENCE_PRIOR = "prior"
CONFIDENCE_INDEPENDENCE = "independence"
CONFIDENCE_NONE = "none"

#: the degraded-fallback ladder, strongest first
CONFIDENCE_ORDER = (
    CONFIDENCE_OBSERVED,
    CONFIDENCE_CATALOG,
    CONFIDENCE_PRIOR,
    CONFIDENCE_INDEPENDENCE,
    CONFIDENCE_NONE,
)


def weakest_confidence(labels) -> str:
    """The weakest label in ``labels`` along the fallback ladder."""
    worst = CONFIDENCE_OBSERVED
    for label in labels:
        if CONFIDENCE_ORDER.index(label) > CONFIDENCE_ORDER.index(worst):
            worst = label
    return worst


def demote_confidence(label: str) -> str:
    """One rung weaker along the ladder (``none`` stays ``none``).

    This is how a degraded catalog client surfaces in tonight's plans: the
    numbers still come from the best source available, but a vanished
    statistics server means they could not be cross-checked against the
    fleet's shared state, so the report says one rung less than it
    otherwise would -- honestly weaker, never failing the run.
    """
    index = CONFIDENCE_ORDER.index(label)
    return CONFIDENCE_ORDER[min(index + 1, len(CONFIDENCE_ORDER) - 1)]


class RunCheckpoint:
    """Crash-consistent journal of one workflow run's completed blocks.

    The file is rewritten (atomic rename) after every block completion --
    the journal is cumulative, so the latest file is always a complete
    description of everything finished so far.  Identity fields guard
    against resuming the wrong run: a checkpoint written for another
    workflow or execution backend refuses to load over this one.
    """

    def __init__(self, path: str | Path, workflow: str = "", backend: str = ""):
        self.path = Path(path)
        self.workflow = workflow
        self.backend = backend
        self.blocks: dict[str, dict] = {}  # block name -> record document
        self.se_sizes: dict[AnySE, int] = {}
        self.statistics: StatisticsStore = StatisticsStore()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "RunCheckpoint":
        """Read an existing checkpoint; :class:`PersistenceError` if corrupt."""
        try:
            text = Path(path).read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise PersistenceError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"invalid checkpoint file {path}: {exc}") from exc
        validate_document(doc, "checkpoint")
        checkpoint = cls(
            path, workflow=doc.get("workflow", ""), backend=doc.get("backend", "")
        )
        blocks = doc.get("blocks", {})
        if not isinstance(blocks, dict):
            raise PersistenceError("corrupt checkpoint: 'blocks' is not an object")
        for name, record in blocks.items():
            if not isinstance(record, dict) or "table" not in record:
                raise PersistenceError(
                    f"corrupt checkpoint: block record {name!r} has no table"
                )
            checkpoint.blocks[name] = record
        try:
            checkpoint.se_sizes = {
                se_from_dict(se_doc): size
                for se_doc, size in doc.get("se_sizes", [])
            }
        except (TypeError, ValueError, KeyError) as exc:
            raise PersistenceError(f"corrupt checkpoint SE sizes: {exc}") from exc
        checkpoint.statistics = store_from_dict(
            doc.get("statistics", {"format_version": FORMAT_VERSION, "statistics": []})
        )
        return checkpoint

    @classmethod
    def open(
        cls, path: str | Path, workflow: str = "", backend: str = ""
    ) -> "RunCheckpoint":
        """Resume from ``path`` if it exists, else start a fresh journal.

        An existing file recorded for a different workflow or backend is a
        hard error -- restoring another run's tables would corrupt this one.
        """
        path = Path(path)
        if not path.exists():
            return cls(path, workflow=workflow, backend=backend)
        checkpoint = cls.load(path)
        if workflow and checkpoint.workflow and checkpoint.workflow != workflow:
            raise PersistenceError(
                f"checkpoint {path} belongs to workflow "
                f"{checkpoint.workflow!r}, not {workflow!r}"
            )
        if backend and checkpoint.backend and checkpoint.backend != backend:
            raise PersistenceError(
                f"checkpoint {path} was written by backend "
                f"{checkpoint.backend!r}, not {backend!r}; statistics "
                "observed by different backends are interchangeable but "
                "resume must re-use the original backend's run"
            )
        checkpoint.workflow = checkpoint.workflow or workflow
        checkpoint.backend = checkpoint.backend or backend
        return checkpoint

    # ------------------------------------------------------------------
    @property
    def completed(self) -> set[str]:
        return set(self.blocks)

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "workflow": self.workflow,
            "backend": self.backend,
            "blocks": self.blocks,
            "se_sizes": [
                [se_to_dict(se), size]
                for se, size in sorted(
                    self.se_sizes.items(), key=lambda kv: repr(kv[0])
                )
            ],
            "statistics": store_to_dict(self.statistics),
        }

    def save(self) -> None:
        atomic_write_json(self.to_dict(), self.path)

    # ------------------------------------------------------------------
    # the two sides of the journal
    # ------------------------------------------------------------------
    def record_block(
        self,
        block: Block,
        output: Table,
        se_sizes: dict[AnySE, int],
        statistics: StatisticsStore,
    ) -> None:
        """Journal one completed block (called under the run lock).

        The journal is cumulative: sizes and statistics *merge* over what
        is already recorded, so a resumed run (whose fresh taps only saw
        tonight's re-executed blocks) never erases restored observations.
        """
        self.blocks[block.name] = {
            "output_name": block.output_name,
            "rows": output.num_rows,
            "table": table_to_dict(output),
        }
        self.se_sizes.update(se_sizes)
        self.statistics.merge(statistics)
        self.save()

    def restore(self, analysis: BlockAnalysis, run: WorkflowRun) -> set[str]:
        """Seed a new run with the journaled blocks; returns their names."""
        known = {b.name: b for b in analysis.blocks}
        restored: set[str] = set()
        for name, record in self.blocks.items():
            block = known.get(name)
            if block is None:
                raise PersistenceError(
                    f"checkpoint {self.path} records unknown block {name!r}; "
                    "was it written for a different workflow?"
                )
            output_name = record.get("output_name", block.output_name)
            run.env[output_name] = table_from_dict(record["table"])
            restored.add(name)
        run.se_sizes.update(self.se_sizes)
        return restored


# ---------------------------------------------------------------------------
# degraded-statistics fallback
# ---------------------------------------------------------------------------


def degraded_cardinalities(
    analysis: BlockAnalysis,
    run: WorkflowRun,
    catalog: CssCatalog,
    estimator,
    prior: StatisticsStore | None = None,
    catalog_statistics: StatisticsStore | None = None,
    prefer_prior: bool = False,
    drifted_sources: "set[str] | None" = None,
) -> tuple[dict[AnySE, float], dict[str, str], dict[str, dict[str, str]]]:
    """Fill in cardinalities the failed run could not observe.

    ``estimator`` is the :class:`~repro.estimation.estimator
    .CardinalityEstimator` built over tonight's (partial) observations.
    ``catalog_statistics`` holds the shared-catalog values matched for
    this workflow, ranked between tonight's observations and ``prior``
    (swapped when ``prefer_prior`` says the prior file is fresher).

    ``drifted_sources`` names base sources whose *schema* drifted tonight
    (the quality gate's :class:`~repro.quality.drift.SchemaDriftEvent`
    sources).  For an SE touching a drifted source, the catalog's values
    were observed against a shape that no longer exists, so that rung is
    demoted: it is consulted *after* the prior store and any value it
    supplies is labelled :data:`CONFIDENCE_PRIOR` rather than
    :data:`CONFIDENCE_CATALOG` -- one rung weaker, honestly reported.

    Returns ``(cardinalities, confidence, sources)``: ``confidence``
    labels each affected block with the *weakest* source used for it, and
    ``sources`` records, per block and per SE, exactly which rung of the
    ladder satisfied the gap.
    """
    from repro.baselines.independence import IndependenceEstimator, profile_inputs
    from repro.estimation.estimator import CardinalityEstimator, EstimationError

    cards: dict[AnySE, float] = dict(estimator.all_cardinalities())
    confidence: dict[str, str] = {}
    sources: dict[str, dict[str, str]] = {}

    def store_estimator(store: StatisticsStore | None):
        if store is None or not len(store):
            return None
        try:
            return CardinalityEstimator(catalog, store)
        except (EstimationError, KeyError, ValueError):
            return None

    catalog_pair = (CONFIDENCE_CATALOG, store_estimator(catalog_statistics))
    prior_pair = (CONFIDENCE_PRIOR, store_estimator(prior))
    ordered = (
        [prior_pair, catalog_pair] if prefer_prior else [catalog_pair, prior_pair]
    )
    rungs = [pair for pair in ordered if pair[1] is not None]
    # drift-suspect SEs: prior first, and the catalog answers at prior trust
    demoted = [
        (CONFIDENCE_PRIOR, estimator_)
        for _label, estimator_ in (prior_pair, catalog_pair)
        if estimator_ is not None
    ]
    drifted_sources = set(drifted_sources or ())

    independence = None

    def independence_estimator() -> IndependenceEstimator | None:
        nonlocal independence
        if independence is None:
            profiles = profile_inputs(analysis, run.env, strict=False)
            independence = IndependenceEstimator(analysis, profiles)
        return independence

    for block in analysis.blocks:
        needed = [se for se in block.join_ses() if se not in cards]
        if not needed:
            continue
        drifted_names: set[str] = set()
        if drifted_sources:
            for name, inp in block.inputs.items():
                if inp.base_name in drifted_sources:
                    drifted_names.add(name)
                    drifted_names.update(inp.stage_names())
        block_sources: dict[str, str] = {}
        for se in needed:
            ladder = demoted if se.relations & drifted_names else rungs
            value = None
            label = CONFIDENCE_NONE
            for rung_label, rung_estimator in ladder:
                try:
                    value = rung_estimator.cardinality(se)
                    label = rung_label
                    break
                except (EstimationError, KeyError):
                    value = None
            if value is None:
                try:
                    value = independence_estimator().cardinality(se)
                    label = CONFIDENCE_INDEPENDENCE
                except KeyError:
                    value = None
            if value is not None:
                cards[se] = float(value)
            block_sources[repr(se)] = label
        sources[block.name] = block_sources
        confidence[block.name] = weakest_confidence(block_sources.values())
    return cards, confidence, sources


__all__ = [
    "CONFIDENCE_CATALOG",
    "CONFIDENCE_INDEPENDENCE",
    "CONFIDENCE_NONE",
    "CONFIDENCE_OBSERVED",
    "CONFIDENCE_ORDER",
    "CONFIDENCE_PRIOR",
    "RunCheckpoint",
    "degraded_cardinalities",
    "demote_confidence",
    "weakest_confidence",
]
