"""Run reports: a human-readable account of one observe-and-optimize cycle.

Renders a :class:`~repro.framework.pipeline.PipelineReport` as markdown:
which statistics were chosen and why they were cheap, what the instrumented
run observed, the cardinality of every sub-expression, the plan change per
block, and (optionally) the physical operator decisions.  Useful as a
nightly artifact next to the load logs.
"""

from __future__ import annotations

from pathlib import Path

from repro.estimation.physical import physical_plans
from repro.framework.pipeline import PipelineReport


def render_report(
    report: PipelineReport,
    include_physical: bool = True,
    include_estimates: bool = True,
) -> str:
    """Render one observe-and-optimize cycle as a markdown document."""
    lines: list[str] = []
    workflow = report.analysis.workflow
    lines.append(f"# Statistics run report — {workflow.name}")
    lines.append("")

    # -- structure -------------------------------------------------------
    lines.append("## Optimizable blocks")
    lines.append("")
    for block in report.analysis.blocks:
        flags = []
        if block.pinned:
            flags.append("pinned")
        if block.post_steps:
            flags.append(f"{len(block.post_steps)} post-step(s)")
        suffix = f" ({', '.join(flags)})" if flags else ""
        lines.append(
            f"- **{block.name}**: {block.n_way}-way join over "
            f"{', '.join(sorted(block.inputs))}{suffix}"
        )
    lines.append("")

    # -- selection ---------------------------------------------------------
    selection = report.selection
    lines.append("## Observed statistics")
    lines.append("")
    lines.append(
        f"{len(selection.observed_indexes)} statistics, total cost "
        f"{selection.total_cost:g} ({selection.method})."
    )
    lines.append("")
    lines.append("| statistic | cost |")
    lines.append("|---|---|")
    for stat in selection.observed:
        cost = selection.problem.costs[selection.problem.index[stat]]
        lines.append(f"| `{stat!r}` | {cost:g} |")
    lines.append("")

    # -- estimates ---------------------------------------------------------
    if include_estimates:
        lines.append("## Learned cardinalities")
        lines.append("")
        lines.append("| sub-expression | rows |")
        lines.append("|---|---|")
        for se, card in sorted(
            report.estimator.all_cardinalities().items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(f"| `{se!r}` | {card:.0f} |")
        lines.append("")

    # -- plans -------------------------------------------------------------
    lines.append("## Plan decisions")
    lines.append("")
    for name, plan in report.plans.items():
        marker = "changed" if plan.improved else "kept"
        lines.append(
            f"- **{name}** ({marker}): `{plan.tree!r}` — estimated cost "
            f"{plan.cost:g} (initial {plan.initial_cost:g})"
        )
    lines.append("")

    if include_physical:
        lines.append("## Physical operator choices")
        lines.append("")
        plans = physical_plans(
            report.analysis,
            report.estimator.all_cardinalities(),
            trees=report.chosen_trees,
        )
        for name, physical in plans.items():
            for join in physical.joins:
                lines.append(
                    f"- {name}: `{join.se!r}` via **{join.algorithm.value}** "
                    f"(cost {join.cost:g})"
                )
        if not any(p.joins for p in plans.values()):
            lines.append("- no joins (linear flow)")
        lines.append("")

    # -- timings -----------------------------------------------------------
    lines.append("## Timings")
    lines.append("")
    for phase, seconds in report.timings.items():
        lines.append(f"- {phase}: {seconds * 1e3:.1f} ms")
    return "\n".join(lines) + "\n"


def write_report(report: PipelineReport, path: str | Path, **kwargs) -> str:
    """Render and persist a run report; returns the markdown text."""
    text = render_report(report, **kwargs)
    Path(path).write_text(text)
    return text
