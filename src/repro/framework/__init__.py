"""The end-to-end Figure-2 pipeline and the repeated-execution session."""

from repro.framework.pipeline import PipelineReport, StatisticsPipeline
from repro.framework.recovery import RunCheckpoint, degraded_cardinalities
from repro.framework.report import render_report, write_report
from repro.framework.session import EtlSession, RunRecord

__all__ = [
    "degraded_cardinalities", "EtlSession", "PipelineReport",
    "render_report", "RunCheckpoint", "RunRecord", "StatisticsPipeline",
    "write_report",
]
