"""The end-to-end Figure-2 pipeline and the repeated-execution session."""

from repro.framework.pipeline import PipelineReport, StatisticsPipeline
from repro.framework.report import render_report, write_report
from repro.framework.session import EtlSession, RunRecord

__all__ = [
    "EtlSession", "PipelineReport", "render_report", "RunRecord",
    "StatisticsPipeline", "write_report",
]
