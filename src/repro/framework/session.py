"""Repeated-execution lifecycle: design once, execute repeatedly.

The paper's premise (Section 1) is that an ETL workflow runs periodically
over changing data, so statistics learned in one run optimize the next.
:class:`EtlSession` models that loop:

- every run executes the *currently chosen* plans, instrumented with the
  selected statistics;
- after each run the statistics are refreshed and the plans re-optimized
  ("The whole cycle is repeated in each execution so that the statistics
  are kept updated with the changing data", Section 1);
- the session keeps a history so experiments can chart how plan cost tracks
  data drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plans import PlanTree
from repro.core.statistics import StatisticsStore
from repro.engine.faults import FaultPlan
from repro.engine.scheduler import RetryPolicy
from repro.engine.table import Table
from repro.estimation.costmodel import PlanCostModel
from repro.framework.pipeline import PipelineReport, StatisticsPipeline


@dataclass
class RunRecord:
    """Bookkeeping for one session run."""

    index: int
    report: PipelineReport
    executed_trees: dict[str, PlanTree]
    actual_plan_cost: float
    reoptimized: bool
    drift: float = 0.0

    @property
    def degraded(self) -> bool:
        return bool(self.report.failures)


@dataclass
class EtlSession:
    """Drives repeated executions with continuous re-optimization.

    Two adoption policies:

    - periodic (default): adopt the re-optimized plans every
      ``reoptimize_every`` runs ("the process can either repeat at each run
      of the workflow or at some other user defined interval", Section 3.2);
    - drift-triggered: with ``drift_threshold`` set, adopt new plans only
      when some learned SE cardinality moved by more than that relative
      fraction since the previously adopted statistics -- cheap plan
      stability when the data is quiet.

    Resilience: a ``retry`` policy and/or ``faults`` plan is forwarded to
    every run.  The session keeps the last runs' observed statistics and
    hands them to the pipeline as the prior-statistics fallback, so a
    night whose block fails permanently is optimized from the freshest
    statistics any earlier night produced; drift and plan adoption for
    the failed statistics stand still until real observations return.

    Sharing: a ``stats_catalog``
    (:class:`~repro.catalog.store.StatisticsCatalog`) is threaded into
    every run -- catalog-covered statistics are consumed at zero cost
    instead of re-observed, each completed run reconciles (and persists)
    the catalog, and runs of *other* workflows sharing the same catalog
    file inherit tonight's observations.  A served catalog may be an HA
    pair: hand the session a :class:`~repro.serve.client.CatalogClient`
    built from ``"http://primary,http://standby"`` and a mid-session
    primary crash fails over (``report.catalog_failovers``) instead of
    degrading the night.

    Quality: ``contracts`` (a
    :class:`~repro.quality.contracts.ContractSet`) arms the data-quality
    gate on every run with the ``on_drift`` schema policy; a shared
    ``quarantine`` (:class:`~repro.quality.quarantine.QuarantineStore`)
    accumulates each night's dead-letter rows so the session's statistics
    are only ever learned from rows that honored their source contracts.

    Observability: ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) aggregates the standard
    run series across every run of the session -- several sessions may
    share one registry, which is how a fleet exports one scrape surface.
    ``tracing=True`` gives every run a fresh
    :class:`~repro.obs.trace.Tracer` (clocked by the pipeline's
    injectable ``clock``), surfaced as ``record.report.trace``.  Both
    default to off and cost nothing when off.
    """

    pipeline: StatisticsPipeline
    reoptimize_every: int = 1
    drift_threshold: float | None = None
    history: list[RunRecord] = field(default_factory=list)
    _current_trees: dict[str, PlanTree] | None = None
    _adopted_cards: dict | None = None
    backend: str | None = None  # override the pipeline's execution backend
    workers: int | None = None  # override the pipeline's scheduler width
    shards: int | None = None  # override row shards (multiprocess backend)
    compile: bool | None = None  # override plan compilation (False = interpret)
    retry: RetryPolicy | None = None  # scheduler policy for every run
    faults: "FaultPlan | None" = None  # chaos sessions (tests/benchmarks)
    stats_catalog: "object | None" = None  # shared StatisticsCatalog
    metrics: "object | None" = None  # shared MetricsRegistry
    tracing: bool = False  # span tree per run, on record.report.trace
    contracts: "object | None" = None  # quality.ContractSet for every run
    on_drift: str | None = None  # schema-drift policy when contracts are set
    quarantine: "object | None" = None  # shared QuarantineStore across runs
    feedback: "object | None" = None  # shared catalog FeedbackCorrector
    _prior_observations: StatisticsStore | None = None

    def __post_init__(self) -> None:
        # a session-level backend/worker choice wins over the pipeline's:
        # the same designed pipeline can be re-run on a different engine
        # (the paper's engine-swappability premise, Section 3.2.5)
        if self.backend is not None:
            self.pipeline.backend = self.backend
        if self.workers is not None:
            self.pipeline.workers = self.workers
        if self.shards is not None:
            self.pipeline.shards = self.shards
            if self.pipeline.backend != "multiprocess":
                self.pipeline.backend = "multiprocess"
        if self.compile is not None:
            self.pipeline.compile = self.compile

    def run(self, sources: dict[str, Table]) -> RunRecord:
        """Execute one load with the current plans; maybe re-optimize."""
        index = len(self.history)
        executed = dict(self._current_trees or {})
        tracer = None
        if self.tracing:
            from repro.obs.trace import Tracer

            tracer = Tracer(clock=self.pipeline.clock)
        report = self.pipeline.run_once(
            sources,
            trees=self._current_trees,
            retry=self.retry,
            faults=self.faults,
            prior_statistics=self._prior_observations,
            stats_catalog=self.stats_catalog,
            run_id=f"run{index}",
            tracer=tracer,
            metrics=self.metrics,
            contracts=self.contracts,
            on_drift=self.on_drift,
            quarantine=self.quarantine,
            feedback=self.feedback,
        )
        self._retain_observations(report)

        cards = report.estimator.all_cardinalities()
        drift = self._measure_drift(cards)
        if self.drift_threshold is not None:
            # first-ever adoption happens once; a resumed session already
            # carries adopted statistics and only re-adopts on drift
            cold_start = self._adopted_cards is None
            reoptimize = cold_start or drift > self.drift_threshold
        else:
            reoptimize = index % max(self.reoptimize_every, 1) == 0
        if reoptimize:
            self._current_trees = report.chosen_trees
            if report.failures:
                # a degraded run observed nothing for its failed blocks;
                # keep the previously adopted statistics for those SEs so
                # the drift detector compares against real observations
                self._adopted_cards = {**(self._adopted_cards or {}), **cards}
            else:
                self._adopted_cards = dict(cards)

        actual = self._actual_cost(report, executed)
        record = RunRecord(
            index=index,
            report=report,
            executed_trees=executed,
            actual_plan_cost=actual,
            reoptimized=reoptimize,
            drift=drift,
        )
        self.history.append(record)
        return record

    def _retain_observations(self, report: PipelineReport) -> None:
        """Keep the freshest observed statistics across runs.

        Merging (rather than replacing) means a failed block's statistics
        survive from the last night they were actually observed -- exactly
        what the degraded-statistics fallback wants as its prior.
        """
        base = (
            self._prior_observations.copy()
            if self._prior_observations is not None
            else StatisticsStore()
        )
        base.merge(report.run.observations)
        self._prior_observations = base

    def _measure_drift(self, cards: dict) -> float:
        """Worst relative change vs the statistics behind the current plan."""
        if not self._adopted_cards:
            return 0.0
        worst = 0.0
        for se, value in cards.items():
            previous = self._adopted_cards.get(se)
            if previous is None:
                continue
            base = max(abs(previous), 1.0)
            worst = max(worst, abs(value - previous) / base)
        return worst

    def _actual_cost(
        self, report: PipelineReport, executed: dict[str, PlanTree]
    ) -> float:
        """True cost of the plans that actually ran, from observed sizes."""
        model = PlanCostModel(
            dict(report.run.se_sizes), metric=self.pipeline.cost_metric
        )
        total = 0.0
        for block in report.analysis.blocks:
            tree = executed.get(block.name, block.initial_tree)
            try:
                total += model.tree_cost(tree)
            except KeyError:  # pragma: no cover - sizes recorded per run
                pass
        return total

    @property
    def current_trees(self) -> dict[str, PlanTree]:
        return dict(self._current_trees or {})

    def cost_history(self) -> list[float]:
        return [record.actual_plan_cost for record in self.history]

    # ------------------------------------------------------------------
    # persistence across engine restarts
    # ------------------------------------------------------------------
    def save_state(self, path) -> None:
        """Persist the adopted plans and statistics for the next process."""
        from repro.core.persistence import SessionState

        SessionState(
            trees=self.current_trees,
            adopted_cardinalities=dict(self._adopted_cards or {}),
            runs_completed=len(self.history),
        ).save(path)

    @classmethod
    def resume(cls, pipeline: StatisticsPipeline, path, **kwargs) -> "EtlSession":
        """Reconstruct a session from a persisted state file."""
        from repro.core.persistence import SessionState

        state = SessionState.load(path)
        session = cls(pipeline, **kwargs)
        if state.trees:
            session._current_trees = dict(state.trees)
        if state.adopted_cardinalities:
            session._adopted_cards = dict(state.adopted_cardinalities)
        return session
